/root/repo/target/debug/deps/pim_runtime-9cf53452b07b2738.d: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

/root/repo/target/debug/deps/libpim_runtime-9cf53452b07b2738.rlib: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

/root/repo/target/debug/deps/libpim_runtime-9cf53452b07b2738.rmeta: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

crates/pim-runtime/src/lib.rs:
crates/pim-runtime/src/engine.rs:
crates/pim-runtime/src/profiler.rs:
crates/pim-runtime/src/recursive.rs:
crates/pim-runtime/src/select.rs:
crates/pim-runtime/src/session.rs:
crates/pim-runtime/src/stats.rs:
crates/pim-runtime/src/sync.rs:
