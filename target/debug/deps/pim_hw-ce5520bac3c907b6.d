/root/repo/target/debug/deps/pim_hw-ce5520bac3c907b6.d: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

/root/repo/target/debug/deps/libpim_hw-ce5520bac3c907b6.rlib: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

/root/repo/target/debug/deps/libpim_hw-ce5520bac3c907b6.rmeta: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

crates/pim-hw/src/lib.rs:
crates/pim-hw/src/arm.rs:
crates/pim-hw/src/cpu.rs:
crates/pim-hw/src/fixed.rs:
crates/pim-hw/src/gpu.rs:
crates/pim-hw/src/neurocube.rs:
crates/pim-hw/src/params.rs:
crates/pim-hw/src/placement.rs:
crates/pim-hw/src/power.rs:
crates/pim-hw/src/registers.rs:
crates/pim-hw/src/thermal.rs:
