/root/repo/target/debug/deps/pim_opencl-dfe26a31a160aec3.d: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

/root/repo/target/debug/deps/libpim_opencl-dfe26a31a160aec3.rlib: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

/root/repo/target/debug/deps/libpim_opencl-dfe26a31a160aec3.rmeta: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

crates/pim-opencl/src/lib.rs:
crates/pim-opencl/src/api.rs:
crates/pim-opencl/src/directive.rs:
crates/pim-opencl/src/binary.rs:
crates/pim-opencl/src/kir.rs:
crates/pim-opencl/src/memory.rs:
crates/pim-opencl/src/platform.rs:
crates/pim-opencl/src/queue.rs:
