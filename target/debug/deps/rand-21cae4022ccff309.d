/root/repo/target/debug/deps/rand-21cae4022ccff309.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-21cae4022ccff309: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
