/root/repo/target/debug/deps/pim_common-a570900f442081f5.d: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

/root/repo/target/debug/deps/libpim_common-a570900f442081f5.rlib: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

/root/repo/target/debug/deps/libpim_common-a570900f442081f5.rmeta: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

crates/pim-common/src/lib.rs:
crates/pim-common/src/access.rs:
crates/pim-common/src/error.rs:
crates/pim-common/src/ids.rs:
crates/pim-common/src/units.rs:
