/root/repo/target/debug/deps/bench-38fef846e2a66412.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-38fef846e2a66412.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-38fef846e2a66412.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
