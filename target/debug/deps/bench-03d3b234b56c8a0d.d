/root/repo/target/debug/deps/bench-03d3b234b56c8a0d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-03d3b234b56c8a0d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
