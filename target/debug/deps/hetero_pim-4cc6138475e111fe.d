/root/repo/target/debug/deps/hetero_pim-4cc6138475e111fe.d: src/lib.rs

/root/repo/target/debug/deps/libhetero_pim-4cc6138475e111fe.rlib: src/lib.rs

/root/repo/target/debug/deps/libhetero_pim-4cc6138475e111fe.rmeta: src/lib.rs

src/lib.rs:
