/root/repo/target/debug/deps/trace_and_programming_model-ad37793c77200a21.d: tests/trace_and_programming_model.rs

/root/repo/target/debug/deps/trace_and_programming_model-ad37793c77200a21: tests/trace_and_programming_model.rs

tests/trace_and_programming_model.rs:
