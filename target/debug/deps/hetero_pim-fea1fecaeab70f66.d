/root/repo/target/debug/deps/hetero_pim-fea1fecaeab70f66.d: src/lib.rs

/root/repo/target/debug/deps/hetero_pim-fea1fecaeab70f66: src/lib.rs

src/lib.rs:
