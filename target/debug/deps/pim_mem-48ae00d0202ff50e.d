/root/repo/target/debug/deps/pim_mem-48ae00d0202ff50e.d: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

/root/repo/target/debug/deps/libpim_mem-48ae00d0202ff50e.rlib: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

/root/repo/target/debug/deps/libpim_mem-48ae00d0202ff50e.rmeta: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

crates/pim-mem/src/lib.rs:
crates/pim-mem/src/bank.rs:
crates/pim-mem/src/controller.rs:
crates/pim-mem/src/energy.rs:
crates/pim-mem/src/planar.rs:
crates/pim-mem/src/stack.rs:
crates/pim-mem/src/traffic.rs:
