/root/repo/target/debug/deps/pim_tensor-6be79a47030a20fb.d: crates/pim-tensor/src/lib.rs crates/pim-tensor/src/cost.rs crates/pim-tensor/src/init.rs crates/pim-tensor/src/ops/mod.rs crates/pim-tensor/src/ops/activation.rs crates/pim-tensor/src/ops/bias.rs crates/pim-tensor/src/ops/conv.rs crates/pim-tensor/src/ops/elementwise.rs crates/pim-tensor/src/ops/embedding.rs crates/pim-tensor/src/ops/im2col.rs crates/pim-tensor/src/ops/matmul.rs crates/pim-tensor/src/ops/norm.rs crates/pim-tensor/src/ops/optimizer.rs crates/pim-tensor/src/ops/pool.rs crates/pim-tensor/src/ops/softmax.rs crates/pim-tensor/src/shape.rs crates/pim-tensor/src/tensor.rs

/root/repo/target/debug/deps/libpim_tensor-6be79a47030a20fb.rlib: crates/pim-tensor/src/lib.rs crates/pim-tensor/src/cost.rs crates/pim-tensor/src/init.rs crates/pim-tensor/src/ops/mod.rs crates/pim-tensor/src/ops/activation.rs crates/pim-tensor/src/ops/bias.rs crates/pim-tensor/src/ops/conv.rs crates/pim-tensor/src/ops/elementwise.rs crates/pim-tensor/src/ops/embedding.rs crates/pim-tensor/src/ops/im2col.rs crates/pim-tensor/src/ops/matmul.rs crates/pim-tensor/src/ops/norm.rs crates/pim-tensor/src/ops/optimizer.rs crates/pim-tensor/src/ops/pool.rs crates/pim-tensor/src/ops/softmax.rs crates/pim-tensor/src/shape.rs crates/pim-tensor/src/tensor.rs

/root/repo/target/debug/deps/libpim_tensor-6be79a47030a20fb.rmeta: crates/pim-tensor/src/lib.rs crates/pim-tensor/src/cost.rs crates/pim-tensor/src/init.rs crates/pim-tensor/src/ops/mod.rs crates/pim-tensor/src/ops/activation.rs crates/pim-tensor/src/ops/bias.rs crates/pim-tensor/src/ops/conv.rs crates/pim-tensor/src/ops/elementwise.rs crates/pim-tensor/src/ops/embedding.rs crates/pim-tensor/src/ops/im2col.rs crates/pim-tensor/src/ops/matmul.rs crates/pim-tensor/src/ops/norm.rs crates/pim-tensor/src/ops/optimizer.rs crates/pim-tensor/src/ops/pool.rs crates/pim-tensor/src/ops/softmax.rs crates/pim-tensor/src/shape.rs crates/pim-tensor/src/tensor.rs

crates/pim-tensor/src/lib.rs:
crates/pim-tensor/src/cost.rs:
crates/pim-tensor/src/init.rs:
crates/pim-tensor/src/ops/mod.rs:
crates/pim-tensor/src/ops/activation.rs:
crates/pim-tensor/src/ops/bias.rs:
crates/pim-tensor/src/ops/conv.rs:
crates/pim-tensor/src/ops/elementwise.rs:
crates/pim-tensor/src/ops/embedding.rs:
crates/pim-tensor/src/ops/im2col.rs:
crates/pim-tensor/src/ops/matmul.rs:
crates/pim-tensor/src/ops/norm.rs:
crates/pim-tensor/src/ops/optimizer.rs:
crates/pim-tensor/src/ops/pool.rs:
crates/pim-tensor/src/ops/softmax.rs:
crates/pim-tensor/src/shape.rs:
crates/pim-tensor/src/tensor.rs:
