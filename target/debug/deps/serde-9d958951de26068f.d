/root/repo/target/debug/deps/serde-9d958951de26068f.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9d958951de26068f: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
