/root/repo/target/debug/deps/pim_sim-38e6545a00421e8c.d: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

/root/repo/target/debug/deps/libpim_sim-38e6545a00421e8c.rlib: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

/root/repo/target/debug/deps/libpim_sim-38e6545a00421e8c.rmeta: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

crates/pim-sim/src/lib.rs:
crates/pim-sim/src/ablations.rs:
crates/pim-sim/src/baselines.rs:
crates/pim-sim/src/configs.rs:
crates/pim-sim/src/experiments.rs:
crates/pim-sim/src/gpu.rs:
crates/pim-sim/src/mixed.rs:
crates/pim-sim/src/report.rs:
crates/pim-sim/src/trace.rs:
crates/pim-sim/src/tracegen.rs:
