/root/repo/target/debug/deps/pim_graph-16003212c9d59147.d: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

/root/repo/target/debug/deps/libpim_graph-16003212c9d59147.rlib: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

/root/repo/target/debug/deps/libpim_graph-16003212c9d59147.rmeta: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

crates/pim-graph/src/lib.rs:
crates/pim-graph/src/builder.rs:
crates/pim-graph/src/export.rs:
crates/pim-graph/src/liveness.rs:
crates/pim-graph/src/cost.rs:
crates/pim-graph/src/executor.rs:
crates/pim-graph/src/graph.rs:
crates/pim-graph/src/node.rs:
