/root/repo/target/debug/deps/runtime_behavior-cbc1ad2be9b855e8.d: tests/runtime_behavior.rs

/root/repo/target/debug/deps/runtime_behavior-cbc1ad2be9b855e8: tests/runtime_behavior.rs

tests/runtime_behavior.rs:
