/root/repo/target/debug/deps/engine_properties-ecb828488350723a.d: crates/pim-runtime/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-ecb828488350723a: crates/pim-runtime/tests/engine_properties.rs

crates/pim-runtime/tests/engine_properties.rs:
