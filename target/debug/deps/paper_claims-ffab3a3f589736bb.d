/root/repo/target/debug/deps/paper_claims-ffab3a3f589736bb.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ffab3a3f589736bb: tests/paper_claims.rs

tests/paper_claims.rs:
