/root/repo/target/debug/deps/repro-4fcaf58eebbcd36b.d: crates/pim-sim/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4fcaf58eebbcd36b: crates/pim-sim/src/bin/repro.rs

crates/pim-sim/src/bin/repro.rs:
