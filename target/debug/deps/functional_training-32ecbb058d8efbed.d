/root/repo/target/debug/deps/functional_training-32ecbb058d8efbed.d: tests/functional_training.rs

/root/repo/target/debug/deps/functional_training-32ecbb058d8efbed: tests/functional_training.rs

tests/functional_training.rs:
