/root/repo/target/debug/deps/serde-5ad7bbd9593a455e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5ad7bbd9593a455e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5ad7bbd9593a455e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
