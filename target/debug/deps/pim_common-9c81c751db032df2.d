/root/repo/target/debug/deps/pim_common-9c81c751db032df2.d: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

/root/repo/target/debug/deps/pim_common-9c81c751db032df2: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

crates/pim-common/src/lib.rs:
crates/pim-common/src/access.rs:
crates/pim-common/src/error.rs:
crates/pim-common/src/ids.rs:
crates/pim-common/src/units.rs:
