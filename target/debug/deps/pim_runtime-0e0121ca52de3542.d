/root/repo/target/debug/deps/pim_runtime-0e0121ca52de3542.d: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

/root/repo/target/debug/deps/pim_runtime-0e0121ca52de3542: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

crates/pim-runtime/src/lib.rs:
crates/pim-runtime/src/engine.rs:
crates/pim-runtime/src/profiler.rs:
crates/pim-runtime/src/recursive.rs:
crates/pim-runtime/src/select.rs:
crates/pim-runtime/src/session.rs:
crates/pim-runtime/src/stats.rs:
crates/pim-runtime/src/sync.rs:
