/root/repo/target/debug/deps/pim_mem-a40c798fb59ffe6c.d: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

/root/repo/target/debug/deps/pim_mem-a40c798fb59ffe6c: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

crates/pim-mem/src/lib.rs:
crates/pim-mem/src/bank.rs:
crates/pim-mem/src/controller.rs:
crates/pim-mem/src/energy.rs:
crates/pim-mem/src/planar.rs:
crates/pim-mem/src/stack.rs:
crates/pim-mem/src/traffic.rs:
