/root/repo/target/debug/deps/pim_models-5870b85999dabaef.d: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

/root/repo/target/debug/deps/libpim_models-5870b85999dabaef.rlib: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

/root/repo/target/debug/deps/libpim_models-5870b85999dabaef.rmeta: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

crates/pim-models/src/lib.rs:
crates/pim-models/src/alexnet.rs:
crates/pim-models/src/dataset.rs:
crates/pim-models/src/dcgan.rs:
crates/pim-models/src/inception.rs:
crates/pim-models/src/lstm.rs:
crates/pim-models/src/resnet.rs:
crates/pim-models/src/vgg.rs:
crates/pim-models/src/word2vec.rs:
crates/pim-models/src/zoo.rs:
