/root/repo/target/debug/examples/quickstart-b94937e78eff76fe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b94937e78eff76fe: examples/quickstart.rs

examples/quickstart.rs:
