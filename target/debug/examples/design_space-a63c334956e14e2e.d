/root/repo/target/debug/examples/design_space-a63c334956e14e2e.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-a63c334956e14e2e: examples/design_space.rs

examples/design_space.rs:
