/root/repo/target/debug/examples/mixed_workloads-008499b855374c7b.d: examples/mixed_workloads.rs

/root/repo/target/debug/examples/mixed_workloads-008499b855374c7b: examples/mixed_workloads.rs

examples/mixed_workloads.rs:
