/root/repo/target/debug/examples/train_mnist_cnn-4aaebddd606613e8.d: examples/train_mnist_cnn.rs

/root/repo/target/debug/examples/train_mnist_cnn-4aaebddd606613e8: examples/train_mnist_cnn.rs

examples/train_mnist_cnn.rs:
