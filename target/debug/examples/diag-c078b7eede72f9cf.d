/root/repo/target/debug/examples/diag-c078b7eede72f9cf.d: crates/pim-runtime/examples/diag.rs

/root/repo/target/debug/examples/diag-c078b7eede72f9cf: crates/pim-runtime/examples/diag.rs

crates/pim-runtime/examples/diag.rs:
