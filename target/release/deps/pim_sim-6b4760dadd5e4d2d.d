/root/repo/target/release/deps/pim_sim-6b4760dadd5e4d2d.d: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

/root/repo/target/release/deps/libpim_sim-6b4760dadd5e4d2d.rlib: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

/root/repo/target/release/deps/libpim_sim-6b4760dadd5e4d2d.rmeta: crates/pim-sim/src/lib.rs crates/pim-sim/src/ablations.rs crates/pim-sim/src/baselines.rs crates/pim-sim/src/configs.rs crates/pim-sim/src/experiments.rs crates/pim-sim/src/gpu.rs crates/pim-sim/src/mixed.rs crates/pim-sim/src/report.rs crates/pim-sim/src/trace.rs crates/pim-sim/src/tracegen.rs

crates/pim-sim/src/lib.rs:
crates/pim-sim/src/ablations.rs:
crates/pim-sim/src/baselines.rs:
crates/pim-sim/src/configs.rs:
crates/pim-sim/src/experiments.rs:
crates/pim-sim/src/gpu.rs:
crates/pim-sim/src/mixed.rs:
crates/pim-sim/src/report.rs:
crates/pim-sim/src/trace.rs:
crates/pim-sim/src/tracegen.rs:
