/root/repo/target/release/deps/hetero_pim-b2e86466588e7fc9.d: src/lib.rs

/root/repo/target/release/deps/libhetero_pim-b2e86466588e7fc9.rlib: src/lib.rs

/root/repo/target/release/deps/libhetero_pim-b2e86466588e7fc9.rmeta: src/lib.rs

src/lib.rs:
