/root/repo/target/release/deps/repro-f4458905433c3542.d: crates/pim-sim/src/bin/repro.rs

/root/repo/target/release/deps/repro-f4458905433c3542: crates/pim-sim/src/bin/repro.rs

crates/pim-sim/src/bin/repro.rs:
