/root/repo/target/release/deps/pim_opencl-621f703b42d86ef7.d: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

/root/repo/target/release/deps/libpim_opencl-621f703b42d86ef7.rlib: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

/root/repo/target/release/deps/libpim_opencl-621f703b42d86ef7.rmeta: crates/pim-opencl/src/lib.rs crates/pim-opencl/src/api.rs crates/pim-opencl/src/directive.rs crates/pim-opencl/src/binary.rs crates/pim-opencl/src/kir.rs crates/pim-opencl/src/memory.rs crates/pim-opencl/src/platform.rs crates/pim-opencl/src/queue.rs

crates/pim-opencl/src/lib.rs:
crates/pim-opencl/src/api.rs:
crates/pim-opencl/src/directive.rs:
crates/pim-opencl/src/binary.rs:
crates/pim-opencl/src/kir.rs:
crates/pim-opencl/src/memory.rs:
crates/pim-opencl/src/platform.rs:
crates/pim-opencl/src/queue.rs:
