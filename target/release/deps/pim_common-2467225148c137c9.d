/root/repo/target/release/deps/pim_common-2467225148c137c9.d: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

/root/repo/target/release/deps/libpim_common-2467225148c137c9.rlib: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

/root/repo/target/release/deps/libpim_common-2467225148c137c9.rmeta: crates/pim-common/src/lib.rs crates/pim-common/src/access.rs crates/pim-common/src/error.rs crates/pim-common/src/ids.rs crates/pim-common/src/units.rs

crates/pim-common/src/lib.rs:
crates/pim-common/src/access.rs:
crates/pim-common/src/error.rs:
crates/pim-common/src/ids.rs:
crates/pim-common/src/units.rs:
