/root/repo/target/release/deps/pim_hw-4dc5af67cb077a61.d: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

/root/repo/target/release/deps/libpim_hw-4dc5af67cb077a61.rlib: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

/root/repo/target/release/deps/libpim_hw-4dc5af67cb077a61.rmeta: crates/pim-hw/src/lib.rs crates/pim-hw/src/arm.rs crates/pim-hw/src/cpu.rs crates/pim-hw/src/fixed.rs crates/pim-hw/src/gpu.rs crates/pim-hw/src/neurocube.rs crates/pim-hw/src/params.rs crates/pim-hw/src/placement.rs crates/pim-hw/src/power.rs crates/pim-hw/src/registers.rs crates/pim-hw/src/thermal.rs

crates/pim-hw/src/lib.rs:
crates/pim-hw/src/arm.rs:
crates/pim-hw/src/cpu.rs:
crates/pim-hw/src/fixed.rs:
crates/pim-hw/src/gpu.rs:
crates/pim-hw/src/neurocube.rs:
crates/pim-hw/src/params.rs:
crates/pim-hw/src/placement.rs:
crates/pim-hw/src/power.rs:
crates/pim-hw/src/registers.rs:
crates/pim-hw/src/thermal.rs:
