/root/repo/target/release/deps/pim_mem-10fd3191d3beda94.d: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

/root/repo/target/release/deps/libpim_mem-10fd3191d3beda94.rlib: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

/root/repo/target/release/deps/libpim_mem-10fd3191d3beda94.rmeta: crates/pim-mem/src/lib.rs crates/pim-mem/src/bank.rs crates/pim-mem/src/controller.rs crates/pim-mem/src/energy.rs crates/pim-mem/src/planar.rs crates/pim-mem/src/stack.rs crates/pim-mem/src/traffic.rs

crates/pim-mem/src/lib.rs:
crates/pim-mem/src/bank.rs:
crates/pim-mem/src/controller.rs:
crates/pim-mem/src/energy.rs:
crates/pim-mem/src/planar.rs:
crates/pim-mem/src/stack.rs:
crates/pim-mem/src/traffic.rs:
