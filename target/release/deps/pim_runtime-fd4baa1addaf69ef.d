/root/repo/target/release/deps/pim_runtime-fd4baa1addaf69ef.d: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

/root/repo/target/release/deps/libpim_runtime-fd4baa1addaf69ef.rlib: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

/root/repo/target/release/deps/libpim_runtime-fd4baa1addaf69ef.rmeta: crates/pim-runtime/src/lib.rs crates/pim-runtime/src/engine.rs crates/pim-runtime/src/profiler.rs crates/pim-runtime/src/recursive.rs crates/pim-runtime/src/select.rs crates/pim-runtime/src/session.rs crates/pim-runtime/src/stats.rs crates/pim-runtime/src/sync.rs

crates/pim-runtime/src/lib.rs:
crates/pim-runtime/src/engine.rs:
crates/pim-runtime/src/profiler.rs:
crates/pim-runtime/src/recursive.rs:
crates/pim-runtime/src/select.rs:
crates/pim-runtime/src/session.rs:
crates/pim-runtime/src/stats.rs:
crates/pim-runtime/src/sync.rs:
