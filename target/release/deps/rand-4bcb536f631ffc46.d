/root/repo/target/release/deps/rand-4bcb536f631ffc46.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-4bcb536f631ffc46.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-4bcb536f631ffc46.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
