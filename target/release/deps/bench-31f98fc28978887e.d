/root/repo/target/release/deps/bench-31f98fc28978887e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-31f98fc28978887e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-31f98fc28978887e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
