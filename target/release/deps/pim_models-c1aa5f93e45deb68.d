/root/repo/target/release/deps/pim_models-c1aa5f93e45deb68.d: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

/root/repo/target/release/deps/libpim_models-c1aa5f93e45deb68.rlib: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

/root/repo/target/release/deps/libpim_models-c1aa5f93e45deb68.rmeta: crates/pim-models/src/lib.rs crates/pim-models/src/alexnet.rs crates/pim-models/src/dataset.rs crates/pim-models/src/dcgan.rs crates/pim-models/src/inception.rs crates/pim-models/src/lstm.rs crates/pim-models/src/resnet.rs crates/pim-models/src/vgg.rs crates/pim-models/src/word2vec.rs crates/pim-models/src/zoo.rs

crates/pim-models/src/lib.rs:
crates/pim-models/src/alexnet.rs:
crates/pim-models/src/dataset.rs:
crates/pim-models/src/dcgan.rs:
crates/pim-models/src/inception.rs:
crates/pim-models/src/lstm.rs:
crates/pim-models/src/resnet.rs:
crates/pim-models/src/vgg.rs:
crates/pim-models/src/word2vec.rs:
crates/pim-models/src/zoo.rs:
