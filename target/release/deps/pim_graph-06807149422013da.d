/root/repo/target/release/deps/pim_graph-06807149422013da.d: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

/root/repo/target/release/deps/libpim_graph-06807149422013da.rlib: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

/root/repo/target/release/deps/libpim_graph-06807149422013da.rmeta: crates/pim-graph/src/lib.rs crates/pim-graph/src/builder.rs crates/pim-graph/src/export.rs crates/pim-graph/src/liveness.rs crates/pim-graph/src/cost.rs crates/pim-graph/src/executor.rs crates/pim-graph/src/graph.rs crates/pim-graph/src/node.rs

crates/pim-graph/src/lib.rs:
crates/pim-graph/src/builder.rs:
crates/pim-graph/src/export.rs:
crates/pim-graph/src/liveness.rs:
crates/pim-graph/src/cost.rs:
crates/pim-graph/src/executor.rs:
crates/pim-graph/src/graph.rs:
crates/pim-graph/src/node.rs:
