/root/repo/target/release/deps/serde-485e8d2e5c0378ab.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-485e8d2e5c0378ab.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-485e8d2e5c0378ab.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
