//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! `bench` crate uses, but runs each benchmark body exactly once and
//! reports wall-clock time — a smoke test that keeps every bench target
//! compiling and executable without the statistics machinery.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in has no warm-up.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in runs once.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in draws one sample.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its single-shot wall-clock time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{}/{}: {:?} (single shot)", self.name, id, bencher.elapsed);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let value = routine();
        self.elapsed = start.elapsed();
        drop(value);
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .sample_size(10);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1, "stand-in runs each body exactly once");
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_macro_drives_benchmarks() {
        demo_group();
    }
}
