//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the workspace uses the traits purely as markers, so no impl is needed
//! for the annotated types to compile.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
