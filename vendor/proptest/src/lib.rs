//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Supports the surface the workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header and `ident in strategy`
//! arguments, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/
//! `prop_assume!`, numeric range strategies, and
//! `proptest::collection::vec`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name); there is no
//! shrinking — a failure reports the case index and message only.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from the test's name, so every test draws a stable
    /// but distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            // The macro instantiates for usize and signed types too,
            // where `From` is unavailable; the cast widens everywhere.
            #[allow(clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + rng.next_unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + rng.next_unit_f64() as $t * (end - start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests; each `fn` runs `cases` times with fresh draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case {case}/{} failed: {message}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skips the current case (counts as a pass) unless `cond` holds.
///
/// Upstream proptest retries rejected cases; this stand-in simply moves
/// on to the next case, which keeps runs deterministic and bounded.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            // No `#[test]` on the inner fn: attributes pass through the
            // macro, and test attributes are not allowed on inner items.
            proptest! {
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was only {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
