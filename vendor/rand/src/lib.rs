//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the exact surface the workspace uses: a seedable `StdRng`
//! and `RngExt::random_range` over integer and float ranges. The
//! generator is SplitMix64 — deterministic, seedable, and statistically
//! adequate for synthetic datasets and weight initialization (the
//! simulator's cost model depends on tensor shapes, never on values).
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Concrete RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, 1)` with 53 bits of precision.
        pub(crate) fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// A range that a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // The macro instantiates for usize too, where `From` is
            // unavailable; the cast widens on every instantiated type.
            #[allow(clippy::cast_lossless)]
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_lossless)]
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sample range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample!(usize, u32, u64);

macro_rules! impl_float_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                self.start + rng.next_unit_f64() as $t * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + rng.next_unit_f64() as $t * (end - start)
            }
        }
    )*};
}

impl_float_sample!(f32, f64);

/// Sampling methods on an RNG, mirroring the `rand::Rng` extension trait.
pub trait RngExt {
    /// Draws one uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for rngs::StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let f: f32 = rng.random_range(-0.5..=0.5f32);
            assert!((-0.5..=0.5).contains(&f));
            let u: f64 = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn samples_are_not_constant() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
