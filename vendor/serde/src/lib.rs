//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` as a
//! forward-compatibility marker — nothing serializes through them yet —
//! so the traits carry no methods and the derives expand to nothing.
#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
