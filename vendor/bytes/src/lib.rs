//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! Implements the subset `pim-sim::trace` uses: `BytesMut` as an
//! append-only builder, `Bytes` as a consuming reader, and the
//! big-endian `Buf`/`BufMut` accessors (upstream `bytes` is big-endian
//! by default, which this preserves so encoded traces stay portable).
#![forbid(unsafe_code)]

/// An immutable byte buffer with a read cursor, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.pos + n <= self.data.len(),
            "advance past end of buffer"
        );
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        slice
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Read access to a byte buffer (big-endian), mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
    /// Splits off the next `len` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes {
            data: self.take(len).to_vec(),
            pos: 0,
        }
    }
}

/// Write access to a byte buffer (big-endian), mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless_and_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u16(0x0102);
        buf.put_u8(7);
        buf.put_f64(-1.25);
        buf.put_slice(b"ok");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 4 + 2 + 1 + 8 + 2);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_f64(), -1.25);
        assert_eq!(bytes.copy_to_bytes(2).to_vec(), b"ok");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn reading_past_end_panics() {
        let mut bytes = Bytes::from_static(b"ab");
        let _ = bytes.get_u32();
    }
}
