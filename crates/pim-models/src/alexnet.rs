//! AlexNet training-step graph (Krizhevsky et al., NIPS'12).

use pim_common::Result;
use pim_graph::{Graph, NetBuilder, OptimizerKind};

/// Builds the AlexNet training step for a given minibatch size.
///
/// Five convolutions (11x11/4, 5x5 pad 2, then three 3x3 pad 1) with LRN
/// after the first two, max-pools after conv1/conv2/conv5, and three fully
/// connected layers with dropout.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(batch: usize) -> Result<Graph> {
    let mut net = NetBuilder::new("alexnet");
    let mut x = net.input(batch, 3, 227, 227);

    x = net.conv2d(x, 96, 11, 4, 0)?; // 55x55
    x = net.bias(x)?;
    x = net.relu(x)?;
    x = net.lrn(x)?;
    x = net.max_pool(x, 3, 2, 0)?; // 27x27

    x = net.conv2d(x, 256, 5, 1, 2)?;
    x = net.bias(x)?;
    x = net.relu(x)?;
    x = net.lrn(x)?;
    x = net.max_pool(x, 3, 2, 0)?; // 13x13

    x = net.conv2d(x, 384, 3, 1, 1)?;
    x = net.bias(x)?;
    x = net.relu(x)?;

    x = net.conv2d(x, 384, 3, 1, 1)?;
    x = net.bias(x)?;
    x = net.relu(x)?;

    x = net.conv2d(x, 256, 3, 1, 1)?;
    x = net.bias(x)?;
    x = net.relu(x)?;
    x = net.max_pool(x, 3, 2, 0)?; // 6x6

    x = net.flatten(x)?;
    x = net.dense(x, 4096)?;
    x = net.relu(x)?;
    x = net.dropout(x)?;
    x = net.dense(x, 4096)?;
    x = net.relu(x)?;
    x = net.dropout(x)?;
    x = net.dense(x, 1000)?;
    net.finish_classifier(x, OptimizerKind::Adam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts_match_table_i() {
        let g = build(2).unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["Conv2D"], 5);
        assert_eq!(counts["Conv2DBackpropFilter"], 5);
        // First conv has no input gradient: 4, as in the paper.
        assert_eq!(counts["Conv2DBackpropInput"], 4);
        assert_eq!(counts["LRN"], 2);
        assert_eq!(counts["MaxPool"], 3);
    }

    #[test]
    fn parameter_count_is_alexnet_scale() {
        let g = build(1).unwrap();
        // AlexNet has ~61M parameters.
        let params = g.parameter_bytes() / 4;
        assert!((50_000_000..70_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn spatial_pipeline_shrinks_to_6x6() {
        let g = build(1).unwrap();
        // The flatten output must be 256 * 6 * 6 wide.
        let flat = g
            .tensors()
            .iter()
            .find(|t| t.name.contains("flatten"))
            .unwrap();
        assert_eq!(flat.shape.dims()[1], 256 * 6 * 6);
    }
}
