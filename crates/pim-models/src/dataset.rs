//! Deterministic synthetic datasets.
//!
//! The paper trains on ImageNet, MNIST, PTB, and the TensorFlow
//! "questions-words" set. Data *values* never influence the runtime's
//! schedule — only tensor shapes do — so these generators produce
//! shape-identical synthetic batches (documented substitution in
//! DESIGN.md). For the functional-training examples they additionally embed
//! a learnable class signal so losses genuinely fall.

use pim_tensor::init::seeded_rng;
use pim_tensor::{Shape, Tensor};
use rand::RngExt;

/// A labeled image batch.
#[derive(Debug, Clone)]
pub struct ImageBatch {
    /// `[n, c, h, w]` pixel data.
    pub images: Tensor,
    /// One class index per image.
    pub labels: Vec<usize>,
}

/// Generates a synthetic labeled image batch with a learnable signal: each
/// class `k` brightens a distinct horizontal band of the image.
///
/// # Examples
///
/// ```
/// use pim_models::dataset::image_batch;
/// let batch = image_batch(8, 1, 16, 16, 4, 42);
/// assert_eq!(batch.images.shape().dims(), &[8, 1, 16, 16]);
/// assert!(batch.labels.iter().all(|&l| l < 4));
/// ```
pub fn image_batch(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    classes: usize,
    seed: u64,
) -> ImageBatch {
    let mut rng = seeded_rng(seed);
    let labels: Vec<usize> = (0..n).map(|_| rng.random_range(0..classes)).collect();
    let band = (h / classes).max(1);
    let mut images = Tensor::zeros(Shape::new(vec![n, c, h, w]));
    for (i, &label) in labels.iter().enumerate() {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let noise: f32 = rng.random_range(-0.1..0.1);
                    let signal = if hi / band == label.min(h / band) {
                        1.0
                    } else {
                        0.0
                    };
                    images.set4(i, ci, hi, wi, signal + noise);
                }
            }
        }
    }
    ImageBatch { images, labels }
}

/// ImageNet-shaped batch (224x224 RGB, 1000 classes).
pub fn imagenet_like(n: usize, seed: u64) -> ImageBatch {
    image_batch(n, 3, 224, 224, 1000, seed)
}

/// MNIST-shaped batch (28x28 grayscale, 10 classes).
pub fn mnist_like(n: usize, seed: u64) -> ImageBatch {
    image_batch(n, 1, 28, 28, 10, seed)
}

/// A PTB-like token stream: `len` token ids below `vocab`.
pub fn token_stream(len: usize, vocab: usize, seed: u64) -> Vec<usize> {
    let mut rng = seeded_rng(seed);
    // Zipf-flavored distribution: low ids are much more frequent, matching
    // natural-language token statistics that drive embedding access skew.
    (0..len)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            let id = ((vocab as f64).powf(u) - 1.0) as usize;
            id.min(vocab - 1)
        })
        .collect()
}

/// Skip-gram (center, context) pairs from a synthetic corpus.
pub fn skipgram_pairs(count: usize, vocab: usize, seed: u64) -> Vec<(usize, usize)> {
    let stream = token_stream(count + 1, vocab, seed);
    stream.windows(2).map(|w| (w[0], w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_batch_is_deterministic() {
        let a = image_batch(4, 1, 8, 8, 2, 7);
        let b = image_batch(4, 1, 8, 8, 2, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_are_in_range() {
        let b = mnist_like(32, 3);
        assert!(b.labels.iter().all(|&l| l < 10));
        assert_eq!(b.images.shape().dims(), &[32, 1, 28, 28]);
    }

    #[test]
    fn token_stream_is_skewed_toward_low_ids() {
        let tokens = token_stream(10_000, 1000, 5);
        let low = tokens.iter().filter(|&&t| t < 100).count();
        assert!(low > 3_000, "low-id tokens: {low}");
        assert!(tokens.iter().all(|&t| t < 1000));
    }

    #[test]
    fn skipgram_pairs_link_neighbors() {
        let pairs = skipgram_pairs(64, 100, 1);
        assert_eq!(pairs.len(), 64);
        assert!(pairs.iter().all(|&(a, b)| a < 100 && b < 100));
    }
}
