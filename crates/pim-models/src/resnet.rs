//! ResNet-50 training-step graph (He et al., CVPR'16).
//!
//! Bottleneck residual blocks in a [3, 4, 6, 3] stage plan. ResNet-50 is
//! the paper's "large training model with large working sets" where Hetero
//! PIM beats even the GPU (§VI-A).

use pim_common::ids::TensorId;
use pim_common::Result;
use pim_graph::{Graph, NetBuilder, OptimizerKind};

/// One bottleneck block: 1x1 reduce, 3x3, 1x1 expand, with a projection
/// shortcut when the shape changes.
fn bottleneck(
    net: &mut NetBuilder,
    x: TensorId,
    mid: usize,
    out_channels: usize,
    stride: usize,
    project: bool,
) -> Result<TensorId> {
    let mut y = net.conv2d(x, mid, 1, 1, 0)?;
    y = net.batch_norm(y)?;
    y = net.relu(y)?;
    y = net.conv2d(y, mid, 3, stride, 1)?;
    y = net.batch_norm(y)?;
    y = net.relu(y)?;
    y = net.conv2d(y, out_channels, 1, 1, 0)?;
    y = net.batch_norm(y)?;
    let shortcut = if project {
        let s = net.conv2d(x, out_channels, 1, stride, 0)?;
        net.batch_norm(s)?
    } else {
        x
    };
    let merged = net.add(shortcut, y)?;
    net.relu(merged)
}

/// Builds the ResNet-50 training step for a given minibatch size.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(batch: usize) -> Result<Graph> {
    let mut net = NetBuilder::new("resnet50");
    let mut x = net.input(batch, 3, 224, 224);
    x = net.conv2d(x, 64, 7, 2, 3)?; // 112x112
    x = net.batch_norm(x)?;
    x = net.relu(x)?;
    x = net.max_pool(x, 3, 2, 1)?; // 56x56

    let stages: [(usize, usize, usize, usize); 4] = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (blocks, mid, out_c, first_stride) in stages {
        x = bottleneck(&mut net, x, mid, out_c, first_stride, true)?;
        for _ in 1..blocks {
            x = bottleneck(&mut net, x, mid, out_c, 1, false)?;
        }
    }

    x = net.avg_pool(x, 7, 1, 0)?; // global average pool to 1x1
    x = net.flatten(x)?;
    x = net.dense(x, 1000)?;
    net.finish_classifier(x, OptimizerKind::Adam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_convolutions() {
        // 1 stem + 16 blocks x 3 + 4 projection shortcuts = 53.
        let g = build(1).unwrap();
        assert_eq!(g.invocation_counts()["Conv2D"], 53);
    }

    #[test]
    fn parameter_count_is_resnet50_scale() {
        let g = build(1).unwrap();
        // ~25.5M parameters.
        let params = g.parameter_bytes() / 4;
        assert!((20_000_000..30_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn residual_adds_match_block_count() {
        let g = build(1).unwrap();
        let counts = g.invocation_counts();
        // 16 forward residual adds; backward accumulation emits more Adds.
        assert!(counts["Add"] >= 16);
        assert_eq!(counts["FusedBatchNormGrad"], counts["FusedBatchNorm"]);
    }

    #[test]
    fn graph_is_valid_dag() {
        build(2).unwrap().validate().unwrap();
    }
}
