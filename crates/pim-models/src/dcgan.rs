//! DCGAN training-step graph (Radford et al., ICLR'16) on MNIST-shaped data.
//!
//! One combined adversarial step: a latent batch flows through the
//! generator (dense + two transposed convolutions) into the discriminator
//! (two strided convolutions), ending in a real/fake classification loss
//! whose gradient trains both networks. GAN training additionally executes
//! a tail of small loss-arithmetic operations (`Mul`, `Sub`, `Slice`) that
//! Table I shows dominating DCGAN's long per-step op list; a representative
//! metric tail is emitted after the loss.

use pim_common::ids::TensorId;
use pim_common::Result;
use pim_graph::node::{OpKind, TensorRole};
use pim_graph::{Graph, NetBuilder, OptimizerKind};
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::Shape;

/// Emits the small elementwise metric operations that follow the GAN loss
/// (generator/discriminator loss bookkeeping, gradient-penalty style terms).
fn emit_metric_tail(net: &mut NetBuilder, logits: TensorId, batch: usize) -> Result<()> {
    let g = net.graph_mut();
    let mut cursor = logits;
    for i in 0..12 {
        // Alternate Slice and Mul/Sub chains over the logits, as the TF
        // graph does for the two player losses and summary statistics.
        if i % 3 == 0 {
            let len = batch.max(2) / 2;
            let out = g.add_tensor(
                Shape::new(vec![len]),
                TensorRole::Activation,
                format!("dcgan/metric{i}/slice"),
            );
            g.add_op(OpKind::Slice { start: 0, len }, vec![cursor], vec![out])?;
            cursor = out;
        } else {
            let shape = g.tensor(cursor)?.shape.clone();
            let out = g.add_tensor(shape, TensorRole::Activation, format!("dcgan/metric{i}/ew"));
            let op = if i % 3 == 1 {
                BinaryOp::Mul
            } else {
                BinaryOp::Sub
            };
            g.add_op(OpKind::Binary(op), vec![cursor, cursor], vec![out])?;
            cursor = out;
        }
    }
    Ok(())
}

/// Builds the DCGAN training step for a given minibatch size.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(batch: usize) -> Result<Graph> {
    let mut net = NetBuilder::new("dcgan");

    // Generator: z[batch, 100] -> 7x7x128 -> 14x14x64 -> 28x28x1.
    let z = net.input_matrix(batch, 100);
    let mut x = net.dense(z, 128 * 7 * 7)?;
    let x4 = net.reshape(x, vec![batch, 128, 7, 7])?;
    let mut img = net.batch_norm(x4)?;
    img = net.relu(img)?;
    img = net.conv2d_transpose(img, 64, 4, 2, 1)?; // 14x14
    img = net.batch_norm(img)?;
    img = net.relu(img)?;
    img = net.conv2d_transpose(img, 1, 4, 2, 1)?; // 28x28
    img = net.tanh(img)?;

    // Discriminator on the generated batch.
    let mut d = net.conv2d(img, 64, 4, 2, 1)?; // 14x14
    d = net.leaky_relu(d)?;
    d = net.conv2d(d, 128, 4, 2, 1)?; // 7x7
    d = net.leaky_relu(d)?;
    d = net.flatten(d)?;
    x = net.dense(d, 2)?;

    emit_metric_tail(&mut net, x, batch)?;
    net.finish_classifier(x, OptimizerKind::Adam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_generator_and_discriminator_ops() {
        let g = build(4).unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["Conv2DTranspose"], 2);
        assert_eq!(counts["Conv2D"], 2);
        assert_eq!(counts["FusedBatchNorm"], 2);
        assert!(counts["Mul"] >= 4);
        assert!(counts["Slice"] >= 4);
    }

    #[test]
    fn backward_reaches_the_generator() {
        let g = build(4).unwrap();
        let counts = g.invocation_counts();
        // Both discriminator convs and both generator deconvs produce
        // filter gradients.
        assert_eq!(counts["Conv2DBackpropFilter"], 4);
        assert_eq!(counts["FusedBatchNormGrad"], 2);
    }

    #[test]
    fn graph_is_valid_dag() {
        build(8).unwrap().validate().unwrap();
    }

    #[test]
    fn model_is_small_compared_to_cnns() {
        // DCGAN "has smaller model and working set than others" (§VI-A).
        let dcgan = build(1).unwrap().parameter_bytes();
        let alex = crate::alexnet::build(1).unwrap().parameter_bytes();
        assert!(dcgan < alex / 10);
    }
}
