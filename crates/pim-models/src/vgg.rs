//! VGG-19 training-step graph (Simonyan & Zisserman, ICLR'15).
//!
//! 16 convolutional layers in five blocks separated by max-pools, followed
//! by three fully connected layers — the configuration behind Table I's
//! VGG-19 column (16 `Conv2DBackpropFilter`, 15 `Conv2DBackpropInput`
//! invocations).

use pim_common::Result;
use pim_graph::{Graph, NetBuilder, OptimizerKind};

/// Channel plan of the five convolutional blocks.
const BLOCKS: [(usize, usize); 5] = [(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)];

/// Builds the VGG-19 training step for a given minibatch size.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(batch: usize) -> Result<Graph> {
    let mut net = NetBuilder::new("vgg19");
    let mut x = net.input(batch, 3, 224, 224);
    for (convs, channels) in BLOCKS {
        for _ in 0..convs {
            x = net.conv2d(x, channels, 3, 1, 1)?;
            x = net.bias(x)?;
            x = net.relu(x)?;
        }
        x = net.max_pool(x, 2, 2, 0)?;
    }
    x = net.flatten(x)?;
    x = net.dense(x, 4096)?;
    x = net.relu(x)?;
    x = net.dropout(x)?;
    x = net.dense(x, 4096)?;
    x = net.relu(x)?;
    x = net.dropout(x)?;
    x = net.dense(x, 1000)?;
    net.finish_classifier(x, OptimizerKind::Adam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_counts_match_table_i() {
        let g = build(2).unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["Conv2D"], 16);
        assert_eq!(counts["Conv2DBackpropFilter"], 16);
        // First conv has no input gradient: 15, as in the paper.
        assert_eq!(counts["Conv2DBackpropInput"], 15);
        assert_eq!(counts["BiasAddGrad"], 16);
        assert_eq!(counts["MaxPoolGrad"], 5);
    }

    #[test]
    fn parameter_count_is_vgg19_scale() {
        let g = build(1).unwrap();
        // VGG-19 has ~143M parameters (we omit FC biases).
        let params = g.parameter_bytes() / 4;
        assert!((120_000_000..160_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn graph_is_valid_dag() {
        build(4).unwrap().validate().unwrap();
    }
}
