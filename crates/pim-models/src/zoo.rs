//! The model zoo: one entry per evaluated workload.

use crate::{alexnet, dcgan, inception, lstm, resnet, vgg, word2vec};
use pim_common::Result;
use pim_graph::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven training workloads of the paper's evaluation (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// VGG-19 on ImageNet-shaped data, batch 32.
    Vgg19,
    /// AlexNet on ImageNet-shaped data, batch 32.
    AlexNet,
    /// DCGAN on MNIST-shaped data, batch 64.
    Dcgan,
    /// ResNet-50 on ImageNet-shaped data, batch 128.
    ResNet50,
    /// Inception-v3 on ImageNet-shaped data, batch 32.
    InceptionV3,
    /// LSTM language model on PTB-shaped data, batch 20.
    Lstm,
    /// Word2vec skip-gram on questions-words-shaped data, batch 128.
    Word2vec,
}

impl ModelKind {
    /// All workloads in the paper's presentation order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Vgg19,
        ModelKind::AlexNet,
        ModelKind::Dcgan,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::Lstm,
        ModelKind::Word2vec,
    ];

    /// The five CNN models of Figures 8-15.
    pub const CNNS: [ModelKind; 5] = [
        ModelKind::Vgg19,
        ModelKind::AlexNet,
        ModelKind::Dcgan,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Vgg19 => "VGG-19",
            ModelKind::AlexNet => "AlexNet",
            ModelKind::Dcgan => "DCGAN",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::InceptionV3 => "Inception-v3",
            ModelKind::Lstm => "LSTM",
            ModelKind::Word2vec => "Word2vec",
        }
    }

    /// The default TensorFlow batch size the paper adopts (§V-C).
    pub fn paper_batch_size(self) -> usize {
        match self {
            ModelKind::Vgg19 | ModelKind::AlexNet | ModelKind::InceptionV3 => 32,
            ModelKind::Dcgan => 64,
            ModelKind::ResNet50 | ModelKind::Word2vec => 128,
            ModelKind::Lstm => 20,
        }
    }

    /// Average GPU utilization the paper measured for this model in
    /// TensorFlow on a GTX 1080 Ti (§V-D); `None` for the non-CNN models,
    /// which were not run on the GPU.
    pub fn gpu_utilization(self) -> Option<f64> {
        match self {
            ModelKind::InceptionV3 => Some(0.62),
            ModelKind::ResNet50 => Some(0.44),
            ModelKind::AlexNet => Some(0.30),
            ModelKind::Vgg19 => Some(0.63),
            ModelKind::Dcgan => Some(0.28),
            ModelKind::Lstm | ModelKind::Word2vec => None,
        }
    }

    /// True for the CNN workloads evaluated in Figures 8-15.
    pub fn is_cnn(self) -> bool {
        !matches!(self, ModelKind::Lstm | ModelKind::Word2vec)
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload: its kind, batch size, and one training-step graph.
#[derive(Debug, Clone)]
pub struct Model {
    kind: ModelKind,
    batch: usize,
    graph: Graph,
}

impl Model {
    /// Builds the workload at the paper's batch size.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_models::{Model, ModelKind};
    /// # fn main() -> pim_common::Result<()> {
    /// let m = Model::build(ModelKind::AlexNet)?;
    /// assert_eq!(m.batch(), 32);
    /// assert!(m.graph().op_count() > 30);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures.
    pub fn build(kind: ModelKind) -> Result<Self> {
        Model::build_with_batch(kind, kind.paper_batch_size())
    }

    /// Builds the workload with a custom batch size (tests and scaled
    /// examples).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures.
    pub fn build_with_batch(kind: ModelKind, batch: usize) -> Result<Self> {
        let graph = match kind {
            ModelKind::Vgg19 => vgg::build(batch)?,
            ModelKind::AlexNet => alexnet::build(batch)?,
            ModelKind::Dcgan => dcgan::build(batch)?,
            ModelKind::ResNet50 => resnet::build(batch)?,
            ModelKind::InceptionV3 => inception::build(batch)?,
            ModelKind::Lstm => lstm::build(lstm::LstmConfig {
                batch,
                ..Default::default()
            })?,
            ModelKind::Word2vec => word2vec::build(word2vec::Word2vecConfig {
                batch,
                ..Default::default()
            })?,
        };
        Ok(Model { kind, batch, graph })
    }

    /// Which workload this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The minibatch size the graph was built with.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The training-step graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_at_small_batch() {
        for kind in ModelKind::ALL {
            let m = Model::build_with_batch(kind, 2).unwrap();
            m.graph().validate().unwrap();
            assert!(m.graph().op_count() > 5, "{kind} too small");
        }
    }

    #[test]
    fn paper_batch_sizes_match_section_v() {
        assert_eq!(ModelKind::Vgg19.paper_batch_size(), 32);
        assert_eq!(ModelKind::AlexNet.paper_batch_size(), 32);
        assert_eq!(ModelKind::InceptionV3.paper_batch_size(), 32);
        assert_eq!(ModelKind::Word2vec.paper_batch_size(), 128);
        assert_eq!(ModelKind::ResNet50.paper_batch_size(), 128);
        assert_eq!(ModelKind::Dcgan.paper_batch_size(), 64);
        assert_eq!(ModelKind::Lstm.paper_batch_size(), 20);
    }

    #[test]
    fn cnn_partition_is_consistent() {
        for kind in ModelKind::CNNS {
            assert!(kind.is_cnn());
            assert!(kind.gpu_utilization().is_some());
        }
        assert!(!ModelKind::Lstm.is_cnn());
        assert!(ModelKind::Word2vec.gpu_utilization().is_none());
    }

    #[test]
    fn every_op_in_every_model_has_a_cost() {
        for kind in ModelKind::ALL {
            let m = Model::build_with_batch(kind, 2).unwrap();
            let costs = pim_graph::cost::graph_costs(m.graph()).unwrap();
            assert!(
                costs.iter().all(pim_tensor::CostProfile::is_well_formed),
                "{kind} has malformed costs"
            );
        }
    }
}
