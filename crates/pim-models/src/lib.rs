//! The model zoo: training-step graphs for the paper's seven workloads.
//!
//! Each module builds a complete forward + backward + optimizer graph with
//! the layer configurations of the original networks, at the batch sizes
//! the paper adopts (§V-C):
//!
//! | Model | Module | Batch |
//! |---|---|---|
//! | VGG-19 | [`vgg`] | 32 |
//! | AlexNet | [`alexnet`] | 32 |
//! | DCGAN | [`dcgan`] | 64 |
//! | ResNet-50 | [`resnet`] | 128 |
//! | Inception-v3 | [`inception`] | 32 |
//! | LSTM (PTB) | [`lstm`] | 20 |
//! | Word2vec | [`word2vec`] | 128 |
//!
//! [`dataset`] provides deterministic synthetic batches with the same
//! shapes as the paper's datasets.
//!
//! # Examples
//!
//! ```
//! use pim_models::{Model, ModelKind};
//!
//! # fn main() -> pim_common::Result<()> {
//! let vgg = Model::build_with_batch(ModelKind::Vgg19, 4)?;
//! let counts = vgg.graph().invocation_counts();
//! assert_eq!(counts["Conv2DBackpropFilter"], 16); // Table I
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod alexnet;
pub mod dataset;
pub mod dcgan;
pub mod inception;
pub mod lstm;
pub mod resnet;
pub mod vgg;
pub mod word2vec;
pub mod zoo;

pub use zoo::{Model, ModelKind};
