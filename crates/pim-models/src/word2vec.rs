//! Word2vec skip-gram training step (Mikolov et al.) with sampled softmax.
//!
//! A short, gather/scatter-dominated op list — the second non-CNN workload
//! of the paper's mixed-workload study (§VI-F), trained on the TensorFlow
//! "questions-words" dataset.

use pim_common::Result;
use pim_graph::node::{OpKind, TensorRole};
use pim_graph::Graph;
use pim_tensor::ops::matmul::Transpose;
use pim_tensor::Shape;

/// Skip-gram hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct Word2vecConfig {
    /// Minibatch size (the paper uses 128).
    pub batch: usize,
    /// Embedding width.
    pub dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of sampled (negative) classes per batch.
    pub sampled: usize,
}

impl Default for Word2vecConfig {
    fn default() -> Self {
        Word2vecConfig {
            batch: 128,
            dim: 128,
            vocab: 50_000,
            sampled: 64,
        }
    }
}

/// Builds the Word2vec training step.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(cfg: Word2vecConfig) -> Result<Graph> {
    let mut g = Graph::new();
    let (b, d, v, s) = (cfg.batch, cfg.dim, cfg.vocab, cfg.sampled);
    let classes = b + s; // true classes + negative samples

    let embedding = g.add_tensor(
        Shape::new(vec![v, d]),
        TensorRole::Parameter,
        "w2v/embedding",
    );
    let nce_weights = g.add_tensor(
        Shape::new(vec![v, d]),
        TensorRole::Parameter,
        "w2v/nce_weights",
    );
    let centers = g.add_tensor(Shape::new(vec![b]), TensorRole::Labels, "w2v/centers");
    let sampled_ids = g.add_tensor(
        Shape::new(vec![classes]),
        TensorRole::Labels,
        "w2v/sampled_ids",
    );
    let labels = g.add_tensor(Shape::new(vec![b]), TensorRole::Labels, "w2v/labels");

    let center_vecs = g.add_tensor(
        Shape::new(vec![b, d]),
        TensorRole::Activation,
        "w2v/center_vecs",
    );
    g.add_op(
        OpKind::EmbeddingLookup,
        vec![embedding, centers],
        vec![center_vecs],
    )?;

    let class_vecs = g.add_tensor(
        Shape::new(vec![classes, d]),
        TensorRole::Activation,
        "w2v/class_vecs",
    );
    g.add_op(
        OpKind::EmbeddingLookup,
        vec![nce_weights, sampled_ids],
        vec![class_vecs],
    )?;

    let logits = g.add_tensor(
        Shape::new(vec![b, classes]),
        TensorRole::Activation,
        "w2v/logits",
    );
    g.add_op(
        OpKind::MatMul(Transpose { a: false, b: true }),
        vec![center_vecs, class_vecs],
        vec![logits],
    )?;

    let loss = g.add_tensor(Shape::scalar(), TensorRole::Scalar, "w2v/loss");
    let grad_logits = g.add_tensor(
        Shape::new(vec![b, classes]),
        TensorRole::Activation,
        "w2v/grad_logits",
    );
    g.add_op(
        OpKind::SoftmaxXent,
        vec![logits, labels],
        vec![loss, grad_logits],
    )?;

    let grad_centers = g.add_tensor(
        Shape::new(vec![b, d]),
        TensorRole::Activation,
        "w2v/grad_centers",
    );
    g.add_op(
        OpKind::MatMul(Transpose::NONE),
        vec![grad_logits, class_vecs],
        vec![grad_centers],
    )?;
    let grad_classes = g.add_tensor(
        Shape::new(vec![classes, d]),
        TensorRole::Activation,
        "w2v/grad_classes",
    );
    g.add_op(
        OpKind::MatMul(Transpose { a: true, b: false }),
        vec![grad_logits, center_vecs],
        vec![grad_classes],
    )?;

    // Embedding updates are *sparse* in TensorFlow (IndexedSlices): the
    // scatter-add applies the gathered-row gradients directly into the
    // table. Modeled as one ScatterAdd per table; the dense `[v, d]`
    // gradient never materializes. The "done" scalar only carries the
    // dependency edge.
    let _ = (embedding, nce_weights);
    for (grad_rows, indices, name) in [
        (grad_centers, centers, "embedding"),
        (grad_classes, sampled_ids, "nce_weights"),
    ] {
        let done = g.add_tensor(
            Shape::scalar(),
            TensorRole::Scalar,
            format!("w2v/update/{name}"),
        );
        g.add_op(OpKind::EmbeddingGrad, vec![grad_rows, indices], vec![done])?;
    }

    g.validate()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_graph_is_small_and_valid() {
        let g = build(Word2vecConfig::default()).unwrap();
        g.validate().unwrap();
        assert!(g.op_count() < 15);
    }

    #[test]
    fn op_mix_is_gather_dominated() {
        let g = build(Word2vecConfig::default()).unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["GatherV2"], 2);
        assert_eq!(counts["ScatterAdd"], 2);
        assert_eq!(counts["MatMul"], 3);
    }

    #[test]
    fn most_traffic_is_random_pattern() {
        use pim_common::access::AccessPattern;
        let g = build(Word2vecConfig::default()).unwrap();
        let costs = pim_graph::cost::graph_costs(&g).unwrap();
        let random: f64 = costs
            .iter()
            .filter(|c| c.pattern == AccessPattern::Random)
            .map(|c| c.total_bytes().bytes())
            .sum();
        let total: f64 = costs.iter().map(|c| c.total_bytes().bytes()).sum();
        assert!(random / total > 0.3, "random fraction {}", random / total);
    }
}
