//! Inception-v3 training-step graph (Szegedy et al., CVPR'16).
//!
//! Stem + 3 Inception-A + reduction + 4 Inception-B (1x7/7x1 factorized) +
//! reduction + 2 Inception-C blocks, global average pool, classifier.

use pim_common::ids::TensorId;
use pim_common::Result;
use pim_graph::{Graph, NetBuilder, OptimizerKind};

fn conv_bn(
    net: &mut NetBuilder,
    x: TensorId,
    c: usize,
    k: usize,
    s: usize,
    p: usize,
) -> Result<TensorId> {
    let y = net.conv2d(x, c, k, s, p)?;
    let y = net.batch_norm(y)?;
    net.relu(y)
}

fn conv_bn_rect(
    net: &mut NetBuilder,
    x: TensorId,
    c: usize,
    kh: usize,
    kw: usize,
) -> Result<TensorId> {
    let y = net.conv2d_rect(x, c, kh, kw, 1, kh / 2, kw / 2)?;
    let y = net.batch_norm(y)?;
    net.relu(y)
}

/// Inception-A block at 35x35 resolution.
fn block_a(net: &mut NetBuilder, x: TensorId, pool_c: usize) -> Result<TensorId> {
    let b1 = conv_bn(net, x, 64, 1, 1, 0)?;
    let b5 = conv_bn(net, x, 48, 1, 1, 0)?;
    let b5 = conv_bn(net, b5, 64, 5, 1, 2)?;
    let b3 = conv_bn(net, x, 64, 1, 1, 0)?;
    let b3 = conv_bn(net, b3, 96, 3, 1, 1)?;
    let b3 = conv_bn(net, b3, 96, 3, 1, 1)?;
    let bp = net.avg_pool(x, 3, 1, 1)?;
    let bp = conv_bn(net, bp, pool_c, 1, 1, 0)?;
    net.concat_channels(&[b1, b5, b3, bp])
}

/// Inception-B block at 17x17 resolution with 1x7/7x1 factorization.
fn block_b(net: &mut NetBuilder, x: TensorId, mid: usize) -> Result<TensorId> {
    let b1 = conv_bn(net, x, 192, 1, 1, 0)?;
    let b7 = conv_bn(net, x, mid, 1, 1, 0)?;
    let b7 = conv_bn_rect(net, b7, mid, 1, 7)?;
    let b7 = conv_bn_rect(net, b7, 192, 7, 1)?;
    let d7 = conv_bn(net, x, mid, 1, 1, 0)?;
    let d7 = conv_bn_rect(net, d7, mid, 7, 1)?;
    let d7 = conv_bn_rect(net, d7, mid, 1, 7)?;
    let d7 = conv_bn_rect(net, d7, mid, 7, 1)?;
    let d7 = conv_bn_rect(net, d7, 192, 1, 7)?;
    let bp = net.avg_pool(x, 3, 1, 1)?;
    let bp = conv_bn(net, bp, 192, 1, 1, 0)?;
    net.concat_channels(&[b1, b7, d7, bp])
}

/// Inception-C block at 8x8 resolution.
fn block_c(net: &mut NetBuilder, x: TensorId) -> Result<TensorId> {
    let b1 = conv_bn(net, x, 320, 1, 1, 0)?;
    let b3 = conv_bn(net, x, 384, 1, 1, 0)?;
    let b3a = conv_bn_rect(net, b3, 384, 1, 3)?;
    let b3b = conv_bn_rect(net, b3, 384, 3, 1)?;
    let d3 = conv_bn(net, x, 448, 1, 1, 0)?;
    let d3 = conv_bn(net, d3, 384, 3, 1, 1)?;
    let d3a = conv_bn_rect(net, d3, 384, 1, 3)?;
    let d3b = conv_bn_rect(net, d3, 384, 3, 1)?;
    let bp = net.avg_pool(x, 3, 1, 1)?;
    let bp = conv_bn(net, bp, 192, 1, 1, 0)?;
    net.concat_channels(&[b1, b3a, b3b, d3a, d3b, bp])
}

/// Builds the Inception-v3 training step for a given minibatch size.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(batch: usize) -> Result<Graph> {
    let mut net = NetBuilder::new("inception_v3");
    let mut x = net.input(batch, 3, 299, 299);

    // Stem: 299 -> 149 -> 147 -> 147 -> 73 -> 73 -> 71 -> 35.
    x = conv_bn(&mut net, x, 32, 3, 2, 0)?;
    x = conv_bn(&mut net, x, 32, 3, 1, 0)?;
    x = conv_bn(&mut net, x, 64, 3, 1, 1)?;
    x = net.max_pool(x, 3, 2, 0)?;
    x = conv_bn(&mut net, x, 80, 1, 1, 0)?;
    x = conv_bn(&mut net, x, 192, 3, 1, 0)?;
    x = net.max_pool(x, 3, 2, 0)?;

    // 3x Inception-A at 35x35.
    x = block_a(&mut net, x, 32)?;
    x = block_a(&mut net, x, 64)?;
    x = block_a(&mut net, x, 64)?;

    // Reduction-A: 35 -> 17.
    let r3 = conv_bn(&mut net, x, 384, 3, 2, 0)?;
    let rd = conv_bn(&mut net, x, 64, 1, 1, 0)?;
    let rd = conv_bn(&mut net, rd, 96, 3, 1, 1)?;
    let rd = conv_bn(&mut net, rd, 96, 3, 2, 0)?;
    let rp = net.max_pool(x, 3, 2, 0)?;
    x = net.concat_channels(&[r3, rd, rp])?;

    // 4x Inception-B at 17x17.
    x = block_b(&mut net, x, 128)?;
    x = block_b(&mut net, x, 160)?;
    x = block_b(&mut net, x, 160)?;
    x = block_b(&mut net, x, 192)?;

    // Reduction-B: 17 -> 8.
    let r1 = conv_bn(&mut net, x, 192, 1, 1, 0)?;
    let r1 = conv_bn(&mut net, r1, 320, 3, 2, 0)?;
    let r7 = conv_bn(&mut net, x, 192, 1, 1, 0)?;
    let r7 = conv_bn_rect(&mut net, r7, 192, 1, 7)?;
    let r7 = conv_bn_rect(&mut net, r7, 192, 7, 1)?;
    let r7 = conv_bn(&mut net, r7, 192, 3, 2, 0)?;
    let rp = net.max_pool(x, 3, 2, 0)?;
    x = net.concat_channels(&[r1, r7, rp])?;

    // 2x Inception-C at 8x8.
    x = block_c(&mut net, x)?;
    x = block_c(&mut net, x)?;

    x = net.avg_pool(x, 8, 1, 0)?;
    x = net.flatten(x)?;
    x = net.dense(x, 1000)?;
    net.finish_classifier(x, OptimizerKind::Adam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_deep_multi_branch_network() {
        let g = build(1).unwrap();
        let counts = g.invocation_counts();
        // ~90 conv layers in this configuration.
        assert!(counts["Conv2D"] > 80, "convs = {}", counts["Conv2D"]);
        assert!(counts["ConcatV2"] >= 11);
        // Concat backward emits slices for every tower.
        assert!(counts["Slice"] > 30);
    }

    #[test]
    fn parameter_count_is_inception_scale() {
        let g = build(1).unwrap();
        // ~24M parameters (torchvision: 23.8M).
        let params = g.parameter_bytes() / 4;
        assert!((18_000_000..30_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn graph_is_valid_dag() {
        build(2).unwrap().validate().unwrap();
    }
}
