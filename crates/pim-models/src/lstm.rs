//! LSTM language-model training step (Zaremba et al., PTB configuration).
//!
//! One fused-gate LSTM layer unrolled over the sequence, with a simplified
//! backward-through-time pass that emits the op mix (MatMul, Slice,
//! Sigmoid/Tanh gradients, embedding scatter) the paper's mixed-workload
//! study (§VI-F) schedules onto CPU and the programmable PIM.

use pim_common::ids::TensorId;
use pim_common::Result;
use pim_graph::node::{OpKind, TensorRole};
use pim_graph::Graph;
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::ops::matmul::Transpose;
use pim_tensor::Shape;

/// PTB-style hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Minibatch size (the paper uses 20).
    pub batch: usize,
    /// Unrolled sequence length.
    pub seq_len: usize,
    /// Hidden/embedding width.
    pub hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            batch: 20,
            seq_len: 20,
            hidden: 200,
            vocab: 10_000,
        }
    }
}

struct Emitter<'g> {
    g: &'g mut Graph,
    cfg: LstmConfig,
}

impl Emitter<'_> {
    fn act(&mut self, shape: Shape, name: String) -> TensorId {
        self.g.add_tensor(shape, TensorRole::Activation, name)
    }

    fn mat(&mut self, r: usize, c: usize, name: String) -> TensorId {
        self.act(Shape::new(vec![r, c]), name)
    }

    /// Slices a `[batch, 4*hidden]` gate bundle into one `[batch, hidden]`
    /// gate.
    fn slice_gate(&mut self, from: TensorId, gate: usize, name: String) -> Result<TensorId> {
        let (b, h) = (self.cfg.batch, self.cfg.hidden);
        let out = self.mat(b, h, name);
        self.g.add_op(
            OpKind::Slice {
                start: gate * b * h,
                len: b * h,
            },
            vec![from],
            vec![out],
        )?;
        Ok(out)
    }

    fn activate(&mut self, x: TensorId, kind: Activation, name: String) -> Result<TensorId> {
        let shape = self.g.tensor(x)?.shape.clone();
        let out = self.act(shape, name);
        self.g
            .add_op(OpKind::Activation(kind), vec![x], vec![out])?;
        Ok(out)
    }

    fn binary(&mut self, a: TensorId, b: TensorId, op: BinaryOp, name: String) -> Result<TensorId> {
        let shape = self.g.tensor(a)?.shape.clone();
        let out = self.act(shape, name);
        self.g.add_op(OpKind::Binary(op), vec![a, b], vec![out])?;
        Ok(out)
    }
}

/// Builds the LSTM training step.
///
/// # Errors
///
/// Propagates graph-construction failures (none expected for valid sizes).
pub fn build(cfg: LstmConfig) -> Result<Graph> {
    let mut graph = Graph::new();
    let (b, h, v, seq) = (cfg.batch, cfg.hidden, cfg.vocab, cfg.seq_len);

    let embedding = graph.add_tensor(
        Shape::new(vec![v, h]),
        TensorRole::Parameter,
        "lstm/embedding",
    );
    let w_gates = graph.add_tensor(
        Shape::new(vec![2 * h, 4 * h]),
        TensorRole::Parameter,
        "lstm/w_gates",
    );
    let b_gates = graph.add_tensor(
        Shape::new(vec![4 * h]),
        TensorRole::Parameter,
        "lstm/b_gates",
    );
    let w_out = graph.add_tensor(Shape::new(vec![h, v]), TensorRole::Parameter, "lstm/w_out");
    let h0 = graph.add_tensor(Shape::new(vec![b, h]), TensorRole::Input, "lstm/h0");
    let c0 = graph.add_tensor(Shape::new(vec![b, h]), TensorRole::Input, "lstm/c0");
    let labels = graph.add_tensor(Shape::new(vec![b]), TensorRole::Labels, "lstm/labels");

    let mut em = Emitter { g: &mut graph, cfg };

    let mut h_prev = h0;
    let mut c_prev = c0;
    // Per-timestep forward state retained for the backward pass:
    // (concat, gates, pre-activations, gate outputs, cell state, tanh(c)).
    type TapeEntry = (
        TensorId,
        TensorId,
        [TensorId; 4],
        [TensorId; 4],
        TensorId,
        TensorId,
    );
    let mut tape: Vec<TapeEntry> = Vec::new();

    for t in 0..seq {
        let tokens = em.g.add_tensor(
            Shape::new(vec![b]),
            TensorRole::Labels,
            format!("lstm/t{t}/tokens"),
        );
        let x_t = em.mat(b, h, format!("lstm/t{t}/x"));
        em.g.add_op(OpKind::EmbeddingLookup, vec![embedding, tokens], vec![x_t])?;

        let concat = em.mat(b, 2 * h, format!("lstm/t{t}/concat"));
        em.g.add_op(OpKind::Concat, vec![x_t, h_prev], vec![concat])?;

        let gates_mm = em.mat(b, 4 * h, format!("lstm/t{t}/gates_mm"));
        em.g.add_op(
            OpKind::MatMul(Transpose::NONE),
            vec![concat, w_gates],
            vec![gates_mm],
        )?;
        let gates = em.mat(b, 4 * h, format!("lstm/t{t}/gates"));
        em.g.add_op(OpKind::BiasAdd, vec![gates_mm, b_gates], vec![gates])?;

        let pre: [TensorId; 4] = [
            em.slice_gate(gates, 0, format!("lstm/t{t}/pre_i"))?,
            em.slice_gate(gates, 1, format!("lstm/t{t}/pre_f"))?,
            em.slice_gate(gates, 2, format!("lstm/t{t}/pre_o"))?,
            em.slice_gate(gates, 3, format!("lstm/t{t}/pre_g"))?,
        ];
        let acts = [
            Activation::Sigmoid,
            Activation::Sigmoid,
            Activation::Sigmoid,
            Activation::Tanh,
        ];
        let mut gate_out = [pre[0]; 4];
        for (i, (&p, &a)) in pre.iter().zip(&acts).enumerate() {
            gate_out[i] = em.activate(p, a, format!("lstm/t{t}/gate{i}"))?;
        }
        let [i_g, f_g, o_g, g_g] = gate_out;

        let fc = em.binary(f_g, c_prev, BinaryOp::Mul, format!("lstm/t{t}/f*c"))?;
        let ig = em.binary(i_g, g_g, BinaryOp::Mul, format!("lstm/t{t}/i*g"))?;
        let c_t = em.binary(fc, ig, BinaryOp::Add, format!("lstm/t{t}/c"))?;
        let c_tanh = em.activate(c_t, Activation::Tanh, format!("lstm/t{t}/tanh_c"))?;
        let h_t = em.binary(o_g, c_tanh, BinaryOp::Mul, format!("lstm/t{t}/h"))?;

        tape.push((concat, gates, pre, gate_out, c_t, c_tanh));
        h_prev = h_t;
        c_prev = c_t;
    }

    // Dropout on the final hidden state (the paper evaluates "LSTM with
    // dropout" per Zaremba et al.), then the classifier projection.
    let drop_mask = em.g.add_tensor(
        Shape::new(vec![b, h]),
        TensorRole::Input,
        "lstm/dropout/mask",
    );
    let h_dropped = em.mat(b, h, "lstm/h_dropped".into());
    em.g.add_op(OpKind::Dropout, vec![h_prev, drop_mask], vec![h_dropped])?;
    let h_prev = h_dropped;
    let logits = em.mat(b, v, "lstm/logits".into());
    em.g.add_op(
        OpKind::MatMul(Transpose::NONE),
        vec![h_prev, w_out],
        vec![logits],
    )?;
    let loss =
        em.g.add_tensor(Shape::scalar(), TensorRole::Scalar, "lstm/loss");
    let grad_logits = em.mat(b, v, "lstm/grad_logits".into());
    em.g.add_op(
        OpKind::SoftmaxXent,
        vec![logits, labels],
        vec![loss, grad_logits],
    )?;

    // Output-projection gradients.
    let grad_w_out = em.mat(h, v, "lstm/grad_w_out".into());
    em.g.add_op(
        OpKind::MatMul(Transpose { a: true, b: false }),
        vec![h_prev, grad_logits],
        vec![grad_w_out],
    )?;
    let mut grad_h = em.mat(b, h, "lstm/grad_h_last".into());
    em.g.add_op(
        OpKind::MatMul(Transpose { a: false, b: true }),
        vec![grad_logits, w_out],
        vec![grad_h],
    )?;

    // Simplified backward-through-time: the hidden-state gradient chains
    // through the gate bundle of each step; the cell-state cross-links are
    // folded into the per-step elementwise work.
    let mut grad_w_acc: Option<TensorId> = None;
    let mut grad_b_acc: Option<TensorId> = None;
    let mut grad_emb_acc: Option<TensorId> = None;
    for (t, (concat, gates, pre, gate_out, c_t, c_tanh)) in tape.iter().enumerate().rev() {
        let (concat, gates, pre, gate_out, c_t, c_tanh) =
            (*concat, *gates, *pre, *gate_out, *c_t, *c_tanh);
        let _ = gates;
        // dL/do and dL/dc via the output gate and tanh(c).
        let grad_o = em.binary(grad_h, c_tanh, BinaryOp::Mul, format!("lstm/bt{t}/grad_o"))?;
        let grad_ct_in = em.binary(
            grad_h,
            gate_out[2],
            BinaryOp::Mul,
            format!("lstm/bt{t}/gc_in"),
        )?;
        let grad_c = {
            let shape = em.g.tensor(grad_ct_in)?.shape.clone();
            let out = em.act(shape, format!("lstm/bt{t}/grad_c"));
            em.g.add_op(
                OpKind::ActivationGrad(Activation::Tanh),
                vec![grad_ct_in, c_t, c_tanh],
                vec![out],
            )?;
            out
        };
        // Gate pre-activation gradients.
        let grad_i = em.binary(
            grad_c,
            gate_out[3],
            BinaryOp::Mul,
            format!("lstm/bt{t}/grad_i"),
        )?;
        let grad_f = em.binary(grad_c, c_t, BinaryOp::Mul, format!("lstm/bt{t}/grad_f"))?;
        let grad_g = em.binary(
            grad_c,
            gate_out[0],
            BinaryOp::Mul,
            format!("lstm/bt{t}/grad_g"),
        )?;
        let acts = [
            Activation::Sigmoid,
            Activation::Sigmoid,
            Activation::Sigmoid,
            Activation::Tanh,
        ];
        let grads_in = [grad_i, grad_f, grad_o, grad_g];
        let mut pre_grads = [grad_i; 4];
        for k in 0..4 {
            let shape = em.g.tensor(pre[k])?.shape.clone();
            let out = em.act(shape, format!("lstm/bt{t}/pre_grad{k}"));
            em.g.add_op(
                OpKind::ActivationGrad(acts[k]),
                vec![grads_in[k], pre[k], gate_out[k]],
                vec![out],
            )?;
            pre_grads[k] = out;
        }
        let grad_gates = em.mat(b, 4 * h, format!("lstm/bt{t}/grad_gates"));
        em.g.add_op(OpKind::Concat, pre_grads.to_vec(), vec![grad_gates])?;

        // Bias gradient with accumulation across timesteps.
        let gb = em.act(Shape::new(vec![4 * h]), format!("lstm/bt{t}/grad_b"));
        em.g.add_op(OpKind::BiasAddGrad, vec![grad_gates], vec![gb])?;
        grad_b_acc = Some(match grad_b_acc {
            None => gb,
            Some(acc) => em.binary(acc, gb, BinaryOp::Add, format!("lstm/bt{t}/grad_b_acc"))?,
        });

        // Weight gradient and input gradient.
        let gw = em.mat(2 * h, 4 * h, format!("lstm/bt{t}/grad_w"));
        em.g.add_op(
            OpKind::MatMul(Transpose { a: true, b: false }),
            vec![concat, grad_gates],
            vec![gw],
        )?;
        grad_w_acc = Some(match grad_w_acc {
            None => gw,
            Some(acc) => em.binary(acc, gw, BinaryOp::Add, format!("lstm/bt{t}/grad_w_acc"))?,
        });
        let grad_concat = em.mat(b, 2 * h, format!("lstm/bt{t}/grad_concat"));
        em.g.add_op(
            OpKind::MatMul(Transpose { a: false, b: true }),
            vec![grad_gates, w_gates],
            vec![grad_concat],
        )?;

        // Split: x gradient feeds the embedding scatter; h gradient chains
        // to the previous timestep.
        let grad_x = em.mat(b, h, format!("lstm/bt{t}/grad_x"));
        em.g.add_op(
            OpKind::Slice {
                start: 0,
                len: b * h,
            },
            vec![grad_concat],
            vec![grad_x],
        )?;
        let ge = em.mat(v, h, format!("lstm/bt{t}/grad_emb"));
        let tokens = em.g.add_tensor(
            Shape::new(vec![b]),
            TensorRole::Labels,
            format!("lstm/bt{t}/tokens"),
        );
        em.g.add_op(OpKind::EmbeddingGrad, vec![grad_x, tokens], vec![ge])?;
        grad_emb_acc = Some(match grad_emb_acc {
            None => ge,
            Some(acc) => em.binary(acc, ge, BinaryOp::Add, format!("lstm/bt{t}/grad_emb_acc"))?,
        });

        let gh = em.mat(b, h, format!("lstm/bt{t}/grad_h_prev"));
        em.g.add_op(
            OpKind::Slice {
                start: b * h,
                len: b * h,
            },
            vec![grad_concat],
            vec![gh],
        )?;
        grad_h = gh;
    }

    // Parameter updates.
    for (param, grad, name) in [
        (w_out, grad_w_out, "w_out"),
        (w_gates, grad_w_acc.expect("seq_len > 0"), "w_gates"),
        (b_gates, grad_b_acc.expect("seq_len > 0"), "b_gates"),
        (embedding, grad_emb_acc.expect("seq_len > 0"), "embedding"),
    ] {
        let done = graph.add_tensor(
            Shape::scalar(),
            TensorRole::Scalar,
            format!("lstm/update/{name}"),
        );
        graph.add_op(OpKind::ApplySgd, vec![param, grad], vec![done])?;
    }

    graph.validate()?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_builds_valid_graph() {
        let g = build(LstmConfig::default()).unwrap();
        g.validate().unwrap();
        // 20 timesteps forward + backward is a long op list.
        assert!(g.op_count() > 400, "ops = {}", g.op_count());
    }

    #[test]
    fn op_mix_is_lstm_shaped() {
        let g = build(LstmConfig::default()).unwrap();
        let counts = g.invocation_counts();
        // Forward: 1 MatMul/step + loss; backward: 2 MatMuls/step + 2.
        assert_eq!(counts["MatMul"], 20 + 1 + 2 * 20 + 2);
        assert_eq!(counts["GatherV2"], 20);
        assert_eq!(counts["ScatterAdd"], 20);
        assert!(counts["Sigmoid"] >= 60);
        assert_eq!(counts["Dropout"], 1);
        assert_eq!(counts["ApplyGradientDescent"], 4);
    }

    #[test]
    fn small_config_scales_down() {
        let g = build(LstmConfig {
            batch: 2,
            seq_len: 3,
            hidden: 8,
            vocab: 50,
        })
        .unwrap();
        assert!(g.op_count() < 150);
    }
}
