//! Shared setup for the figure/table benchmarks.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation under Criterion timing (the *simulation* is what is being
//! benchmarked; the simulated results themselves are recorded in
//! EXPERIMENTS.md via the `repro` binary).
#![forbid(unsafe_code)]

use pim_models::{Model, ModelKind};
use pim_runtime::stats::ExecutionReport;
use pim_sim::configs::{simulate, SystemConfig};

/// Builds the paper-configuration model for a workload.
pub fn paper_model(kind: ModelKind) -> Model {
    Model::build(kind).expect("model builds")
}

/// Simulates a model under a configuration for the standard 2 steps.
pub fn run(model: &Model, config: &SystemConfig) -> ExecutionReport {
    simulate(model, config, 2).expect("simulation succeeds")
}
