//! Fig. 17: EDP and power across PIM frequencies.

use bench::{paper_model, run};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_sim::configs::SystemConfig;
use std::time::Duration;

fn fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_edp_power");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        for mult in [1.0, 2.0, 4.0] {
            let config = SystemConfig::hetero_pim_at_frequency(mult).unwrap();
            group.bench_function(format!("{}/{}x", kind.name(), mult), |b| {
                b.iter(|| {
                    let r = run(&model, &config);
                    (r.edp_per_step(), r.average_power())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig17);
criterion_main!(benches);
