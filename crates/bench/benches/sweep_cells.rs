//! The persistent-harness sweep: the exact cells `repro bench` measures
//! (model x all six engine presets, including the Fig. 13 ablation
//! points the evaluation-set benches skip), plus the `BENCH_*.json`
//! serialization/validation round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_runtime::engine::SystemPreset;
use pim_sim::bench::{bench_cells, to_json, validate_bench_json, BenchFile};
use std::time::Duration;

fn sweep_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_cells");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in [ModelKind::AlexNet, ModelKind::Vgg19] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let cells = bench_cells(&[kind], &SystemPreset::ALL, 2, 1).unwrap();
                assert_eq!(cells.len(), SystemPreset::ALL.len());
                cells.len()
            });
        });
    }
    group.bench_function("json_roundtrip", |b| {
        let file = BenchFile {
            commit: "bench".to_string(),
            steps: 1,
            iterations: 1,
            cells: bench_cells(&[ModelKind::AlexNet], &SystemPreset::ALL, 1, 1).unwrap(),
            repro_all: None,
        };
        b.iter(|| {
            let json = to_json(&file);
            validate_bench_json(&json).unwrap();
            json.len()
        });
    });
    group.finish();
}

criterion_group!(benches, sweep_cells);
criterion_main!(benches);
