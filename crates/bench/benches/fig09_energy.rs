//! Fig. 9: dynamic energy normalized to Hetero PIM.

use bench::{paper_model, run};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_sim::configs::SystemConfig;
use std::time::Duration;

fn fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_energy");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        let hetero = run(&model, &SystemConfig::hetero_pim());
        for config in SystemConfig::evaluation_set() {
            group.bench_function(format!("{}/{}", kind.name(), config.name()), |b| {
                b.iter(|| {
                    let r = run(&model, &config);
                    r.dynamic_energy / hetero.dynamic_energy
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig09);
criterion_main!(benches);
