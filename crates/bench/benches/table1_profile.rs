//! Table I: the step-1 profiling pass over the three profiled models.

use bench::paper_model;
use criterion::{criterion_group, criterion_main, Criterion};
use pim_hw::cpu::CpuDevice;
use pim_models::ModelKind;
use pim_runtime::profiler::profile_step;
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let cpu = CpuDevice::xeon_e5_2630_v3();
    let mut group = c.benchmark_group("table1_profile");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(20);
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::Dcgan] {
        let model = paper_model(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let profile = profile_step(model.graph(), &cpu).unwrap();
                assert!(!profile.by_name().is_empty());
                profile
            });
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
