//! Fig. 10: the Neurocube comparison.

use bench::{paper_model, run};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_sim::baselines::simulate_neurocube;
use pim_sim::configs::SystemConfig;
use std::time::Duration;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_neurocube");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let nc = simulate_neurocube(&model, 2).unwrap();
                let hetero = run(&model, &SystemConfig::hetero_pim());
                let speedup = nc.makespan / hetero.makespan;
                assert!(speedup >= 3.0);
                speedup
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
