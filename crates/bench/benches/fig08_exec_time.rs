//! Fig. 8: execution-time breakdown, 5 models x 5 configurations.

use bench::{paper_model, run};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_sim::configs::SystemConfig;
use std::time::Duration;

fn fig08(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_exec_time");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        for config in SystemConfig::evaluation_set() {
            group.bench_function(format!("{}/{}", kind.name(), config.name()), |b| {
                b.iter(|| {
                    let r = run(&model, &config);
                    assert!(r.is_well_formed());
                    r.makespan
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig08);
criterion_main!(benches);
