//! Microbenchmarks of the real numeric kernels (the substrate under the
//! eager executor).

use criterion::{criterion_group, criterion_main, Criterion};
use pim_tensor::ops::conv::conv2d;
use pim_tensor::ops::matmul::{matmul, Transpose};
use pim_tensor::ops::pool::max_pool;
use pim_tensor::{ConvGeometry, Shape, Tensor};
use std::time::Duration;

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let a = Tensor::from_fn(Shape::new(vec![64, 64]), |i| i as f32 * 1e-3);
    let b = Tensor::from_fn(Shape::new(vec![64, 64]), |i| (i % 17) as f32 * 1e-2);
    group.bench_function("matmul_64x64", |bch| {
        bch.iter(|| matmul(&a, &b, Transpose::NONE).unwrap());
    });

    let input = Tensor::from_fn(Shape::new(vec![1, 8, 32, 32]), |i| (i % 11) as f32);
    let filter = Tensor::from_fn(Shape::new(vec![8, 8, 3, 3]), |i| (i % 5) as f32 * 0.1);
    let geom = ConvGeometry::square(3, 1, 1);
    group.bench_function("conv2d_8x32x32_3x3", |bch| {
        bch.iter(|| conv2d(&input, &filter, geom).unwrap());
    });

    let pool_geom = ConvGeometry::square(2, 2, 0);
    group.bench_function("max_pool_8x32x32", |bch| {
        bch.iter(|| max_pool(&input, pool_geom).unwrap());
    });
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
