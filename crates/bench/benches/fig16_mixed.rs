//! Fig. 16: mixed-workload co-running vs sequential execution.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_sim::mixed::{corun, fig16_cases};
use std::time::Duration;

fn fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_mixed");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for (cnn, other) in fig16_cases() {
        group.bench_function(format!("{}+{}", cnn.name(), other.name()), |b| {
            b.iter(|| {
                let r = corun(cnn, other, 2).unwrap();
                assert!(r.corun_seconds < r.sequential_seconds);
                r.improvement()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig16);
criterion_main!(benches);
