//! Fig. 12: programmable-PIM scaling (1P/4P/16P) at constant die area.

use bench::{paper_model, run};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_hw::power::{progr_scaling_points, LogicDieBudget};
use pim_models::ModelKind;
use pim_runtime::engine::{EngineConfig, SystemPreset};
use pim_sim::configs::SystemConfig;
use std::time::Duration;

fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_progr_scaling");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    let points = progr_scaling_points(&LogicDieBudget::paper_baseline()).unwrap();
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        for p in &points {
            let config = SystemConfig::HeteroPim(
                EngineConfig::preset(SystemPreset::Hetero)
                    .with_pim_complement(p.arm_cores, p.ff_units),
            );
            group.bench_function(format!("{}/{}P", kind.name(), p.arm_cores), |b| {
                b.iter(|| run(&model, &config).makespan);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
