//! Fig. 15: fixed-function-PIM utilization with and without RC and OP.

use bench::paper_model;
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use std::time::Duration;

fn fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_utilization");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        for cfg in [
            EngineConfig::preset(SystemPreset::HeteroBare),
            EngineConfig::preset(SystemPreset::HeteroRc),
            EngineConfig::preset(SystemPreset::Hetero),
        ] {
            let label = format!("{}/{}", kind.name(), cfg.name);
            group.bench_function(label, |b| {
                b.iter(|| {
                    Engine::new(cfg.clone())
                        .run(&[WorkloadSpec {
                            graph: model.graph(),
                            steps: 3,
                            cpu_progr_only: false,
                        }])
                        .unwrap()
                        .ff_utilization
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
