//! Fig. 14: energy with and without RC and OP (normalized to full).

use bench::paper_model;
use criterion::{criterion_group, criterion_main, Criterion};
use pim_models::ModelKind;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use std::time::Duration;

fn fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_software_energy");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for kind in ModelKind::CNNS {
        let model = paper_model(kind);
        let workload = WorkloadSpec {
            graph: model.graph(),
            steps: 2,
            cpu_progr_only: false,
        };
        let full = Engine::new(EngineConfig::preset(SystemPreset::Hetero))
            .run(&[workload])
            .unwrap();
        for cfg in [
            EngineConfig::preset(SystemPreset::HeteroBare),
            EngineConfig::preset(SystemPreset::HeteroRc),
        ] {
            let label = format!("{}/{}", kind.name(), cfg.name);
            group.bench_function(label, |b| {
                b.iter(|| {
                    let r = Engine::new(cfg.clone()).run(&[workload]).unwrap();
                    r.dynamic_energy / full.dynamic_energy
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
