//! Schedule-legality checking: replay an execution timeline against the
//! dependency structure, device capabilities, and the Fig. 7 exclusivity
//! rules.
//!
//! The checker is pure: it consumes per-workload facts plus the recorded
//! [`TimelineEntry`] list and reports every violation as a `schedule`-pass
//! [`Diagnostic`](pim_common::Diagnostic). It backs two consumers:
//!
//! * the engine's own run-time assertions (default-on in debug builds, or
//!   with the `verify` feature) through [`Engine::verify_timeline`],
//! * the `pim-verify` static-analysis CLI, which replays every model under
//!   every configuration.
//!
//! [`Engine::verify_timeline`]: crate::engine::Engine::verify_timeline

use crate::engine::{backoff_after, AttemptOutcome, ResourceClass, TimelineEntry, MAX_ATTEMPTS};
use pim_common::Diagnostics;
use pim_hw::device::Device;
use pim_hw::faults::{FaultLane, FaultPlan, FaultTarget};
use pim_tensor::cost::CostProfile;

/// The pass name stamped on every diagnostic this module emits.
pub const PASS: &str = "schedule";

/// Absolute + relative slack for time comparisons.
///
/// The event-driven driver quantizes completion times to integer
/// femtoseconds; converting back to `f64` seconds loses at most a few
/// ulps, far below this tolerance, while any real ordering violation spans
/// an op duration (microseconds and up).
fn eps_for(seconds: f64) -> f64 {
    5e-12 + 1e-9 * seconds.abs()
}

/// Dependency and capability facts for one workload in a simulation.
#[derive(Debug, Clone)]
pub struct WorkloadFacts {
    /// Per-op dependency lists (graph predecessors), indexed by op.
    pub deps: Vec<Vec<usize>>,
    /// Training steps simulated.
    pub steps: usize,
    /// The §VI-F non-CNN co-runner rule: only CPU and programmable-PIM
    /// placements are legal for this workload.
    pub restricted: bool,
    /// Per-op cost profiles, indexed by op.
    pub costs: Vec<CostProfile>,
    /// Per-op display names, indexed by op.
    pub names: Vec<&'static str>,
}

/// Exclusive-resource budgets the timeline must respect.
#[derive(Debug, Clone, Copy)]
pub struct ResourceLimits {
    /// Concurrent host-CPU ops (the engine models one host slot).
    pub cpu_slots: usize,
    /// Concurrent programmable-PIM kernels.
    pub progr_slots: usize,
    /// Total fixed-function units on the logic die.
    pub ff_units: usize,
    /// Operation-pipeline window: `Some(depth)` means an op of step `s`
    /// may only start once every step `<= s - depth` has fully completed.
    pub pipeline_depth: Option<usize>,
}

/// Shrink applied to each interval end before the exclusivity sweep, in
/// femtoseconds, absorbing the one-quantum rounding of the clock's
/// seconds↔femtoseconds conversion. Real double-bookings overlap by whole
/// op durations and survive the shrink.
const SWEEP_SHRINK_FS: u128 = 2;

fn to_fs(seconds: f64) -> u128 {
    (seconds * 1e15).max(0.0) as u128
}

fn subject(facts: &[WorkloadFacts], e: &TimelineEntry) -> String {
    let name = facts
        .get(e.workload)
        .and_then(|f| f.names.get(e.op).copied())
        .unwrap_or("?");
    format!("wl{}/step{}/op{} ({})", e.workload, e.step, e.op, name)
}

fn holds_cpu(class: ResourceClass) -> bool {
    matches!(class, ResourceClass::Cpu | ResourceClass::CpuAndFixed)
}

fn holds_progr(class: ResourceClass) -> bool {
    matches!(class, ResourceClass::Progr | ResourceClass::ProgrAndFixed)
}

fn needs_fixed_part(class: ResourceClass) -> bool {
    matches!(
        class,
        ResourceClass::Fixed | ResourceClass::CpuAndFixed | ResourceClass::ProgrAndFixed
    )
}

/// Splits a merged multi-partition timeline (the
/// [`Engine::run_many_with`](crate::engine::Engine::run_many_with) output)
/// back into per-partition streams by its workload tags.
///
/// Entry order within each partition is preserved — the merge is stable —
/// so each returned stream is exactly the timeline that partition's
/// single-workload run recorded, re-tagged to local workload index 0 and
/// ready for [`check_timeline`] against that workload's facts alone.
/// Entries tagged beyond `partitions` are dropped; callers detect them by
/// comparing entry counts.
pub fn split_partitions(timeline: &[TimelineEntry], partitions: usize) -> Vec<Vec<TimelineEntry>> {
    let mut parts: Vec<Vec<TimelineEntry>> = vec![Vec::new(); partitions];
    for e in timeline {
        if let Some(part) = parts.get_mut(e.workload) {
            let mut local = *e;
            local.workload = 0;
            part.push(local);
        }
    }
    parts
}

/// Checks one recorded timeline against the workload facts, resource
/// budgets, and the fixed-function pool's capability rule.
///
/// `fixed` is the device model answering [`Device::accepts`] for
/// whole-kernel fixed-function placements ([`ResourceClass::Fixed`]);
/// split placements only require the cost to have a multiply/add part.
/// [`ResourceClass::Baseline`] entries belong to standalone devices
/// outside the heterogeneous stack and are checked for time validity only.
pub fn check_timeline(
    facts: &[WorkloadFacts],
    timeline: &[TimelineEntry],
    limits: &ResourceLimits,
    fixed: &dyn Device,
) -> Diagnostics {
    check_timeline_faulted(facts, timeline, limits, fixed, None)
}

/// The fault lane an entry's recorded resources live on, mirroring the
/// engine's dispatch-side classification.
fn entry_lane(e: &TimelineEntry) -> Option<FaultLane> {
    if e.ff_units > 0 {
        Some(FaultLane::Fixed)
    } else if holds_progr(e.resource) {
        Some(FaultLane::Progr)
    } else {
        None
    }
}

/// [`check_timeline`] extended with fault-awareness. With `plan: None`
/// the timeline must be fault-free: every entry attempt 0, outcome
/// `Completed`. With a plan, the checker additionally validates:
///
/// * **attempt chains** — contiguous attempt numbers per instance, with
///   exactly the last attempt completing, transient retries spaced by at
///   least their exponential backoff, and every attempt below
///   [`MAX_ATTEMPTS`] plus one kill-redispatch per permanent strike,
/// * **plan consistency** — each recorded outcome is the one the seeded
///   plan decrees for that (lane, instance, attempt), and every kill
///   coincides with a permanent fault that takes the entry's resources,
/// * **capacity under quarantine** — the exclusivity sweep shrinks the
///   fixed-function pool and programmable-PIM budgets at each permanent
///   fault's strike time.
pub fn check_timeline_faulted(
    facts: &[WorkloadFacts],
    timeline: &[TimelineEntry],
    limits: &ResourceLimits,
    fixed: &dyn Device,
    plan: Option<&FaultPlan>,
) -> Diagnostics {
    let mut diags = Diagnostics::new();

    // -- per-entry validity, bounds, capability ------------------------
    let mut valid: Vec<&TimelineEntry> = Vec::with_capacity(timeline.len());
    for e in timeline {
        let subj = subject(facts, e);
        let (s, t) = (e.start.seconds(), e.end.seconds());
        if !s.is_finite() || !t.is_finite() || s < 0.0 {
            diags.error(
                PASS,
                subj,
                format!("non-finite or negative times [{s}, {t}]"),
            );
            continue;
        }
        if t < s {
            diags.error(
                PASS,
                subj,
                format!("entry ends before it starts [{s}, {t}]"),
            );
            continue;
        }
        match plan {
            None if e.attempt != 0 || e.outcome != AttemptOutcome::Completed => {
                diags.error(
                    PASS,
                    subj.clone(),
                    format!(
                        "fault-free timeline carries attempt {} with outcome {:?}",
                        e.attempt, e.outcome
                    ),
                );
            }
            // Transient/timeout retries are bounded by MAX_ATTEMPTS, but
            // each permanent strike may additionally kill-and-redispatch
            // an in-flight instance once, so kills raise the bound.
            Some(p)
                if u64::from(e.attempt) >= u64::from(MAX_ATTEMPTS) + p.permanents.len() as u64 =>
            {
                diags.error(
                    PASS,
                    subj.clone(),
                    format!(
                        "attempt {} exceeds the retry bound of {MAX_ATTEMPTS} plus {} permanent strikes",
                        e.attempt,
                        p.permanents.len()
                    ),
                );
            }
            _ => {}
        }
        if e.resource == ResourceClass::Baseline {
            continue; // standalone device: no graph/resource mapping
        }
        let Some(f) = facts.get(e.workload) else {
            diags.error(PASS, subj, "workload index out of bounds");
            continue;
        };
        if e.op >= f.deps.len() || e.op >= f.costs.len() {
            diags.error(PASS, subj, "op index out of bounds for its workload");
            continue;
        }
        if e.step >= f.steps {
            diags.error(
                PASS,
                subj,
                format!("step index out of bounds (workload has {} steps)", f.steps),
            );
            continue;
        }
        let cost = &f.costs[e.op];
        if f.restricted && !matches!(e.resource, ResourceClass::Cpu | ResourceClass::Progr) {
            diags.error(
                PASS,
                subj.clone(),
                format!(
                    "restricted workload placed on {:?}; only CPU and Progr are legal",
                    e.resource
                ),
            );
        }
        if needs_fixed_part(e.resource) && e.ff_units == 0 {
            diags.error(
                PASS,
                subj.clone(),
                format!("{:?} placement holds zero fixed-function units", e.resource),
            );
        }
        if e.ff_units > limits.ff_units {
            diags.error(
                PASS,
                subj.clone(),
                format!(
                    "entry holds {} fixed-function units; the pool has {}",
                    e.ff_units, limits.ff_units
                ),
            );
        }
        match e.resource {
            ResourceClass::Fixed if !fixed.accepts(cost) => {
                diags.error(
                    PASS,
                    subj.clone(),
                    format!(
                        "whole-kernel fixed-function placement, but {} rejects class {:?}",
                        fixed.name(),
                        cost.class
                    ),
                );
            }
            ResourceClass::CpuAndFixed | ResourceClass::ProgrAndFixed
                if !cost.class.has_fixed_function_part() =>
            {
                diags.error(
                    PASS,
                    subj.clone(),
                    format!(
                        "split placement {:?}, but class {:?} has no multiply/add part",
                        e.resource, cost.class
                    ),
                );
            }
            _ => {}
        }
        valid.push(e);
    }

    // -- completeness: each (workload, step, op) completes exactly once --
    // instance index = step * op_count + op. Under a fault plan, failed
    // attempts are legal extra entries; exactly one must complete.
    let mut seen: Vec<Vec<Option<(f64, f64)>>> = facts
        .iter()
        .map(|f| vec![None; f.steps * f.deps.len()])
        .collect();
    for e in &valid {
        if plan.is_some() && e.outcome != AttemptOutcome::Completed {
            continue;
        }
        let f = &facts[e.workload];
        let idx = e.step * f.deps.len() + e.op;
        if seen[e.workload][idx].is_some() {
            diags.error(PASS, subject(facts, e), "instance scheduled more than once");
        } else {
            seen[e.workload][idx] = Some((e.start.seconds(), e.end.seconds()));
        }
    }
    for (w, f) in facts.iter().enumerate() {
        let ops = f.deps.len();
        for (idx, slot) in seen[w].iter().enumerate() {
            if slot.is_none() {
                let (step, op) = (idx / ops, idx % ops);
                let name = f.names.get(op).copied().unwrap_or("?");
                diags.error(
                    PASS,
                    format!("wl{w}/step{step}/op{op} ({name})"),
                    "instance never scheduled",
                );
            }
        }
    }

    // -- dependency order (intra-step edges and the cross-step chain) --
    for e in &valid {
        let f = &facts[e.workload];
        let ops = f.deps.len();
        let start = e.start.seconds();
        let mut require_after = |dep_step: usize, dep_op: usize, what: &str| {
            if let Some((_, dep_end)) = seen[e.workload][dep_step * ops + dep_op] {
                if start + eps_for(start) < dep_end {
                    diags.error(
                        PASS,
                        subject(facts, e),
                        format!(
                            "starts at {start:.3e} s before {what} op{dep_op} of step \
                             {dep_step} ends at {dep_end:.3e} s"
                        ),
                    );
                }
            }
        };
        for &d in &f.deps[e.op] {
            require_after(e.step, d, "dependency");
        }
        if e.step > 0 {
            require_after(e.step - 1, e.op, "previous instance of");
        }
    }

    // -- operation-pipeline window -------------------------------------
    if let Some(depth) = limits.pipeline_depth {
        for (w, f) in facts.iter().enumerate() {
            let ops = f.deps.len();
            if ops == 0 || f.steps == 0 {
                continue;
            }
            // Latest completion per step, then running prefix max: the
            // window rule compares against *all* steps at or before the
            // horizon.
            let mut step_end = vec![0.0f64; f.steps];
            for (idx, slot) in seen[w].iter().enumerate() {
                if let Some((_, end)) = slot {
                    let step = idx / ops;
                    step_end[step] = step_end[step].max(*end);
                }
            }
            let mut prefix = step_end.clone();
            for s in 1..f.steps {
                prefix[s] = prefix[s].max(prefix[s - 1]);
            }
            for e in valid.iter().filter(|e| e.workload == w) {
                if e.step >= depth {
                    let horizon = prefix[e.step - depth];
                    let start = e.start.seconds();
                    if start + eps_for(start) < horizon {
                        diags.error(
                            PASS,
                            subject(facts, e),
                            format!(
                                "starts at {start:.3e} s inside the pipeline window: step \
                                 {} only completes at {horizon:.3e} s (depth {depth})",
                                e.step - depth
                            ),
                        );
                    }
                }
            }
        }
    }

    // -- attempt chains + plan consistency (fault-aware mode) ----------
    if let Some(plan) = plan {
        let mut chains: Vec<Vec<Vec<&TimelineEntry>>> = facts
            .iter()
            .map(|f| vec![Vec::new(); f.steps * f.deps.len()])
            .collect();
        for e in &valid {
            let f = &facts[e.workload];
            chains[e.workload][e.step * f.deps.len() + e.op].push(e);
        }
        for chain in chains.iter_mut().flatten() {
            if chain.is_empty() {
                continue;
            }
            chain.sort_by_key(|e| e.attempt);
            let contiguous = chain
                .iter()
                .enumerate()
                .all(|(k, e)| e.attempt as usize == k);
            if !contiguous {
                diags.error(
                    PASS,
                    subject(facts, chain[0]),
                    "attempt numbers are not contiguous from zero",
                );
                continue;
            }
            for (k, e) in chain.iter().enumerate() {
                let last = k + 1 == chain.len();
                if last != (e.outcome == AttemptOutcome::Completed) {
                    diags.error(
                        PASS,
                        subject(facts, e),
                        format!(
                            "attempt {} of {} has outcome {:?}; exactly the final attempt \
                             must complete",
                            k,
                            chain.len(),
                            e.outcome
                        ),
                    );
                }
                if k > 0 {
                    let prev = chain[k - 1];
                    let mut floor = prev.end.seconds();
                    if prev.outcome == AttemptOutcome::Transient {
                        floor += backoff_after(prev.attempt).seconds();
                    }
                    let start = e.start.seconds();
                    if start + eps_for(start) < floor {
                        diags.error(
                            PASS,
                            subject(facts, e),
                            format!(
                                "retry starts at {start:.3e} s before the previous attempt's \
                                 end plus backoff at {floor:.3e} s"
                            ),
                        );
                    }
                }
            }
        }
        for e in &valid {
            let lane = entry_lane(e);
            let (w, s, o, a) = (e.workload, e.step, e.op, e.attempt);
            match e.outcome {
                AttemptOutcome::Completed => {
                    if let Some(l) = lane {
                        if a + 1 < MAX_ATTEMPTS
                            && (plan.transient_fails(l, w, s, o, a)
                                || plan.times_out(l, w, s, o, a))
                        {
                            diags.error(
                                PASS,
                                subject(facts, e),
                                format!(
                                    "attempt {a} completed, but the fault plan decrees it fails"
                                ),
                            );
                        }
                    }
                }
                AttemptOutcome::Transient => match lane {
                    Some(l) if plan.transient_fails(l, w, s, o, a) => {}
                    _ => diags.error(
                        PASS,
                        subject(facts, e),
                        format!("attempt {a} records a transient the fault plan does not decree"),
                    ),
                },
                AttemptOutcome::TimedOut => match lane {
                    Some(l)
                        if !plan.transient_fails(l, w, s, o, a)
                            && plan.times_out(l, w, s, o, a) => {}
                    _ => diags.error(
                        PASS,
                        subject(facts, e),
                        format!("attempt {a} records a timeout the fault plan does not decree"),
                    ),
                },
                AttemptOutcome::Killed => {
                    let end = e.end.seconds();
                    let matched = plan.permanents.iter().any(|p| {
                        p.at.seconds() > 0.0
                            && (end - p.at.seconds()).abs() <= eps_for(end)
                            && match p.target {
                                FaultTarget::FixedUnits(_) => e.ff_units > 0,
                                FaultTarget::ProgrPim => holds_progr(e.resource),
                            }
                    });
                    if !matched {
                        diags.error(
                            PASS,
                            subject(facts, e),
                            "killed with no permanent fault striking its resources at its end",
                        );
                    }
                }
            }
        }
    }

    // -- exclusivity sweep (Fig. 7 busy/idle registers) ----------------
    // Events at (femtosecond, rank) with releases applied first, then
    // fault-plan capacity cuts, then acquires: back-to-back intervals
    // sharing an instant never report contention, and work killed exactly
    // at a strike releases its units before the capacity drops.
    const RELEASE: u8 = 0;
    const CUT: u8 = 1;
    const ACQUIRE: u8 = 2;
    // (strike femtosecond, ff units lost, progr lost)
    let mut cuts: Vec<(u128, usize, bool)> = Vec::new();
    let mut ff_cap = limits.ff_units as i64;
    let mut progr_cap = limits.progr_slots as i64;
    if let Some(plan) = plan {
        ff_cap -= plan.initial_ff_quarantine().min(limits.ff_units) as i64;
        if plan.progr_quarantined_initially() {
            progr_cap = 0;
        }
        for p in &plan.permanents {
            if p.at.seconds() <= 0.0 {
                continue;
            }
            match p.target {
                FaultTarget::FixedUnits(n) => cuts.push((to_fs(p.at.seconds()), n, false)),
                FaultTarget::ProgrPim => cuts.push((to_fs(p.at.seconds()), 0, true)),
            }
        }
    }
    let mut events: Vec<(u128, u8, usize)> = Vec::new();
    for (i, e) in valid.iter().enumerate() {
        let (a, b) = (to_fs(e.start.seconds()), to_fs(e.end.seconds()));
        if b <= a + 2 * SWEEP_SHRINK_FS {
            continue; // effectively instantaneous: cannot double-book
        }
        events.push((a + SWEEP_SHRINK_FS, ACQUIRE, i));
        events.push((b - SWEEP_SHRINK_FS, RELEASE, i));
    }
    for (i, &(t, _, _)) in cuts.iter().enumerate() {
        events.push((t, CUT, i));
    }
    events.sort_unstable_by_key(|&(t, rank, _)| (t, rank));
    let (mut cpu_used, mut progr_used, mut ff_used) = (0i64, 0i64, 0i64);
    for (t, rank, i) in events {
        if rank == CUT {
            let (_, n, progr) = cuts[i];
            let at = t as f64 * 1e-15;
            if progr {
                progr_cap = 0;
                if progr_used > 0 {
                    diags.error(
                        PASS,
                        format!("fault-plan strike at {at:.3e} s"),
                        format!(
                            "{progr_used} programmable-PIM kernels survive the PIM's \
                             permanent fault"
                        ),
                    );
                }
            } else {
                let lost = (n as i64).min(ff_cap);
                ff_cap -= lost;
                if ff_used > ff_cap {
                    diags.error(
                        PASS,
                        format!("fault-plan strike at {at:.3e} s"),
                        format!(
                            "{ff_used} fixed-function units held past a quarantine of \
                             {lost} (capacity now {ff_cap})"
                        ),
                    );
                }
            }
            continue;
        }
        let e = valid[i];
        let delta = if rank == ACQUIRE { 1 } else { -1 };
        if holds_cpu(e.resource) {
            cpu_used += delta;
            if rank == ACQUIRE && cpu_used > limits.cpu_slots as i64 {
                diags.error(
                    PASS,
                    subject(facts, e),
                    format!(
                        "double-books the CPU: {cpu_used} concurrent host ops (limit {})",
                        limits.cpu_slots
                    ),
                );
            }
        }
        if holds_progr(e.resource) {
            progr_used += delta;
            if rank == ACQUIRE && progr_used > progr_cap {
                diags.error(
                    PASS,
                    subject(facts, e),
                    format!(
                        "over-subscribes the programmable PIM: {progr_used} concurrent \
                         kernels (limit {progr_cap})"
                    ),
                );
            }
        }
        if e.ff_units > 0 {
            ff_used += delta * e.ff_units as i64;
            if rank == ACQUIRE && ff_used > ff_cap {
                diags.error(
                    PASS,
                    subject(facts, e),
                    format!(
                        "over-subscribes the fixed-function pool: {ff_used} units held \
                         (limit {ff_cap})"
                    ),
                );
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::{Bytes, Seconds};
    use pim_hw::fixed::{FixedFunctionPool, FixedPoolConfig};
    use pim_mem::stack::StackConfig;
    use pim_tensor::cost::{CostProfile, OffloadClass};

    fn cost(class: OffloadClass) -> CostProfile {
        CostProfile::compute(1e6, 1e6, 0.0, Bytes::new(1e4), Bytes::new(1e4), class, 64)
    }

    fn facts() -> Vec<WorkloadFacts> {
        vec![WorkloadFacts {
            deps: vec![vec![], vec![0]],
            steps: 1,
            restricted: false,
            costs: vec![
                cost(OffloadClass::FullyMulAdd),
                cost(OffloadClass::NonMulAdd),
            ],
            names: vec!["MatMul", "Relu"],
        }]
    }

    fn limits() -> ResourceLimits {
        ResourceLimits {
            cpu_slots: 1,
            progr_slots: 2,
            ff_units: 128,
            pipeline_depth: None,
        }
    }

    fn pool() -> FixedFunctionPool {
        FixedFunctionPool::new(FixedPoolConfig::with_units(&StackConfig::hmc2(), 128))
    }

    fn entry(op: usize, start: f64, end: f64, resource: ResourceClass) -> TimelineEntry {
        TimelineEntry {
            workload: 0,
            step: 0,
            op,
            start: Seconds::new(start),
            end: Seconds::new(end),
            resource,
            ff_units: match resource {
                ResourceClass::Fixed
                | ResourceClass::CpuAndFixed
                | ResourceClass::ProgrAndFixed => 64,
                _ => 0,
            },
            attempt: 0,
            outcome: AttemptOutcome::Completed,
        }
    }

    fn attempt_entry(
        op: usize,
        start: f64,
        end: f64,
        resource: ResourceClass,
        attempt: u32,
        outcome: AttemptOutcome,
    ) -> TimelineEntry {
        TimelineEntry {
            attempt,
            outcome,
            ..entry(op, start, end, resource)
        }
    }

    #[test]
    fn legal_serial_timeline_is_clean() {
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
        ];
        let diags = check_timeline(&facts(), &timeline, &limits(), &pool());
        assert!(diags.is_clean(), "{}", diags.render_text());
    }

    #[test]
    fn dependency_violation_is_reported() {
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 0.5, 1.5, ResourceClass::Cpu), // starts before its dep ends
        ];
        let diags = check_timeline(&facts(), &timeline, &limits(), &pool());
        assert_eq!(diags.error_count(), 1);
        assert!(diags.render_text().contains("before dependency op0"));
    }

    #[test]
    fn double_booked_cpu_is_reported() {
        let mut facts = facts();
        facts[0].deps[1].clear(); // make the ops independent
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Cpu),
            entry(1, 0.5, 1.5, ResourceClass::Cpu),
        ];
        let diags = check_timeline(&facts, &timeline, &limits(), &pool());
        assert_eq!(diags.error_count(), 1);
        assert!(diags.render_text().contains("double-books the CPU"));
    }

    #[test]
    fn missing_and_duplicate_instances_are_reported() {
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(0, 1.0, 2.0, ResourceClass::Fixed),
        ];
        let diags = check_timeline(&facts(), &timeline, &limits(), &pool());
        let text = diags.render_text();
        assert!(text.contains("more than once"), "{text}");
        assert!(text.contains("never scheduled"), "{text}");
    }

    #[test]
    fn fixed_placement_of_non_mul_add_is_rejected() {
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Fixed), // Relu on the pool
        ];
        let diags = check_timeline(&facts(), &timeline, &limits(), &pool());
        assert_eq!(diags.error_count(), 1);
        assert!(diags.render_text().contains("rejects class"));
    }

    #[test]
    fn restricted_workload_must_stay_on_cpu_and_progr() {
        let mut facts = facts();
        facts[0].restricted = true;
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
        ];
        let diags = check_timeline(&facts, &timeline, &limits(), &pool());
        assert!(diags.render_text().contains("restricted workload"));
    }

    #[test]
    fn touching_intervals_do_not_double_book() {
        let mut facts = facts();
        facts[0].deps[1].clear();
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Cpu),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
        ];
        let diags = check_timeline(&facts, &timeline, &limits(), &pool());
        assert!(diags.is_clean(), "{}", diags.render_text());
    }

    #[test]
    fn fault_free_timeline_rejects_fault_outcomes() {
        let timeline = vec![
            attempt_entry(
                0,
                0.0,
                1.0,
                ResourceClass::Fixed,
                0,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                1.1,
                2.1,
                ResourceClass::Fixed,
                1,
                AttemptOutcome::Completed,
            ),
            entry(1, 2.1, 3.1, ResourceClass::Cpu),
        ];
        let diags = check_timeline(&facts(), &timeline, &limits(), &pool());
        let text = diags.render_text();
        assert!(
            text.contains("fault-free timeline carries attempt"),
            "{text}"
        );
    }

    #[test]
    fn faulted_checker_accepts_a_legal_retry_chain() {
        use pim_hw::faults::FaultPlan;
        // Every faultable attempt below the bound fails as a transient;
        // the final attempt completes. CPU placements never fault.
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::none()
        };
        let timeline = vec![
            attempt_entry(
                0,
                0.0,
                1.0,
                ResourceClass::Fixed,
                0,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                1.1,
                2.1,
                ResourceClass::Fixed,
                1,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                2.2,
                3.2,
                ResourceClass::Fixed,
                2,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                3.3,
                4.3,
                ResourceClass::Fixed,
                3,
                AttemptOutcome::Completed,
            ),
            entry(1, 4.3, 5.3, ResourceClass::Cpu),
        ];
        let diags = check_timeline_faulted(&facts(), &timeline, &limits(), &pool(), Some(&plan));
        assert!(diags.is_clean(), "{}", diags.render_text());
    }

    #[test]
    fn faulted_checker_flags_backoff_and_chain_violations() {
        use pim_hw::faults::FaultPlan;
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::none()
        };
        // Retry ignores the backoff, and a second chain skips attempt 1.
        let timeline = vec![
            attempt_entry(
                0,
                0.0,
                1.0,
                ResourceClass::Fixed,
                0,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                1.0,
                2.0,
                ResourceClass::Fixed,
                1,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                2.1,
                3.1,
                ResourceClass::Fixed,
                2,
                AttemptOutcome::Transient,
            ),
            attempt_entry(
                0,
                3.2,
                4.2,
                ResourceClass::Fixed,
                3,
                AttemptOutcome::Completed,
            ),
            attempt_entry(
                1,
                4.3,
                5.3,
                ResourceClass::Cpu,
                1,
                AttemptOutcome::Completed,
            ),
        ];
        let diags = check_timeline_faulted(&facts(), &timeline, &limits(), &pool(), Some(&plan));
        let text = diags.render_text();
        assert!(
            text.contains("before the previous attempt's end plus backoff"),
            "{text}"
        );
        assert!(text.contains("not contiguous"), "{text}");
    }

    #[test]
    fn faulted_checker_flags_work_surviving_a_quarantine() {
        use pim_common::units::Seconds as S;
        use pim_hw::faults::{FaultPlan, FaultTarget};
        let mut facts = facts();
        facts[0].deps[1].clear();
        // All 128 units quarantined at t = 0.5 while op0 still holds 64
        // until t = 1.0, and no kill was recorded.
        let plan = FaultPlan::none().with_permanent(S::new(0.5), FaultTarget::FixedUnits(128));
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
        ];
        let diags = check_timeline_faulted(&facts, &timeline, &limits(), &pool(), Some(&plan));
        let text = diags.render_text();
        assert!(text.contains("held past a quarantine"), "{text}");
    }

    #[test]
    fn split_partitions_of_empty_timeline_yields_empty_streams() {
        let parts = split_partitions(&[], 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Vec::is_empty));
        // Zero partitions is also well-formed: nothing to split into.
        assert!(split_partitions(&[], 0).is_empty());
    }

    #[test]
    fn split_partitions_single_partition_is_identity_modulo_tag() {
        let timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
        ];
        let parts = split_partitions(&timeline, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(
            parts[0], timeline,
            "workload 0 entries pass through unchanged"
        );
    }

    #[test]
    fn split_partitions_all_entries_in_one_partition_leaves_others_empty() {
        let mut timeline = vec![
            entry(0, 0.0, 1.0, ResourceClass::Fixed),
            entry(1, 1.0, 2.0, ResourceClass::Cpu),
            entry(1, 2.0, 3.0, ResourceClass::Progr),
        ];
        for e in &mut timeline {
            e.workload = 2;
        }
        let parts = split_partitions(&timeline, 4);
        assert_eq!(parts.len(), 4);
        assert!(parts[0].is_empty() && parts[1].is_empty() && parts[3].is_empty());
        assert_eq!(parts[2].len(), 3);
        // Entries are re-tagged to local index 0 with order preserved.
        assert!(parts[2].iter().all(|e| e.workload == 0));
        assert_eq!(
            parts[2].iter().map(|e| e.op).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn split_partitions_drops_entries_tagged_beyond_the_partition_count() {
        let mut stray = entry(0, 0.0, 1.0, ResourceClass::Cpu);
        stray.workload = 7;
        let timeline = vec![entry(0, 0.0, 1.0, ResourceClass::Fixed), stray];
        let parts = split_partitions(&timeline, 2);
        let kept: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(
            kept, 1,
            "out-of-range tags are dropped, detectable by count"
        );
    }
}
