//! The framework-facing training session (the TensorFlow-runtime
//! extension of §IV-C).
//!
//! "Our runtime scheduler profiles the first step of training to obtain
//! operation characterization. It then performs dynamic scheduling of
//! operations across CPU, programmable PIM, and fixed-function PIMs in the
//! rest of the training steps."

use crate::engine::{Engine, EngineConfig, WorkloadSpec};
use crate::profiler::{profile_step, StepProfile};
use crate::select::{select_candidates, CandidateSet};
use crate::stats::ExecutionReport;
use pim_common::Result;
use pim_graph::Graph;

/// A training session bound to one model graph and one system
/// configuration.
///
/// # Examples
///
/// ```
/// use pim_runtime::engine::{EngineConfig, SystemPreset};
/// use pim_runtime::session::TrainingSession;
/// use pim_models::{Model, ModelKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
/// let session = TrainingSession::new(model.graph(), EngineConfig::preset(SystemPreset::Hetero))?;
/// // The first step profiled; candidates chosen by the global index.
/// assert!(session.candidates().time_coverage >= 0.90);
/// let report = session.train(3)?;
/// assert!(report.is_well_formed());
/// # Ok(())
/// # }
/// ```
pub struct TrainingSession<'g> {
    graph: &'g Graph,
    engine: Engine,
    profile: StepProfile,
    candidates: CandidateSet,
}

impl<'g> TrainingSession<'g> {
    /// Creates a session: runs the step-1 profile on the configuration's
    /// host CPU ([`EngineConfig::host`]) and selects offload candidates.
    ///
    /// # Errors
    ///
    /// Propagates profiling failures.
    pub fn new(graph: &'g Graph, config: EngineConfig) -> Result<Self> {
        let coverage = config.coverage;
        let engine = Engine::new(config);
        let profile = profile_step(graph, engine.profiling_device())?;
        let candidates = select_candidates(&profile, coverage);
        Ok(TrainingSession {
            graph,
            engine,
            profile,
            candidates,
        })
    }

    /// The step-1 profile.
    pub fn profile(&self) -> &StepProfile {
        &self.profile
    }

    /// The selected offload candidates.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Simulates `steps` training steps under the session's configuration
    /// (the profiling step is charged as one extra CPU-serialized step's
    /// worth of time in the paper but is negligible against thousands of
    /// steps; it is excluded here as the paper's figures do).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn train(&self, steps: usize) -> Result<ExecutionReport> {
        self.engine.run(&[WorkloadSpec {
            graph: self.graph,
            steps,
            cpu_progr_only: false,
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SystemPreset;
    use pim_models::{Model, ModelKind};

    #[test]
    fn session_profiles_once_and_trains() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 4).unwrap();
        let session =
            TrainingSession::new(model.graph(), EngineConfig::preset(SystemPreset::Hetero))
                .unwrap();
        assert_eq!(session.profile().ops.len(), model.graph().op_count());
        let r2 = session.train(2).unwrap();
        let r4 = session.train(4).unwrap();
        assert!(r4.makespan > r2.makespan);
    }

    #[test]
    fn session_profiles_on_the_configured_host() {
        use pim_hw::cpu::CpuDevice;
        let model = Model::build_with_batch(ModelKind::AlexNet, 2).unwrap();
        let mut params = CpuDevice::xeon_e5_2630_v3().params().clone();
        params.name = "FastHost";
        params.ma_throughput *= 2.0;
        params.other_throughput *= 2.0;
        let fast_cfg =
            EngineConfig::preset(SystemPreset::Hetero).with_host_cpu(CpuDevice::custom(params));
        let fast = TrainingSession::new(model.graph(), fast_cfg).unwrap();
        let base = TrainingSession::new(model.graph(), EngineConfig::preset(SystemPreset::Hetero))
            .unwrap();
        assert!(fast.profile().total_time() < base.profile().total_time());
    }

    #[test]
    fn candidate_set_is_reused_across_training_calls() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 2).unwrap();
        let session =
            TrainingSession::new(model.graph(), EngineConfig::preset(SystemPreset::Hetero))
                .unwrap();
        let before = session.candidates().ranked.clone();
        session.train(1).unwrap();
        assert_eq!(before, session.candidates().ranked);
    }
}
