//! Step-1 profiling (§III-C, "Step 1: profiling").
//!
//! "The runtime profiles performance of all operations on CPU. The
//! profiling happens in only one step of NN model training ... During
//! profiling, the runtime executes operations one by one in CPU, collecting
//! execution time and the number of main memory accesses of each operation
//! with hardware counters."
//!
//! Inter-operation parallelism is disabled during the profile (as in the
//! paper's §II-A characterization methodology), so the numbers are exactly
//! the CPU device model's per-op estimates.

use pim_common::ids::OpId;
use pim_common::units::Seconds;
use pim_common::Result;
use pim_graph::cost::op_cost;
use pim_graph::Graph;
use pim_hw::cpu::CpuDevice;
use pim_tensor::cost::CostProfile;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Profile of one operation instance collected during the profiling step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OpProfile {
    /// The operation.
    pub op: OpId,
    /// Its TensorFlow display name.
    pub name: &'static str,
    /// Analytic cost (shapes-derived).
    pub cost: CostProfile,
    /// Execution time observed on the CPU.
    pub cpu_time: Seconds,
    /// Main-memory accesses observed (64-byte lines).
    pub memory_accesses: u64,
}

/// The complete profiling-step output.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepProfile {
    /// Per-op profiles in op-id order.
    pub ops: Vec<OpProfile>,
}

impl StepProfile {
    /// Total CPU execution time of the profiled step.
    pub fn total_time(&self) -> Seconds {
        self.ops.iter().map(|p| p.cpu_time).sum()
    }

    /// Total main-memory accesses of the profiled step.
    pub fn total_memory_accesses(&self) -> u64 {
        self.ops.iter().map(|p| p.memory_accesses).sum()
    }

    /// Profiles aggregated by op name: `(name, time share, access share,
    /// invocations)`, sorted by time share descending — the rows of
    /// Table I.
    pub fn by_name(&self) -> Vec<NameAggregate> {
        // Aggregate in first-appearance (op-stream) order so the stable
        // sort below resolves time ties deterministically, instead of by
        // hash-map iteration order — candidate ranking and figure output
        // must not vary run to run.
        let mut index: std::collections::HashMap<&'static str, usize> =
            std::collections::HashMap::new();
        let mut rows: Vec<NameAggregate> = Vec::new();
        for p in &self.ops {
            let i = *index.entry(p.name).or_insert_with(|| {
                rows.push(NameAggregate {
                    name: p.name,
                    time: Seconds::ZERO,
                    memory_accesses: 0,
                    invocations: 0,
                });
                rows.len() - 1
            });
            rows[i].time += p.cpu_time;
            rows[i].memory_accesses += p.memory_accesses;
            rows[i].invocations += 1;
        }
        rows.sort_by(|a, b| {
            b.time
                .partial_cmp(&a.time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }
}

/// Per-op-name aggregate (one row of Table I).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NameAggregate {
    /// TensorFlow op name.
    pub name: &'static str,
    /// Summed execution time.
    pub time: Seconds,
    /// Summed main-memory accesses.
    pub memory_accesses: u64,
    /// Number of invocations in the step.
    pub invocations: usize,
}

/// Runs the profiling step for a training graph on the CPU device model.
///
/// # Examples
///
/// ```
/// use pim_runtime::profiler::profile_step;
/// use pim_hw::cpu::CpuDevice;
/// use pim_models::{Model, ModelKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
/// let profile = profile_step(model.graph(), &CpuDevice::xeon_e5_2630_v3())?;
/// assert_eq!(profile.ops.len(), model.graph().op_count());
/// assert!(profile.total_time().seconds() > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates cost-model failures for malformed graphs.
pub fn profile_step(graph: &Graph, cpu: &CpuDevice) -> Result<StepProfile> {
    let mut ops = Vec::with_capacity(graph.op_count());
    for node in graph.ops() {
        let cost = op_cost(graph, node)?;
        let est = cpu.estimate_op(&cost);
        ops.push(OpProfile {
            op: node.id,
            name: node.kind.tf_name(),
            cost,
            cpu_time: est.time,
            memory_accesses: cost.memory_accesses(),
        });
    }
    Ok(StepProfile { ops })
}

/// Memo key: graph structure fingerprint, op count (a cheap second
/// discriminant against fingerprint collisions), and the CPU device's
/// parameter fingerprint.
type ProfileKey = (u64, usize, u64);

/// Process-wide memo of profiling-step results.
///
/// The profiling pass is a pure function of the graph structure and the
/// CPU device parameters, so a sweep over N system presets of the same
/// model profiles its graph once instead of N times. Entries are shared
/// via `Arc` — a hit costs one lock plus one refcount bump.
static PROFILE_MEMO: OnceLock<Mutex<HashMap<ProfileKey, Arc<StepProfile>>>> = OnceLock::new();

fn profile_memo() -> &'static Mutex<HashMap<ProfileKey, Arc<StepProfile>>> {
    PROFILE_MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// [`profile_step`] behind the process-wide memo.
///
/// The first call for a given (graph structure, CPU parameters) pair runs
/// the real profiling pass; later calls return the shared result. The
/// returned profile is always equal to what a fresh [`profile_step`] would
/// produce (a property-tested invariant).
///
/// # Errors
///
/// Propagates cost-model failures for malformed graphs (never cached).
pub fn profile_step_cached(graph: &Graph, cpu: &CpuDevice) -> Result<Arc<StepProfile>> {
    let key = (
        graph.structural_hash(),
        graph.op_count(),
        pim_common::fingerprint::debug_hash(cpu.params()),
    );
    if let Some(hit) = profile_memo()
        .lock()
        .expect("profile memo poisoned")
        .get(&key)
    {
        return Ok(Arc::clone(hit));
    }
    // Profile outside the lock: concurrent misses for the same key both
    // compute the (identical) result and the last insert wins.
    let fresh = Arc::new(profile_step(graph, cpu)?);
    profile_memo()
        .lock()
        .expect("profile memo poisoned")
        .insert(key, Arc::clone(&fresh));
    Ok(fresh)
}

fn trace_profile_instant(profile: &StepProfile, tracer: &mut dyn pim_common::trace::TraceSink) {
    if tracer.enabled() {
        tracer.record(pim_common::trace::TraceEvent::Instant {
            track: crate::engine::SCHED_TRACK,
            name: "profile step".to_string(),
            cat: "meta",
            ts: Seconds::ZERO,
            args: vec![
                ("ops", profile.ops.len().into()),
                ("cpu_seconds", profile.total_time().seconds().into()),
                ("memory_accesses", profile.total_memory_accesses().into()),
            ],
        });
    }
}

/// [`profile_step`] plus an instant on the scheduler trace track
/// summarizing what the profiling pass produced. Recording happens only
/// when the sink is enabled; with [`pim_common::NullTrace`] this is
/// exactly `profile_step`.
///
/// # Errors
///
/// Propagates cost-model failures for malformed graphs.
pub fn profile_step_traced(
    graph: &Graph,
    cpu: &CpuDevice,
    tracer: &mut dyn pim_common::trace::TraceSink,
) -> Result<StepProfile> {
    let profile = profile_step(graph, cpu)?;
    trace_profile_instant(&profile, tracer);
    Ok(profile)
}

/// [`profile_step_cached`] plus the same trace instant
/// [`profile_step_traced`] emits — memo hits still record it, so traced
/// output is byte-identical whether or not the cache was warm.
///
/// # Errors
///
/// Propagates cost-model failures for malformed graphs.
pub fn profile_step_cached_traced(
    graph: &Graph,
    cpu: &CpuDevice,
    tracer: &mut dyn pim_common::trace::TraceSink,
) -> Result<Arc<StepProfile>> {
    let profile = profile_step_cached(graph, cpu)?;
    trace_profile_instant(&profile, tracer);
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::{Model, ModelKind};

    fn vgg_profile() -> StepProfile {
        // The paper's batch size (32): the characterization claims of
        // Table I are batch-scale properties.
        let model = Model::build(ModelKind::Vgg19).unwrap();
        profile_step(model.graph(), &CpuDevice::xeon_e5_2630_v3()).unwrap()
    }

    #[test]
    fn top_ops_dominate_time_as_in_table_i() {
        // Paper: "top five operations in VGG-19 model consume over 95% of
        // total execution time".
        let profile = vgg_profile();
        let rows = profile.by_name();
        let top5: Seconds = rows.iter().take(5).map(|r| r.time).sum();
        let share = top5 / profile.total_time();
        assert!(share > 0.95, "top-5 share = {share}");
    }

    #[test]
    fn conv_backprop_filter_is_rank_one() {
        // Table I's VGG-19 column: Conv2DBackpropFilter leads both lists.
        let profile = vgg_profile();
        let rows = profile.by_name();
        assert_eq!(rows[0].name, "Conv2DBackpropFilter");
        let by_mem = {
            let mut r = rows.clone();
            r.sort_by_key(|x| std::cmp::Reverse(x.memory_accesses));
            r
        };
        assert_eq!(by_mem[0].name, "Conv2DBackpropFilter");
    }

    #[test]
    fn aggregates_cover_all_ops() {
        let profile = vgg_profile();
        let total_invocations: usize = profile.by_name().iter().map(|r| r.invocations).sum();
        assert_eq!(total_invocations, profile.ops.len());
    }

    #[test]
    fn time_consuming_ops_are_memory_intensive() {
        // The paper's second observation: the top time consumers also top
        // the memory-access ranking (the paper reports >98%; our cost model
        // attributes more traffic to the elementwise tail, landing at ~71%
        // — the concentration claim still holds, see EXPERIMENTS.md).
        let profile = vgg_profile();
        let rows = profile.by_name();
        let top5_mem: u64 = {
            let mut r = rows.clone();
            r.sort_by_key(|x| std::cmp::Reverse(x.memory_accesses));
            r.iter().take(5).map(|x| x.memory_accesses).sum()
        };
        let share = top5_mem as f64 / profile.total_memory_accesses() as f64;
        assert!(share > 0.65, "top-5 memory share = {share}");
    }
}
