//! Schedule-order fuzzing: the pass-5 order-invariance audit.
//!
//! The engine pins every incidental iteration order to a deterministic
//! tie-break (first-appearance profile rows, the shared event `seq`
//! counter, the `(step, rank, wl, op)` ready-key order). The PR-3
//! HashMap-tie bug showed what happens when one of those orders leaks
//! from an unordered container: run-to-run nondeterminism that tier-1
//! tests cannot catch. This module makes the pinned orders *explicit
//! policy* ([`TieBreak`]) and adds a differential fuzz driver
//! ([`check_order_invariance`] / [`fuzz_orders`]) asserting that the
//! execution report is invariant to seeded permutations of the tie
//! groups, that every permuted timeline still replays legally through
//! [`crate::verify`], and that the counter registries agree.
//!
//! Three policies:
//!
//! * [`TieBreak::Stable`] — today's order, byte-for-byte. The default;
//!   the hot path is untouched (no sort, no hash, identity `seq`).
//! * [`TieBreak::Permuted`] — a seeded xorshift*-derived permutation of
//!   the orders the engine's contract declares *inert*: the emission
//!   order of the candidate ranking, which the planner consumes purely
//!   as a set. The first full-surface fuzz showed the other pinned ties
//!   are schedule-significant, not incidental — same-femtosecond retire
//!   order and equal-`(step, rank)` scan order pick dispatch winners
//!   under contention, and selection-tie order picks membership at the
//!   90%-coverage boundary — so those stay pinned to first appearance,
//!   and their determinism is audited by a stable-rerun comparison
//!   inside [`check_order_invariance`] instead (DESIGN.md §4.10).
//!   Invariance of the report under every `Permuted` seed is the
//!   audited property.
//! * [`TieBreak::Priority`] — a seeded *free* reordering of ready-op
//!   priority inside the open pipeline windows. Always legal —
//!   dependencies, windows, and the Fig. 7 registers are still
//!   enforced — but deliberately schedule-changing. It is both the
//!   search space of [`crate::search`] and the negative control for
//!   the fuzzer: feeding a `Priority` run into the comparison
//!   machinery must produce a divergence diagnostic, which is exactly
//!   how a reintroduced HashMap-tie class of bug would surface.

use crate::engine::{Engine, RunOptions, TimelineEntry, WorkloadSpec};
use pim_common::diag::Diagnostics;
use pim_common::Result;

/// The diagnostics pass name for order-invariance findings (pass 5).
pub const PASS: &str = "order";

/// Salt separating tie-group decision hashes from event-key hashes.
const DECISION_SALT: u64 = 0x5EED_0DE5_C15A_11ED;

/// Tie-break policy for one engine run. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// First-appearance order everywhere — byte-identical to the engine
    /// before this policy existed.
    #[default]
    Stable,
    /// Seeded permutation of tie groups the schedule must be invariant
    /// to (the fuzz surface).
    Permuted(u64),
    /// Seeded free reordering of ready-op priorities within open
    /// pipeline windows — legal but schedule-changing (the search
    /// space, and the fuzzer's negative control).
    Priority(u64),
}

impl TieBreak {
    /// True for the zero-overhead default path.
    #[inline]
    #[must_use]
    pub fn is_stable(self) -> bool {
        matches!(self, TieBreak::Stable)
    }

    /// A short display form for diagnostics and tables.
    #[must_use]
    pub fn describe(self) -> String {
        match self {
            TieBreak::Stable => "stable".to_string(),
            TieBreak::Permuted(s) => format!("permuted({s:#x})"),
            TieBreak::Priority(s) => format!("priority({s:#x})"),
        }
    }

    /// The event-ordering key for the `n`-th allocated event sequence
    /// number. `Stable` and `Permuted` return `n` itself: `seq` is
    /// allocated uniquely, so there are no equal-`(time, seq)` groups to
    /// permute, and the order among same-femtosecond *different-seq*
    /// completions is schedule-significant (each retire is followed by a
    /// full dispatch scan, so retire order picks dispatch winners under
    /// contention — confirmed empirically by the first full-surface
    /// fuzz). `Priority` applies a bijective xorshift* permutation:
    /// keys stay globally unique (the heap's determinism invariant
    /// holds) while same-femtosecond retire order is legally reordered.
    #[inline]
    pub(crate) fn event_key(self, n: u64) -> u64 {
        match self {
            TieBreak::Stable | TieBreak::Permuted(_) => n,
            TieBreak::Priority(seed) => xorshift_star(n ^ splitmix(seed)),
        }
    }

    /// A per-decision hash for ordering within a tie group:
    /// deterministic in the policy seed and `parts`. `Stable` never
    /// calls this (its orders are positional).
    #[inline]
    pub(crate) fn decision_hash(self, parts: &[u64]) -> u64 {
        let seed = match self {
            TieBreak::Stable => 0,
            TieBreak::Permuted(s) | TieBreak::Priority(s) => s,
        };
        let mut h = splitmix(seed ^ DECISION_SALT);
        for &p in parts {
            h = xorshift_star(h ^ splitmix(p));
        }
        h
    }
}

/// One splitmix64 finalization step — avalanches a seed into a
/// well-mixed word (the idiom `pim_hw::faults` already uses).
#[inline]
pub(crate) fn splitmix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One xorshift* step. A bijection on `u64`: each xorshift is an
/// invertible linear map over GF(2), and the final multiplier is odd,
/// hence invertible mod 2^64 — so distinct inputs stay distinct, which
/// is what lets [`TieBreak::event_key`] permute heap keys without ever
/// colliding them.
#[inline]
pub(crate) fn xorshift_star(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Folds a string into a `u64` for tie-group hashing (an FNV-1a fold —
/// deterministic across runs and platforms, unlike `DefaultHasher`).
#[inline]
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives `n` distinct fuzz seeds from one base seed (a splitmix
/// chain, matching the seed derivation idiom of `pim_hw::faults`).
#[must_use]
pub fn derive_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut s = base;
    for _ in 0..n {
        s = splitmix(s);
        out.push(s);
    }
    out
}

/// Everything one order-invariance comparison produced.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// One comparison per non-stable order; all findings merged.
    pub diags: Diagnostics,
    /// Orders compared (excluding the stable baseline).
    pub orders: usize,
    /// Orders whose report diverged from the stable baseline.
    pub divergent: usize,
}

impl FuzzOutcome {
    /// True when every order reproduced the stable report, replayed
    /// legally, and cross-checked its counters.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diags.is_clean() && self.divergent == 0
    }
}

/// Runs the workloads once per tie-break order and asserts that every
/// order is observationally equivalent to [`TieBreak::Stable`]:
///
/// 1. the `ExecutionReport` and timeline are identical (exact equality),
/// 2. the timeline replays legally through the schedule checker,
/// 3. the counter registries are identical.
///
/// The stable baseline itself is run twice and compared — that rerun is
/// the tripwire for the PR-3 class of bug, where an unordered container
/// leaks into one of the *pinned* (schedule-significant) orders and the
/// engine stops reproducing itself.
///
/// Any divergence becomes an error-severity diagnostic on the `order`
/// pass pinpointing the first divergent timeline entry and the
/// same-femtosecond tie group it belongs to. `subject` labels the
/// diagnostics (e.g. `"alexnet@Hetero"`).
///
/// # Errors
///
/// Propagates engine failures (cost/profiling errors); divergences are
/// reported as diagnostics, not errors.
pub fn check_order_invariance(
    engine: &Engine,
    workloads: &[WorkloadSpec<'_>],
    orders: &[TieBreak],
    subject: &str,
) -> Result<FuzzOutcome> {
    let base_opts = RunOptions {
        timeline: true,
        ..RunOptions::default()
    };
    let base = engine.run_with(workloads, &base_opts)?;
    let base_timeline = base.timeline.as_deref().unwrap_or(&[]);

    let mut diags = Diagnostics::new();
    let mut divergent = 0usize;

    // Determinism tripwire: the pinned orders cannot be permuted without
    // changing the schedule, so they are audited by reproduction — the
    // stable order must equal itself across independent runs.
    let rerun = engine.run_with(workloads, &base_opts)?;
    if rerun.report() != base.report()
        || rerun.counters != base.counters
        || rerun.timeline.as_deref().unwrap_or(&[]) != base_timeline
    {
        divergent += 1;
        diags.error(
            PASS,
            format!("{subject} order=stable"),
            format!(
                "stable order failed to reproduce itself — an unordered \
                 container is leaking into a pinned schedule order; {}",
                divergence_message(
                    base_timeline,
                    rerun.timeline.as_deref().unwrap_or(&[]),
                    &report_delta(base.report(), rerun.report()),
                )
            ),
        );
    }
    for &tie in orders {
        let opts = RunOptions {
            timeline: true,
            tie,
            ..RunOptions::default()
        };
        let out = engine.run_with(workloads, &opts)?;
        let timeline = out.timeline.as_deref().unwrap_or(&[]);
        let label = format!("{subject} order={}", tie.describe());

        let mut this_diverged = false;
        if out.report() != base.report() {
            this_diverged = true;
            diags.error(
                PASS,
                label.clone(),
                divergence_message(
                    base_timeline,
                    timeline,
                    &report_delta(base.report(), out.report()),
                ),
            );
        }
        if out.report() == base.report() && timeline != base_timeline {
            this_diverged = true;
            diags.error(
                PASS,
                label.clone(),
                divergence_message(base_timeline, timeline, "report identical"),
            );
        }
        if out.counters != base.counters {
            this_diverged = true;
            diags.error(
                PASS,
                label.clone(),
                "counter registry diverged from the stable order",
            );
        }
        // Legality replay is tie-independent: the facts (dependencies,
        // costs, windows, capabilities, exclusivity) never mention the
        // tie policy, so every order must replay clean.
        let replay = engine.verify_timeline(workloads, timeline)?;
        if !replay.is_clean() {
            this_diverged = true;
            diags.error(
                PASS,
                label.clone(),
                format!(
                    "timeline failed legality replay under this order:\n{}",
                    replay.render_text()
                ),
            );
        }
        if this_diverged {
            divergent += 1;
        }
    }
    Ok(FuzzOutcome {
        diags,
        orders: orders.len(),
        divergent,
    })
}

/// [`check_order_invariance`] over `n` [`TieBreak::Permuted`] seeds
/// derived from `base_seed` — the fuzz driver proper.
///
/// # Errors
///
/// Propagates engine failures; divergences become diagnostics.
pub fn fuzz_orders(
    engine: &Engine,
    workloads: &[WorkloadSpec<'_>],
    n: usize,
    base_seed: u64,
    subject: &str,
) -> Result<FuzzOutcome> {
    let orders: Vec<TieBreak> = derive_seeds(base_seed, n)
        .into_iter()
        .map(TieBreak::Permuted)
        .collect();
    check_order_invariance(engine, workloads, &orders, subject)
}

/// A one-line summary of which report fields moved.
fn report_delta(a: &crate::stats::ExecutionReport, b: &crate::stats::ExecutionReport) -> String {
    let mut moved = Vec::new();
    if a.makespan != b.makespan {
        moved.push(format!(
            "makespan {:.9e} -> {:.9e}",
            a.makespan.seconds(),
            b.makespan.seconds()
        ));
    }
    if a.op_time != b.op_time {
        moved.push("op_time".to_string());
    }
    if a.data_movement_time != b.data_movement_time {
        moved.push("data_movement_time".to_string());
    }
    if a.sync_time != b.sync_time {
        moved.push("sync_time".to_string());
    }
    if a.dynamic_energy != b.dynamic_energy {
        moved.push("dynamic_energy".to_string());
    }
    if a.ff_utilization != b.ff_utilization {
        moved.push("ff_utilization".to_string());
    }
    if a.device_busy != b.device_busy {
        moved.push("device_busy".to_string());
    }
    if moved.is_empty() {
        "reports differ in no summarized field".to_string()
    } else {
        moved.join(", ")
    }
}

/// Builds the error message for a report divergence: names the first
/// timeline entry where the permuted run departs from the stable run
/// and lists the same-start tie group around it.
fn divergence_message(stable: &[TimelineEntry], permuted: &[TimelineEntry], delta: &str) -> String {
    let idx = first_divergence(stable, permuted);
    let detail = match idx {
        Some(i) => {
            let s = stable.get(i);
            let p = permuted.get(i);
            let group = s
                .map(|e| tie_group(stable, e))
                .filter(|g| !g.is_empty())
                .map(|g| format!("; stable tie group at that start: [{}]", g.join(", ")))
                .unwrap_or_default();
            format!(
                "first divergent timeline entry at index {i}: stable={} permuted={}{group}",
                s.map_or_else(|| "<absent>".to_string(), describe_entry),
                p.map_or_else(|| "<absent>".to_string(), describe_entry),
            )
        }
        None => "timelines are identical (divergence is report-only)".to_string(),
    };
    format!("report diverged from the stable order ({delta}); {detail}")
}

/// Index of the first position where the two timelines disagree (or
/// where one ends), `None` when identical.
fn first_divergence(a: &[TimelineEntry], b: &[TimelineEntry]) -> Option<usize> {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).or({
        if a.len() == b.len() {
            None
        } else {
            Some(n)
        }
    })
}

/// The stable entries sharing `entry`'s quantized start time — the tie
/// group whose permutation surfaced the divergence.
fn tie_group(stable: &[TimelineEntry], entry: &TimelineEntry) -> Vec<String> {
    let start = entry.start.seconds().to_bits();
    stable
        .iter()
        .filter(|e| e.start.seconds().to_bits() == start)
        .take(8)
        .map(describe_entry)
        .collect()
}

fn describe_entry(e: &TimelineEntry) -> String {
    format!(
        "(wl{} step{} op{} {:?} start={:.9e} end={:.9e})",
        e.workload,
        e.step,
        e.op,
        e.resource,
        e.start.seconds(),
        e.end.seconds()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_star_is_injective_on_a_window() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000u64 {
            assert!(seen.insert(xorshift_star(n ^ splitmix(42))));
        }
    }

    #[test]
    fn stable_and_permuted_event_keys_are_identity() {
        // Retire order is schedule-significant, so only Priority may
        // touch it; Permuted must leave the heap keys alone.
        for n in [0u64, 1, 7, 1 << 40] {
            assert_eq!(TieBreak::Stable.event_key(n), n);
            assert_eq!(TieBreak::Permuted(9).event_key(n), n);
        }
    }

    #[test]
    fn priority_event_keys_differ_by_seed() {
        let a: Vec<u64> = (0..8).map(|n| TieBreak::Priority(1).event_key(n)).collect();
        let b: Vec<u64> = (0..8).map(|n| TieBreak::Priority(2).event_key(n)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds = derive_seeds(7, 64);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn decision_hash_is_deterministic_and_seeded() {
        let t1 = TieBreak::Permuted(9);
        let t2 = TieBreak::Permuted(10);
        assert_eq!(t1.decision_hash(&[1, 2]), t1.decision_hash(&[1, 2]));
        assert_ne!(t1.decision_hash(&[1, 2]), t2.decision_hash(&[1, 2]));
        assert_ne!(t1.decision_hash(&[1, 2]), t1.decision_hash(&[2, 1]));
    }
}
