//! Candidate selection: the global-index algorithm of §III-C.
//!
//! "The runtime sorts operations into two lists (in descending order) based
//! on execution time and the number of main memory accesses ... With each
//! operation, the runtime calculates a global index by adding these two
//! indexes. Based on the global indexes, the runtime sorts operations into
//! a global list. The runtime chooses top operations in the global list to
//! offload to PIMs. Those top operations account for x% of total execution
//! time of one step (x = 90 in our evaluation)."

use crate::fuzz::TieBreak;
use crate::profiler::StepProfile;
use pim_common::ids::OpId;
use pim_common::units::Seconds;
use serde::Serialize;
use std::collections::HashSet;

/// The paper's coverage parameter `x` (percent of step time the candidate
/// set must account for).
pub const DEFAULT_COVERAGE: f64 = 0.90;

/// The candidate set chosen for offloading.
#[derive(Debug, Clone, Serialize)]
pub struct CandidateSet {
    /// Ops selected for offloading, in global-index order (best first).
    pub ranked: Vec<OpId>,
    /// Fast membership test.
    pub members: HashSet<OpId>,
    /// Fraction of step time the set covers.
    pub time_coverage: f64,
}

impl CandidateSet {
    /// True when `op` was selected for offloading.
    pub fn contains(&self, op: OpId) -> bool {
        self.members.contains(&op)
    }
}

/// Runs the global-index selection over a step profile.
///
/// # Examples
///
/// ```
/// use pim_runtime::profiler::profile_step;
/// use pim_runtime::select::{select_candidates, DEFAULT_COVERAGE};
/// use pim_hw::cpu::CpuDevice;
/// use pim_models::{Model, ModelKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
/// let profile = profile_step(model.graph(), &CpuDevice::xeon_e5_2630_v3())?;
/// let candidates = select_candidates(&profile, DEFAULT_COVERAGE);
/// assert!(candidates.time_coverage >= 0.90);
/// # Ok(())
/// # }
/// ```
pub fn select_candidates(profile: &StepProfile, coverage: f64) -> CandidateSet {
    // Operations are selected at *type* granularity, matching the per-type
    // profiling of Table I (each type "can be invoked up to tens of times"
    // per step; the profile aggregates them).
    let rows = profile.by_name();
    let n = rows.len();
    // Rank types by execution time, descending (rows are pre-sorted so the
    // time rank is the row index).
    let mut by_mem: Vec<usize> = (0..n).collect();
    by_mem.sort_by(|&a, &b| rows[b].memory_accesses.cmp(&rows[a].memory_accesses));
    let mut mem_rank = vec![0usize; n];
    for (rank, &i) in by_mem.iter().enumerate() {
        mem_rank[i] = rank;
    }
    // Global index = sum of the two ranks; smaller is better.
    let mut global: Vec<usize> = (0..n).collect();
    global.sort_by_key(|&i| i + mem_rank[i]);

    let total_time = profile.total_time();
    let mut selected_names = HashSet::new();
    let mut covered = Seconds::ZERO;
    for &i in &global {
        if total_time.seconds() > 0.0 && covered / total_time >= coverage {
            break;
        }
        selected_names.insert(rows[i].name);
        covered += rows[i].time;
    }
    let mut ranked = Vec::new();
    let mut members = HashSet::new();
    // Emit member ops in global-index order of their types.
    for &i in &global {
        if !selected_names.contains(rows[i].name) {
            continue;
        }
        for p in &profile.ops {
            if p.name == rows[i].name {
                ranked.push(p.op);
                members.insert(p.op);
            }
        }
    }
    CandidateSet {
        ranked,
        members,
        time_coverage: if total_time.seconds() > 0.0 {
            covered / total_time
        } else {
            1.0
        },
    }
}

/// [`select_candidates`] under a tie-break policy.
///
/// Membership is computed by the stable algorithm under *every* policy.
/// The first full-surface fuzz showed selection-tie order is
/// decision-significant, not incidental: swapping profile rows that
/// agree on both execution time and memory accesses redistributes the
/// global-index sums inside the tie group (positions `j` contribute
/// `base + j + σ(j)`, a different multiset for `σ ≠ id`), which can move
/// the 90%-coverage break point and change *which types are offloaded*
/// — observed as device flips on DCGAN@Hetero. So the tie order stays
/// pinned to first appearance, and its determinism is audited by
/// stable-rerun comparison instead (see `crate::fuzz`).
///
/// What provably *is* order-inert is the emission order of
/// [`CandidateSet::ranked`]: the planner consumes the candidate set
/// purely through [`CandidateSet::contains`], so
/// [`TieBreak::Permuted`] re-sorts the ranked list by a seeded hash of
/// type name and op id. The order-invariance audit ([`crate::fuzz`])
/// asserts nothing downstream secretly depends on that order.
pub fn select_candidates_tie(profile: &StepProfile, coverage: f64, tie: TieBreak) -> CandidateSet {
    let mut set = select_candidates(profile, coverage);
    if let TieBreak::Permuted(_) = tie {
        let name_of: std::collections::HashMap<OpId, &str> =
            profile.ops.iter().map(|p| (p.op, p.name)).collect();
        set.ranked.sort_by_cached_key(|op| {
            let name = name_of.get(op).copied().unwrap_or("");
            tie.decision_hash(&[crate::fuzz::hash_str(name), op.index() as u64])
        });
    }
    set
}

/// [`select_candidates`] plus an instant on the scheduler trace track
/// summarizing the chosen candidate set. Recording happens only when the
/// sink is enabled; with [`pim_common::NullTrace`] this is exactly
/// `select_candidates`.
pub fn select_candidates_traced(
    profile: &StepProfile,
    coverage: f64,
    tracer: &mut dyn pim_common::trace::TraceSink,
) -> CandidateSet {
    select_candidates_tie_traced(profile, coverage, TieBreak::Stable, tracer)
}

/// [`select_candidates_tie`] with the same trace instant as
/// [`select_candidates_traced`].
pub fn select_candidates_tie_traced(
    profile: &StepProfile,
    coverage: f64,
    tie: TieBreak,
    tracer: &mut dyn pim_common::trace::TraceSink,
) -> CandidateSet {
    let candidates = select_candidates_tie(profile, coverage, tie);
    if tracer.enabled() {
        tracer.record(pim_common::trace::TraceEvent::Instant {
            track: crate::engine::SCHED_TRACK,
            name: "select candidates".to_string(),
            cat: "meta",
            ts: Seconds::ZERO,
            args: vec![
                ("candidates", candidates.ranked.len().into()),
                ("requested_coverage", coverage.into()),
                ("time_coverage", candidates.time_coverage.into()),
            ],
        });
    }
    candidates
}

/// The four operation classes of Fig. 2 (compute intensity x memory
/// intensity quadrants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum OpClass {
    /// Compute-intensive and memory-intensive: the offload target.
    ComputeAndMemoryIntensive,
    /// Memory-intensive only: also offloaded (data movement dominates).
    MemoryIntensiveOnly,
    /// Compute-intensive only: "does not have to be offloaded ... but we
    /// can offload them when there are idling hardware units".
    ComputeIntensiveOnly,
    /// Neither: "does not have big performance impact".
    Neither,
}

/// Classifies every op against the median time and median memory-access
/// thresholds of the profiled step.
pub fn classify(profile: &StepProfile) -> Vec<(OpId, OpClass)> {
    let mut times: Vec<f64> = profile.ops.iter().map(|p| p.cpu_time.seconds()).collect();
    let mut mems: Vec<u64> = profile.ops.iter().map(|p| p.memory_accesses).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    mems.sort_unstable();
    // "Intensive" means well above the median op: the threshold sits at the
    // 75th percentile, separating the heavy tail the paper's tables show.
    let t_thresh = times[(times.len() * 3) / 4];
    let m_thresh = mems[(mems.len() * 3) / 4];
    profile
        .ops
        .iter()
        .map(|p| {
            let ci = p.cpu_time.seconds() >= t_thresh && t_thresh > 0.0;
            let mi = p.memory_accesses >= m_thresh && m_thresh > 0;
            let class = match (ci, mi) {
                (true, true) => OpClass::ComputeAndMemoryIntensive,
                (false, true) => OpClass::MemoryIntensiveOnly,
                (true, false) => OpClass::ComputeIntensiveOnly,
                (false, false) => OpClass::Neither,
            };
            (p.op, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_step;
    use pim_hw::cpu::CpuDevice;
    use pim_models::{Model, ModelKind};

    fn profile(kind: ModelKind) -> StepProfile {
        let model = Model::build_with_batch(kind, 16).unwrap();
        profile_step(model.graph(), &CpuDevice::xeon_e5_2630_v3()).unwrap()
    }

    #[test]
    fn selection_reaches_requested_coverage() {
        let p = profile(ModelKind::Vgg19);
        let c = select_candidates(&p, 0.90);
        assert!(c.time_coverage >= 0.90);
        assert!(c.ranked.len() < p.ops.len());
    }

    #[test]
    fn higher_coverage_selects_more_ops() {
        let p = profile(ModelKind::AlexNet);
        let c90 = select_candidates(&p, 0.90);
        let c99 = select_candidates(&p, 0.99);
        assert!(c99.ranked.len() >= c90.ranked.len());
    }

    #[test]
    fn heavy_conv_ops_are_selected_first() {
        let p = profile(ModelKind::Vgg19);
        let c = select_candidates(&p, 0.90);
        let first = c.ranked[0];
        let name = p.ops[first.index()].name;
        assert!(name.starts_with("Conv2D"), "top candidate was {name}");
    }

    #[test]
    fn members_match_ranked_list() {
        let p = profile(ModelKind::Dcgan);
        let c = select_candidates(&p, 0.90);
        assert_eq!(c.ranked.len(), c.members.len());
        assert!(c.ranked.iter().all(|op| c.contains(*op)));
    }

    #[test]
    fn classification_produces_all_target_ops() {
        let p = profile(ModelKind::Vgg19);
        let classes = classify(&p);
        let target = classes
            .iter()
            .filter(|(_, c)| *c == OpClass::ComputeAndMemoryIntensive)
            .count();
        assert!(target > 0);
        // The heavy backprop convs land in the offload-target quadrant
        // (early layers; the smallest instances can fall below threshold).
        let bpf_in_target = classes.iter().zip(&p.ops).any(|((_, c), op)| {
            op.name == "Conv2DBackpropFilter" && *c == OpClass::ComputeAndMemoryIntensive
        });
        assert!(bpf_in_target);
    }
}
