//! Minimal fork-join parallelism for independent simulations.
//!
//! [`par_map`] fans a slice out over scoped OS threads when the `parallel`
//! feature (on by default) is enabled, and degrades to a plain serial map
//! without it — callers never need to care which build they are in. Output
//! order always matches input order, so parallel sweeps stay
//! deterministic.

/// Worker-thread cap for one fan-out: the `PIM_RUN_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism. Pinning `PIM_RUN_THREADS=1` forces the parallel
/// build down the serial path — the thread-matrix CI stage uses this to
/// check that results do not depend on the worker count.
#[cfg(feature = "parallel")]
fn thread_limit() -> usize {
    std::env::var("PIM_RUN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// Maps `f` over `items`, in parallel when the `parallel` feature is on.
///
/// Results are returned in input order regardless of which thread finished
/// first.
#[cfg(feature = "parallel")]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_limit().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, out) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scoped worker filled every slot"))
        .collect()
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn propagates_results_per_item() {
        let items = ["a", "bb", "ccc"];
        let out: Vec<Result<usize, String>> = par_map(&items, |s| {
            if s.len() < 3 {
                Ok(s.len())
            } else {
                Err(s.to_string())
            }
        });
        assert_eq!(out, vec![Ok(1), Ok(2), Err("ccc".to_string())]);
    }
}
