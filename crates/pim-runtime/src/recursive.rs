//! Recursive-kernel progress tracking (§IV-C).
//!
//! "In order to keep track of the dynamic utilization of fixed-function
//! PIMs, our runtime on the programmable PIM records the numbers of
//! additions and multiplications already completed in each operation
//! offloaded to the programmable PIM, as well as the remaining additions
//! and multiplications."

use pim_common::ids::OpId;
use pim_common::{PimError, Result};
use serde::Serialize;
use std::collections::HashMap;

/// Progress record for one operation executing as a recursive kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecursiveProgress {
    /// Multiplications completed so far.
    pub muls_done: f64,
    /// Additions completed so far.
    pub adds_done: f64,
    /// Multiplications remaining.
    pub muls_remaining: f64,
    /// Additions remaining.
    pub adds_remaining: f64,
}

impl RecursiveProgress {
    /// Fraction of the multiply/add work completed.
    pub fn fraction_done(&self) -> f64 {
        let done = self.muls_done + self.adds_done;
        let total = done + self.muls_remaining + self.adds_remaining;
        if total == 0.0 {
            1.0
        } else {
            done / total
        }
    }

    /// True when no multiply/add work remains.
    pub fn is_complete(&self) -> bool {
        self.muls_remaining == 0.0 && self.adds_remaining == 0.0
    }
}

/// The programmable-PIM-side tracker for in-flight recursive kernels.
///
/// # Examples
///
/// ```
/// use pim_runtime::recursive::RecursiveTracker;
/// use pim_common::ids::OpId;
///
/// let mut tracker = RecursiveTracker::new();
/// tracker.begin(OpId::new(0), 100.0, 99.0).unwrap();
/// tracker.advance(OpId::new(0), 40.0, 40.0).unwrap();
/// let p = tracker.progress(OpId::new(0)).unwrap();
/// assert!((p.fraction_done() - 80.0 / 199.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecursiveTracker {
    in_flight: HashMap<OpId, RecursiveProgress>,
}

impl RecursiveTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        RecursiveTracker::default()
    }

    /// Registers an operation with its total multiply/add work.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] when the op is already
    /// tracked.
    pub fn begin(&mut self, op: OpId, muls: f64, adds: f64) -> Result<()> {
        if self.in_flight.contains_key(&op) {
            return Err(PimError::invalid(
                "RecursiveTracker::begin",
                format!("{op} already tracked"),
            ));
        }
        self.in_flight.insert(
            op,
            RecursiveProgress {
                muls_done: 0.0,
                adds_done: 0.0,
                muls_remaining: muls,
                adds_remaining: adds,
            },
        );
        Ok(())
    }

    /// Records completion of one fixed-function sub-kernel's work.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for untracked ops.
    pub fn advance(&mut self, op: OpId, muls: f64, adds: f64) -> Result<()> {
        let p = self.in_flight.get_mut(&op).ok_or(PimError::UnknownId {
            kind: "recursive op",
            index: op.index(),
        })?;
        let m = muls.min(p.muls_remaining);
        let a = adds.min(p.adds_remaining);
        p.muls_done += m;
        p.adds_done += a;
        p.muls_remaining -= m;
        p.adds_remaining -= a;
        Ok(())
    }

    /// Current progress of an operation.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for untracked ops.
    pub fn progress(&self, op: OpId) -> Result<RecursiveProgress> {
        self.in_flight.get(&op).copied().ok_or(PimError::UnknownId {
            kind: "recursive op",
            index: op.index(),
        })
    }

    /// Removes a completed operation, returning its final record.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for untracked ops, or
    /// [`PimError::Internal`] when work remains.
    pub fn finish(&mut self, op: OpId) -> Result<RecursiveProgress> {
        let p = self.progress(op)?;
        if !p.is_complete() {
            return Err(PimError::internal(format!(
                "{op} finished with work remaining ({:.0} muls, {:.0} adds)",
                p.muls_remaining, p.adds_remaining
            )));
        }
        self.in_flight.remove(&op);
        Ok(p)
    }

    /// Number of recursive kernels currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lifecycle_begin_advance_finish() {
        let mut t = RecursiveTracker::new();
        let op = OpId::new(3);
        t.begin(op, 10.0, 9.0).unwrap();
        assert!(t.finish(op).is_err()); // work remains
        t.advance(op, 10.0, 9.0).unwrap();
        let p = t.finish(op).unwrap();
        assert!(p.is_complete());
        assert_eq!(t.in_flight_count(), 0);
    }

    #[test]
    fn double_begin_is_rejected() {
        let mut t = RecursiveTracker::new();
        t.begin(OpId::new(0), 1.0, 1.0).unwrap();
        assert!(t.begin(OpId::new(0), 1.0, 1.0).is_err());
    }

    #[test]
    fn advance_clamps_to_remaining() {
        let mut t = RecursiveTracker::new();
        let op = OpId::new(1);
        t.begin(op, 5.0, 5.0).unwrap();
        t.advance(op, 100.0, 100.0).unwrap();
        assert!(t.progress(op).unwrap().is_complete());
    }

    proptest! {
        #[test]
        fn fraction_is_monotone(chunks in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let mut t = RecursiveTracker::new();
            let op = OpId::new(0);
            let total: f64 = chunks.iter().sum::<f64>().max(1.0);
            t.begin(op, total, total).unwrap();
            let mut last = 0.0;
            for c in chunks {
                t.advance(op, c, c).unwrap();
                let f = t.progress(op).unwrap().fraction_done();
                prop_assert!(f >= last - 1e-12);
                prop_assert!(f <= 1.0 + 1e-12);
                last = f;
            }
        }
    }
}
