//! The heterogeneous-PIM runtime system (§III-C, §IV).
//!
//! * [`profiler`] — step-1 profiling on the CPU device model,
//! * [`select`] — the global-index candidate-selection algorithm (x = 90%)
//!   and the Fig. 2 four-quadrant classification,
//! * [`engine`] — the placement policy (three scheduling principles) and
//!   the discrete-event simulator, with recursive-kernel (RC) and
//!   operation-pipeline (OP) toggles; its event core also drives the
//!   `pim-sim` baselines,
//! * [`par`] — fork-join helper behind the default-on `parallel` feature
//!   (independent simulations across threads, deterministic order),
//! * [`recursive`] — the programmable-PIM-side progress tracker for
//!   recursive kernels (§IV-C),
//! * [`sync`] — synchronization-cost constants and kernel-call granularity,
//! * [`verify`] — schedule-legality replay over recorded timelines; backs
//!   the engine's debug-mode assertions and the `pim-verify` checker,
//! * [`fuzz`] — the [`fuzz::TieBreak`] order policy and the pass-5
//!   order-invariance fuzz driver (seeded tie permutations must not change
//!   the report),
//! * [`search`] — beam search over the [`fuzz::TieBreak::Priority`] order
//!   space, reporting the best-found makespan vs the paper heuristic,
//! * [`stats`] — execution reports (time breakdown, energy, utilization),
//! * [`session`] — the TensorFlow-runtime-extension facade: profile step 1,
//!   schedule the rest.
//!
//! # Examples
//!
//! ```
//! use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
//! use pim_models::{Model, ModelKind};
//!
//! # fn main() -> pim_common::Result<()> {
//! let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
//! let workload = WorkloadSpec { graph: model.graph(), steps: 2, cpu_progr_only: false };
//!
//! let hetero = Engine::new(EngineConfig::preset(SystemPreset::Hetero)).run(&[workload])?;
//! let cpu = Engine::new(EngineConfig::preset(SystemPreset::CpuOnly)).run(&[workload])?;
//! assert!(hetero.makespan < cpu.makespan);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod engine;
pub mod fuzz;
pub mod par;
pub mod profiler;
pub mod recursive;
pub mod search;
pub mod select;
pub mod session;
pub mod stats;
pub mod sync;
pub mod verify;

pub use engine::{
    CancelToken, Engine, EngineConfig, Partitioning, PlanRow, ProgrBackend, ResourceClass,
    RunLimits, RunOptions, RunOutput, RunRequest, RunResponse, SystemMode, SystemPreset,
    TimelineEntry, WorkloadSpec,
};
pub use fuzz::TieBreak;
pub use session::TrainingSession;
pub use stats::ExecutionReport;
