//! The runtime engine: placement policy + discrete-event simulation.
//!
//! Implements the §III-C scheduler — profiling-based candidate selection,
//! the three scheduling principles, recursive PIM kernels (RC), and the
//! operation pipeline (OP) — over the device models of `pim-hw`. The five
//! system configurations of §VI map onto [`EngineConfig`] constructors
//! (the GPU baseline is analytic and lives in `pim-sim`).

use crate::profiler::profile_step;
use crate::select::{select_candidates, CandidateSet};
use crate::stats::{ExecutionReport, BASE_SYSTEM_POWER};
use pim_common::units::Watts;
use crate::sync::{
    kernel_calls, HOST_CALL, HOST_FF_SYNC, HOST_PROGR_SYNC, PIM_CALL, PIM_INTERNAL_SYNC,
    STEP_BARRIER,
};
use pim_common::units::{Joules, Seconds};

/// Idle power of the host package while PIMs execute (uncore + cores in
/// shallow sleep, still running the framework runtime).
const HOST_IDLE_POWER: Watts = Watts::new(40.0);

/// CPU-side runtime cost of one scheduling decision (querying the busy
/// registers, picking a device, enqueueing) — the price of the dynamic
/// scheduler itself, paid only by the heterogeneous configuration.
const PLACEMENT_DECISION: Seconds = Seconds::new(25e-6);
use pim_common::{PimError, Result};
use pim_graph::cost::graph_costs;
use pim_graph::Graph;
use pim_hw::arm::{ProgrammablePim, ProgrammablePool};
use pim_hw::cpu::CpuDevice;
use pim_hw::fixed::{FixedFunctionPool, FixedPoolConfig};
use pim_mem::stack::StackConfig;
use pim_tensor::cost::{CostProfile, OffloadClass};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Which compute complement the simulated system has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SystemMode {
    /// Everything on the host CPU.
    CpuOnly,
    /// Everything on the programmable-PIM pool ("Progr PIM" baseline).
    ProgrOnly,
    /// Fixed-function PIMs driven by the host; the rest on CPU
    /// ("Fixed PIM" baseline).
    FixedHost,
    /// The full heterogeneous PIM (fixed-function pool + one programmable
    /// PIM + CPU).
    Hetero,
}

/// Engine configuration: system complement plus runtime-technique toggles.
#[derive(Debug, Clone, Serialize)]
pub struct EngineConfig {
    /// Display name for reports.
    pub name: String,
    /// Compute complement.
    pub mode: SystemMode,
    /// Recursive PIM kernels enabled (§III-B).
    pub recursive_kernels: bool,
    /// Operation pipeline enabled (§III-C); when off, execution is
    /// serialized as in the baselines "without runtime scheduling".
    pub operation_pipeline: bool,
    /// Steps allowed in flight simultaneously under the pipeline.
    pub pipeline_depth: usize,
    /// Candidate-selection coverage (the paper's x = 90%).
    pub coverage: f64,
    /// The 3D memory stack (carries the frequency multiplier of §VI-D).
    pub stack: StackConfig,
    /// ARM cores of the programmable PIM.
    pub arm_cores: usize,
    /// Fixed-function units on the logic die.
    pub ff_units: usize,
}

impl EngineConfig {
    fn base(name: &str, mode: SystemMode) -> Self {
        EngineConfig {
            name: name.to_string(),
            mode,
            recursive_kernels: false,
            operation_pipeline: false,
            pipeline_depth: 4,
            coverage: 0.90,
            stack: StackConfig::hmc2(),
            arm_cores: 4,
            ff_units: pim_hw::fixed::DEFAULT_UNITS,
        }
    }

    /// The "CPU" configuration of §VI.
    pub fn cpu_only() -> Self {
        EngineConfig::base("CPU", SystemMode::CpuOnly)
    }

    /// The "Progr PIM" configuration: programmable PIMs only, no runtime
    /// scheduling.
    pub fn progr_only() -> Self {
        EngineConfig::base("Progr PIM", SystemMode::ProgrOnly)
    }

    /// The "Fixed PIM" configuration: fixed-function PIMs plus CPU, no
    /// runtime scheduling.
    pub fn fixed_host() -> Self {
        EngineConfig::base("Fixed PIM", SystemMode::FixedHost)
    }

    /// The full "Hetero PIM" configuration with RC and OP.
    pub fn hetero() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM", SystemMode::Hetero);
        cfg.recursive_kernels = true;
        cfg.operation_pipeline = true;
        cfg
    }

    /// Hetero hardware without either runtime technique (Fig. 13's
    /// "Hetero PIM" ablation bar).
    pub fn hetero_bare() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM (no RC/OP)", SystemMode::Hetero);
        cfg.recursive_kernels = false;
        cfg.operation_pipeline = false;
        cfg
    }

    /// Hetero hardware with recursive kernels but no operation pipeline
    /// (Fig. 13's "+RC" bar).
    pub fn hetero_rc() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM +RC", SystemMode::Hetero);
        cfg.recursive_kernels = true;
        cfg.operation_pipeline = false;
        cfg
    }

    /// Returns a copy with a different stack (frequency-scaling studies).
    pub fn with_stack(mut self, stack: StackConfig) -> Self {
        self.stack = stack;
        self
    }

    /// Returns a copy with a different PIM complement (Fig. 12 scaling).
    pub fn with_pim_complement(mut self, arm_cores: usize, ff_units: usize) -> Self {
        self.arm_cores = arm_cores;
        self.ff_units = ff_units;
        self
    }
}

/// One workload participating in a simulation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec<'g> {
    /// The training-step graph.
    pub graph: &'g Graph,
    /// Steps to simulate.
    pub steps: usize,
    /// Restrict to CPU + programmable PIM (the §VI-F non-CNN co-runner
    /// rule: "the non-CNN model executes on CPU or the programmable PIM,
    /// when they are idle").
    pub cpu_progr_only: bool,
}

/// Where an operation is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    Cpu,
    ProgrPool,
    Progr,
    FixedWhole { rc_runtime: bool, units: usize },
    HostSplit { units: usize },
    Recursive { units: usize },
}

/// Fully costed placement of one op instance.
#[derive(Debug, Clone, Copy)]
struct PlannedOp {
    duration: Seconds,
    op_part: Seconds,
    dm_part: Seconds,
    sync_part: Seconds,
    energy: Joules,
    ff_units: usize,
    /// Time the granted fixed-function units actually compute (utilization
    /// accounting counts useful busy time, not reservation time).
    ff_busy: Seconds,
    uses_cpu: bool,
    uses_progr: bool,
}

/// Splits a cost profile into its multiply/add core and the remainder.
fn split_cost(cost: &CostProfile) -> (CostProfile, CostProfile) {
    let total = cost.total_flops().max(1.0);
    let ma_frac = cost.ma_flops() / total;
    let ma = CostProfile {
        muls: cost.muls,
        adds: cost.adds,
        other_flops: 0.0,
        control_ops: cost.control_ops * ma_frac,
        bytes_read: cost.bytes_read * ma_frac,
        bytes_written: cost.bytes_written * ma_frac,
        pattern: cost.pattern,
        ff_parallelism: cost.ff_parallelism,
        class: OffloadClass::FullyMulAdd,
    };
    let rest = CostProfile {
        muls: 0.0,
        adds: 0.0,
        other_flops: cost.other_flops,
        control_ops: cost.control_ops * (1.0 - ma_frac),
        bytes_read: cost.bytes_read * (1.0 - ma_frac),
        bytes_written: cost.bytes_written * (1.0 - ma_frac),
        pattern: cost.pattern,
        ff_parallelism: 0,
        class: OffloadClass::NonMulAdd,
    };
    (ma, rest)
}

/// Normalizes raw part sums so `op + dm + sync == duration` exactly.
fn normalized_parts(
    duration: Seconds,
    op_raw: Seconds,
    dm_raw: Seconds,
    sync_raw: Seconds,
) -> (Seconds, Seconds, Seconds) {
    let total = (op_raw + dm_raw + sync_raw).seconds();
    if total <= 0.0 {
        return (duration, Seconds::ZERO, Seconds::ZERO);
    }
    let scale = duration.seconds() / total;
    let op = op_raw * scale;
    let dm = dm_raw * scale;
    (op, dm, duration - op - dm)
}

/// The engine: devices + policy for one configuration.
pub struct Engine {
    cfg: EngineConfig,
    cpu: CpuDevice,
    progr: ProgrammablePim,
    /// Core pair used per kernel in scheduled mode: the programmable-PIM
    /// runtime dedicates two cores to each in-flight kernel so two
    /// recursive kernels can proceed concurrently.
    progr_pair: ProgrammablePim,
    progr_pool: ProgrammablePool,
    pool_cfg: FixedPoolConfig,
}

impl Engine {
    /// Builds the engine for a configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let progr = ProgrammablePim::cortex_a9(&cfg.stack, cfg.arm_cores);
        let progr_pair = ProgrammablePim::cortex_a9(&cfg.stack, cfg.arm_cores.div_ceil(2).max(1));
        let progr_pool = ProgrammablePool::unlimited(&cfg.stack);
        let pool_cfg = FixedPoolConfig::with_units(&cfg.stack, cfg.ff_units);
        Engine {
            cfg,
            cpu,
            progr,
            progr_pair,
            progr_pool,
            pool_cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The ARM device serving one kernel: the whole processor when
    /// execution is serialized, a core pair when the scheduler runs two
    /// kernels concurrently.
    fn arm_device(&self) -> &ProgrammablePim {
        if self.cfg.operation_pipeline {
            &self.progr_pair
        } else {
            &self.progr
        }
    }

    /// Host-side kernel calls are cheaper on the hetero hardware even
    /// without recursive kernels: the programmable PIM drives completion
    /// synchronization, avoiding frequent interrupts to the CPU (§III-B).
    fn host_call_factor(&self) -> f64 {
        if self.cfg.mode == SystemMode::Hetero {
            0.75
        } else {
            1.0
        }
    }

    fn plan_cost(&self, kind: PlanKind, cost: &CostProfile) -> PlannedOp {
        match kind {
            PlanKind::Cpu => {
                let est = self.cpu.estimate_op(cost);
                let busy = est.compute_time.max(est.memory_time);
                let (op, dm, sync) = normalized_parts(
                    busy + est.dispatch_time,
                    est.compute_time,
                    busy - est.compute_time,
                    est.dispatch_time,
                );
                PlannedOp {
                    duration: busy + est.dispatch_time,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy,
                    ff_units: 0,
                    ff_busy: Seconds::ZERO,
                    uses_cpu: true,
                    uses_progr: false,
                }
            }
            PlanKind::ProgrPool | PlanKind::Progr => {
                let est = if kind == PlanKind::ProgrPool {
                    self.progr_pool.estimate_op(cost)
                } else {
                    self.arm_device().estimate_op(cost)
                };
                let busy = est.compute_time.max(est.memory_time);
                let sync_raw = est.dispatch_time + HOST_PROGR_SYNC;
                let duration = busy + sync_raw;
                let (op, dm, sync) =
                    normalized_parts(duration, est.compute_time, busy - est.compute_time, sync_raw);
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy,
                    ff_units: 0,
                    ff_busy: Seconds::ZERO,
                    uses_cpu: false,
                    uses_progr: true,
                }
            }
            PlanKind::FixedWhole { rc_runtime, units } => {
                let pool = FixedFunctionPool::new(self.pool_cfg.clone());
                let est = pool.estimate_ma(cost, units, !rc_runtime);
                let busy = est.compute_time.max(est.memory_time);
                let calls = kernel_calls(cost.ma_flops()) as f64;
                let (duration, sync_raw, host_energy) = if rc_runtime {
                    let call_time = PIM_CALL * calls;
                    let duration = busy.max(call_time) + PIM_INTERNAL_SYNC;
                    (duration, duration - busy, Joules::ZERO)
                } else {
                    let call_time = HOST_CALL * self.host_call_factor() * calls + HOST_FF_SYNC;
                    // The host orchestrates synchronously: its cycles are
                    // burned, and the op extends by the full call time.
                    let duration = busy + call_time;
                    (
                        duration,
                        call_time,
                        self.cpu.params().dynamic_power * call_time,
                    )
                };
                let (op, dm, sync) = normalized_parts(
                    duration,
                    est.compute_time,
                    busy - est.compute_time,
                    sync_raw,
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy + host_energy,
                    ff_units: units,
                    ff_busy: busy,
                    uses_cpu: false,
                    // Dispatch through the progr runtime only enqueues the
                    // kernel; it does not occupy an ARM core pair.
                    uses_progr: false,
                }
            }
            PlanKind::HostSplit { units } => {
                let (ma, rest) = split_cost(cost);
                let pool = FixedFunctionPool::new(self.pool_cfg.clone());
                let ff = pool.estimate_ma(&ma, units, true);
                let host = self.cpu.estimate_op(&rest);
                let ff_busy = ff.compute_time.max(ff.memory_time);
                let host_busy = host.compute_time.max(host.memory_time);
                let call_time = HOST_CALL * self.host_call_factor()
                    * kernel_calls(ma.ma_flops()) as f64
                    + HOST_FF_SYNC;
                let duration = ff_busy + host_busy + call_time;
                let (op, dm, sync) = normalized_parts(
                    duration,
                    ff.compute_time + host.compute_time,
                    (ff_busy - ff.compute_time) + (host_busy - host.compute_time),
                    call_time,
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: ff.energy
                        + host.energy
                        + self.cpu.params().dynamic_power * call_time,
                    ff_units: units,
                    ff_busy,
                    uses_cpu: true,
                    uses_progr: false,
                }
            }
            PlanKind::Recursive { units } => {
                let (ma, rest) = split_cost(cost);
                let pool = FixedFunctionPool::new(self.pool_cfg.clone());
                let ff = pool.estimate_ma(&ma, units, false);
                let arm = self.arm_device().estimate_op(&rest);
                let ff_busy = ff.compute_time.max(ff.memory_time);
                let arm_busy =
                    arm.compute_time.max(arm.memory_time) + PIM_CALL * kernel_calls(ma.ma_flops()) as f64;
                // Phases and fixed-function sub-kernels overlap inside the
                // single recursive kernel (Fig. 6).
                let duration = ff_busy.max(arm_busy) + PIM_INTERNAL_SYNC;
                let (op, dm, sync) = normalized_parts(
                    duration,
                    ff.compute_time + arm.compute_time,
                    (ff_busy - ff.compute_time)
                        + (arm.compute_time.max(arm.memory_time) - arm.compute_time),
                    duration - ff_busy.max(arm_busy),
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: ff.energy + arm.energy,
                    ff_units: units,
                    ff_busy,
                    uses_cpu: false,
                    uses_progr: true,
                }
            }
        }
    }

    /// Grant size for a fixed-function request under dynamic availability.
    fn ff_grant(parallelism: usize, free: usize) -> Option<usize> {
        let want = parallelism.max(1);
        let floor = want.min(64);
        if free >= floor {
            Some(want.min(free))
        } else {
            None
        }
    }

    /// Chooses a placement under the three scheduling principles, given
    /// current availability. `None` means "wait for resources".
    #[allow(clippy::too_many_arguments)]
    fn choose(
        &self,
        cost: &CostProfile,
        is_candidate: bool,
        restricted: bool,
        cpu_free: bool,
        progr_free: bool,
        ff_free: usize,
    ) -> Option<PlanKind> {
        if restricted {
            // Mixed-workload non-CNN rule: CPU or programmable PIM only.
            if cpu_free {
                return Some(PlanKind::Cpu);
            }
            if progr_free {
                return Some(PlanKind::Progr);
            }
            return None;
        }
        match self.cfg.mode {
            SystemMode::CpuOnly => cpu_free.then_some(PlanKind::Cpu),
            SystemMode::ProgrOnly => progr_free.then_some(PlanKind::ProgrPool),
            SystemMode::FixedHost => match cost.class {
                OffloadClass::FullyMulAdd => {
                    if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                        if cpu_free {
                            // Host-driven dispatch occupies the CPU.
                            return Some(PlanKind::FixedWhole {
                                rc_runtime: false,
                                units,
                            });
                        }
                    }
                    cpu_free.then_some(PlanKind::Cpu)
                }
                OffloadClass::PartiallyMulAdd { .. } => {
                    if cpu_free {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            return Some(PlanKind::HostSplit { units });
                        }
                        return Some(PlanKind::Cpu);
                    }
                    None
                }
                _ => cpu_free.then_some(PlanKind::Cpu),
            },
            SystemMode::Hetero => {
                // Principle 3 (dependencies) is enforced by the event loop;
                // principles 1 and 2 order the preferences here.
                // Non-mul/add and data-movement ops belong to the
                // programmable PIM whenever it is idle, candidate or not
                // (principle 2: prefer PIMs over CPU).
                if matches!(
                    cost.class,
                    OffloadClass::NonMulAdd | OffloadClass::DataMovement
                ) {
                    if progr_free {
                        return Some(PlanKind::Progr);
                    }
                    return cpu_free.then_some(PlanKind::Cpu);
                }
                if !is_candidate {
                    // Class-1 ops (compute-intensive, not memory-intensive)
                    // "do not have to be offloaded to PIMs, but we can
                    // offload them when there are idling hardware units"
                    // (§II-A).
                    if cost.class == OffloadClass::FullyMulAdd {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            if self.cfg.recursive_kernels {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: true,
                                    units,
                                });
                            }
                            if cpu_free {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: false,
                                    units,
                                });
                            }
                        }
                    }
                    return cpu_free.then_some(PlanKind::Cpu);
                }
                // Heavy candidate ops with a fixed-function core wait for
                // the pool rather than falling back to the slow CPU: under
                // the operation pipeline another step's work keeps the CPU
                // and programmable PIM fed meanwhile. (Fallback to CPU only
                // when no fixed-function complement could ever serve them.)
                match cost.class {
                    OffloadClass::FullyMulAdd => {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            if self.cfg.recursive_kernels {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: true,
                                    units,
                                });
                            }
                            if cpu_free {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: false,
                                    units,
                                });
                            }
                        }
                        if self.cfg.operation_pipeline {
                            None // wait for pool capacity
                        } else {
                            cpu_free.then_some(PlanKind::Cpu)
                        }
                    }
                    OffloadClass::PartiallyMulAdd { .. } => {
                        if self.cfg.recursive_kernels {
                            if progr_free {
                                if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free)
                                {
                                    return Some(PlanKind::Recursive { units });
                                }
                            }
                        } else if cpu_free {
                            if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                                return Some(PlanKind::HostSplit { units });
                            }
                        }
                        if self.cfg.operation_pipeline {
                            None // wait for the programmable PIM + pool
                        } else {
                            cpu_free.then_some(PlanKind::Cpu)
                        }
                    }
                    OffloadClass::NonMulAdd | OffloadClass::DataMovement => {
                        if progr_free {
                            return Some(PlanKind::Progr);
                        }
                        cpu_free.then_some(PlanKind::Cpu)
                    }
                }
            }
        }
    }

    /// Simulates the workloads and produces the report.
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures, or an internal error if the
    /// scheduler wedges (a bug, guarded explicitly).
    pub fn run(&self, workloads: &[WorkloadSpec<'_>]) -> Result<ExecutionReport> {
        Ok(self.run_detailed(workloads)?.0)
    }

    /// Like [`Engine::run`], additionally returning the per-instance
    /// execution timeline (start/end/resource of every scheduled op) for
    /// inspection and invariant checking.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::run`].
    pub fn run_detailed(
        &self,
        workloads: &[WorkloadSpec<'_>],
    ) -> Result<(ExecutionReport, Vec<TimelineEntry>)> {
        let mut prepared = Vec::with_capacity(workloads.len());
        for wl in workloads {
            let costs = graph_costs(wl.graph)?;
            let profile = profile_step(wl.graph, &self.cpu)?;
            let candidates = select_candidates(&profile, self.cfg.coverage);
            let deps: Vec<Vec<usize>> = wl
                .graph
                .ops()
                .iter()
                .map(|op| {
                    wl.graph
                        .dependencies(op.id)
                        .map(|v| v.into_iter().map(|d| d.index()).collect())
                        .unwrap_or_default()
                })
                .collect();
            let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); wl.graph.op_count()];
            for (op, ds) in deps.iter().enumerate() {
                for &d in ds {
                    consumers[d].push(op);
                }
            }
            let topo = wl.graph.topo_order()?;
            let mut rank = vec![0usize; wl.graph.op_count()];
            for (r, id) in topo.iter().enumerate() {
                rank[id.index()] = r;
            }
            prepared.push(Prepared {
                spec: *wl,
                costs,
                candidates,
                deps,
                consumers,
                topo: topo.iter().map(|id| id.index()).collect(),
                rank,
            });
        }
        if self.cfg.operation_pipeline {
            self.run_scheduled(&prepared)
        } else {
            self.run_serialized(&prepared)
        }
    }


    /// Previews the placement decision for every op of a graph under this
    /// configuration, with all resources free (no contention) — the
    /// explainability view of the scheduler (C-INTERMEDIATE: expose the
    /// intermediate results the simulation is built from).
    ///
    /// # Errors
    ///
    /// Propagates profiling/cost failures.
    pub fn plan_preview(&self, graph: &Graph) -> Result<Vec<PlanRow>> {
        let costs = graph_costs(graph)?;
        let profile = profile_step(graph, &self.cpu)?;
        let candidates = select_candidates(&profile, self.cfg.coverage);
        let mut rows = Vec::with_capacity(graph.op_count());
        for node in graph.ops() {
            let cost = &costs[node.id.index()];
            let candidate = candidates.contains(node.id);
            let kind = self
                .choose(cost, candidate, false, true, true, self.cfg.ff_units)
                .ok_or_else(|| PimError::internal("uncontended placement must exist"))?;
            let planned = self.plan_cost(kind, cost);
            let placement = match kind {
                PlanKind::Cpu => "CPU".to_string(),
                PlanKind::ProgrPool => "Progr PIM pool".to_string(),
                PlanKind::Progr => "Progr PIM".to_string(),
                PlanKind::FixedWhole { rc_runtime, units } => {
                    format!(
                        "Fixed PIM ({}, {units} units)",
                        if rc_runtime { "rc" } else { "host" }
                    )
                }
                PlanKind::HostSplit { units } => format!("CPU + Fixed PIM ({units} units)"),
                PlanKind::Recursive { units } => {
                    format!("Recursive: Progr PIM + Fixed PIM ({units} units)")
                }
            };
            rows.push(PlanRow {
                op: node.id,
                name: node.kind.tf_name(),
                placement,
                candidate,
                seconds: planned.duration.seconds(),
            });
        }
        Ok(rows)
    }

    /// Sequential execution: one op at a time in topological order per
    /// step — the "without runtime scheduling" baselines.
    fn run_serialized(
        &self,
        prepared: &[Prepared<'_>],
    ) -> Result<(ExecutionReport, Vec<TimelineEntry>)> {
        let mut acc = Accumulator::default();
        let mut timeline = Vec::new();
        let mut makespan = Seconds::ZERO;
        for (w, wl) in prepared.iter().enumerate() {
            for step in 0..wl.spec.steps {
                for &op in &wl.topo {
                    let cost = &wl.costs[op];
                    let is_candidate =
                        wl.candidates.contains(pim_common::ids::OpId::new(op));
                    let kind = self
                        .choose(
                            cost,
                            is_candidate,
                            wl.spec.cpu_progr_only,
                            true,
                            true,
                            self.cfg.ff_units,
                        )
                        .ok_or_else(|| {
                            PimError::internal("serialized placement found no device")
                        })?;
                    let planned = self.plan_cost(kind, cost);
                    acc.add(&planned, makespan);
                    timeline.push(TimelineEntry {
                        workload: w,
                        step,
                        op,
                        start: makespan,
                        end: makespan + planned.duration,
                        resource: resource_class(&planned),
                    });
                    makespan += planned.duration;
                    if self.cfg.mode == SystemMode::Hetero {
                        makespan += PLACEMENT_DECISION;
                        acc.sync_raw += PLACEMENT_DECISION;
                    }
                }
                makespan += STEP_BARRIER;
                acc.sync_raw += STEP_BARRIER;
            }
        }
        Ok((acc.into_report(&self.cfg, prepared, makespan), timeline))
    }

    /// Event-driven execution with the operation pipeline.
    fn run_scheduled(
        &self,
        prepared: &[Prepared<'_>],
    ) -> Result<(ExecutionReport, Vec<TimelineEntry>)> {
        let mut timeline = Vec::new();
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct Key {
            step: usize,
            rank: usize,
            wl: usize,
            op: usize,
        }
        // Per-instance remaining dependency counts.
        let mut remaining: Vec<Vec<Vec<usize>>> = prepared
            .iter()
            .map(|wl| {
                (0..wl.spec.steps)
                    .map(|step| {
                        wl.deps
                            .iter()
                            .map(|d| d.len() + usize::from(step > 0))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut step_left: Vec<Vec<usize>> = prepared
            .iter()
            .map(|wl| vec![wl.topo.len(); wl.spec.steps])
            .collect();
        let mut min_incomplete: Vec<usize> = vec![0; prepared.len()];

        let mut ready: BTreeSet<Key> = BTreeSet::new();
        for (w, wl) in prepared.iter().enumerate() {
            for (op, deps) in wl.deps.iter().enumerate() {
                if deps.is_empty() && wl.spec.steps > 0 {
                    ready.insert(Key {
                        step: 0,
                        rank: wl.rank[op],
                        wl: w,
                        op,
                    });
                }
            }
        }

        let mut pool = FixedFunctionPool::new(self.pool_cfg.clone());
        let mut cpu_free = true;
        // Two concurrent programmable-PIM kernels (a core pair each).
        let mut progr_slots: usize = 2;

        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Done {
            wl: usize,
            step: usize,
            op: usize,
            units: usize,
            uses_cpu: bool,
            uses_progr: bool,
        }
        // Min-heap of (completion time in femtoseconds, sequence, payload).
        let mut events: BinaryHeap<Reverse<(u128, u64, usize)>> = BinaryHeap::new();
        let mut payloads: Vec<Done> = Vec::new();
        let mut seq = 0u64;
        let mut now = Seconds::ZERO;
        let mut acc = Accumulator::default();
        let total_instances: usize = prepared
            .iter()
            .map(|wl| wl.spec.steps * wl.topo.len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        let mut completed = 0usize;

        let to_fs = |t: Seconds| (t.seconds() * 1e15) as u128;

        while completed < total_instances {
            // Schedule everything that fits right now.
            let mut scheduled_any = true;
            while scheduled_any {
                scheduled_any = false;
                let keys: Vec<Key> = ready.iter().copied().collect();
                for key in keys {
                    let wl = &prepared[key.wl];
                    if key.step >= min_incomplete[key.wl] + self.cfg.pipeline_depth {
                        continue; // pipeline window closed for this step
                    }
                    let cost = &wl.costs[key.op];
                    let is_candidate = wl
                        .candidates
                        .contains(pim_common::ids::OpId::new(key.op));
                    let Some(kind) = self.choose(
                        cost,
                        is_candidate,
                        wl.spec.cpu_progr_only,
                        cpu_free,
                        progr_slots > 0,
                        pool.free_units(),
                    ) else {
                        continue;
                    };
                    // Reserve resources.
                    let units = match kind {
                        PlanKind::FixedWhole { units, .. }
                        | PlanKind::HostSplit { units }
                        | PlanKind::Recursive { units } => {
                            pool.grant(units)?;
                            units
                        }
                        _ => 0,
                    };
                    let planned = self.plan_cost(kind, cost);
                    if planned.uses_cpu {
                        cpu_free = false;
                    }
                    if planned.uses_progr {
                        progr_slots -= 1;
                    }
                    acc.add(&planned, now);
                    // Record the end at the same femtosecond quantization
                    // the event heap uses, so timeline intervals match the
                    // actual resource hold times exactly.
                    let end_fs = to_fs(now + planned.duration);
                    timeline.push(TimelineEntry {
                        workload: key.wl,
                        step: key.step,
                        op: key.op,
                        start: now,
                        end: Seconds::new(end_fs as f64 / 1e15),
                        resource: resource_class(&planned),
                    });
                    ready.remove(&key);
                    payloads.push(Done {
                        wl: key.wl,
                        step: key.step,
                        op: key.op,
                        units,
                        uses_cpu: planned.uses_cpu,
                        uses_progr: planned.uses_progr,
                    });
                    events.push(Reverse((
                        to_fs(now + planned.duration),
                        seq,
                        payloads.len() - 1,
                    )));
                    seq += 1;
                    scheduled_any = true;
                }
            }

            let Some(Reverse((t_fs, _, payload_idx))) = events.pop() else {
                if completed < total_instances {
                    return Err(PimError::internal(format!(
                        "scheduler wedged with {} of {total_instances} instances done",
                        completed
                    )));
                }
                break;
            };
            now = Seconds::new(t_fs as f64 / 1e15);
            let done = payloads[payload_idx];
            if done.units > 0 {
                pool.release(done.units);
            }
            if done.uses_cpu {
                cpu_free = true;
            }
            if done.uses_progr {
                progr_slots += 1;
            }
            completed += 1;

            let wl = &prepared[done.wl];
            // Intra-step consumers.
            for &c in &wl.consumers[done.op] {
                let r = &mut remaining[done.wl][done.step][c];
                *r -= 1;
                if *r == 0 {
                    ready.insert(Key {
                        step: done.step,
                        rank: wl.rank[c],
                        wl: done.wl,
                        op: c,
                    });
                }
            }
            // Cross-step successor: the same op in the next step.
            if done.step + 1 < wl.spec.steps {
                let r = &mut remaining[done.wl][done.step + 1][done.op];
                *r -= 1;
                if *r == 0 {
                    ready.insert(Key {
                        step: done.step + 1,
                        rank: wl.rank[done.op],
                        wl: done.wl,
                        op: done.op,
                    });
                }
            }
            // Step-completion bookkeeping for the pipeline window.
            step_left[done.wl][done.step] -= 1;
            while min_incomplete[done.wl] < wl.spec.steps
                && step_left[done.wl][min_incomplete[done.wl]] == 0
            {
                min_incomplete[done.wl] += 1;
            }
        }
        let barrier_total: Seconds = prepared
            .iter()
            .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
            .sum();
        // The CPU-side runtime makes one placement decision per op instance
        // (register queries through the Table III APIs); this serial work is
        // not hidden by the pipeline.
        let decisions: Seconds = if self.cfg.mode == SystemMode::Hetero {
            PLACEMENT_DECISION * total_instances as f64
        } else {
            Seconds::ZERO
        };
        acc.sync_raw += barrier_total + decisions;
        let makespan = now + barrier_total + decisions;
        Ok((acc.into_report(&self.cfg, prepared, makespan), timeline))
    }
}

/// Which exclusive resource class an op instance occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceClass {
    /// The host CPU slot.
    Cpu,
    /// A programmable-PIM kernel slot.
    Progr,
    /// Fixed-function units only.
    Fixed,
    /// CPU + fixed-function units (host-driven split).
    CpuAndFixed,
    /// Programmable PIM + fixed-function units (recursive kernel).
    ProgrAndFixed,
}

/// One scheduled op instance on the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelineEntry {
    /// Workload index.
    pub workload: usize,
    /// Training step.
    pub step: usize,
    /// Operation index within the graph.
    pub op: usize,
    /// Start time.
    pub start: Seconds,
    /// Completion time.
    pub end: Seconds,
    /// Resource class occupied.
    pub resource: ResourceClass,
}

fn resource_class(planned: &PlannedOp) -> ResourceClass {
    match (planned.uses_cpu, planned.uses_progr, planned.ff_units > 0) {
        (true, _, true) => ResourceClass::CpuAndFixed,
        (true, _, false) => ResourceClass::Cpu,
        (false, true, true) => ResourceClass::ProgrAndFixed,
        (false, true, false) => ResourceClass::Progr,
        _ => ResourceClass::Fixed,
    }
}

/// One row of [`Engine::plan_preview`]: where an op would run, uncontended.
#[derive(Debug, Clone, Serialize)]
pub struct PlanRow {
    /// The operation.
    pub op: pim_common::ids::OpId,
    /// Its TensorFlow display name.
    pub name: &'static str,
    /// Placement description ("Fixed PIM (rc, 444 units)", "CPU", ...).
    pub placement: String,
    /// Whether the op was an offload candidate.
    pub candidate: bool,
    /// Estimated uncontended duration in seconds.
    pub seconds: f64,
}

/// Prepared per-workload state.
struct Prepared<'g> {
    spec: WorkloadSpec<'g>,
    costs: Vec<CostProfile>,
    candidates: CandidateSet,
    deps: Vec<Vec<usize>>,
    consumers: Vec<Vec<usize>>,
    topo: Vec<usize>,
    rank: Vec<usize>,
}

/// Statistic accumulator shared by both execution modes.
#[derive(Debug, Default)]
struct Accumulator {
    op_raw: Seconds,
    dm_raw: Seconds,
    sync_raw: Seconds,
    energy: Joules,
    cpu_busy: Seconds,
    progr_busy: Seconds,
    ff_unit_seconds: f64,
}

impl Accumulator {
    fn add(&mut self, planned: &PlannedOp, _now: Seconds) {
        self.op_raw += planned.op_part;
        self.dm_raw += planned.dm_part;
        self.sync_raw += planned.sync_part;
        self.energy += planned.energy;
        if planned.uses_cpu {
            self.cpu_busy += planned.duration;
        }
        if planned.uses_progr {
            self.progr_busy += planned.duration;
        }
        self.ff_unit_seconds += planned.ff_units as f64 * planned.ff_busy.seconds();
    }

    fn into_report(
        self,
        cfg: &EngineConfig,
        prepared: &[Prepared<'_>],
        makespan: Seconds,
    ) -> ExecutionReport {
        let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
        let (op, dm, sync) = normalized_parts(makespan, self.op_raw, self.dm_raw, self.sync_raw);
        let mut device_busy = BTreeMap::new();
        device_busy.insert("CPU".to_string(), self.cpu_busy);
        device_busy.insert("Progr PIM".to_string(), self.progr_busy);
        device_busy.insert(
            "Fixed PIM".to_string(),
            Seconds::new(self.ff_unit_seconds / cfg.ff_units.max(1) as f64),
        );
        let ff_utilization = if makespan.seconds() > 0.0 && cfg.mode != SystemMode::CpuOnly {
            (self.ff_unit_seconds / (cfg.ff_units as f64 * makespan.seconds())).min(1.0)
        } else {
            0.0
        };
        // PIM configurations keep the host package powered (it hosts the
        // TensorFlow runtime and the OpenCL host program) even while PIMs
        // compute; CPU-only runs already bill the CPU per op.
        let host_idle = if cfg.mode == SystemMode::CpuOnly {
            Joules::ZERO
        } else {
            HOST_IDLE_POWER * makespan
        };
        ExecutionReport {
            system: cfg.name.clone(),
            steps,
            makespan,
            op_time: op,
            data_movement_time: dm,
            sync_time: sync,
            dynamic_energy: self.energy + BASE_SYSTEM_POWER * makespan + host_idle,
            ff_utilization,
            device_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::{Model, ModelKind};

    fn run(cfg: EngineConfig, kind: ModelKind, steps: usize) -> ExecutionReport {
        let model = Model::build_with_batch(kind, 16).unwrap();
        let engine = Engine::new(cfg);
        engine
            .run(&[WorkloadSpec {
                graph: model.graph(),
                steps,
                cpu_progr_only: false,
            }])
            .unwrap()
    }

    #[test]
    fn cpu_config_runs_and_is_well_formed() {
        let r = run(EngineConfig::cpu_only(), ModelKind::AlexNet, 2);
        assert!(r.is_well_formed());
        assert!(r.makespan.seconds() > 0.0);
        assert_eq!(r.ff_utilization, 0.0);
    }

    #[test]
    fn hetero_beats_cpu_substantially() {
        let cpu = run(EngineConfig::cpu_only(), ModelKind::AlexNet, 2);
        let hetero = run(EngineConfig::hetero(), ModelKind::AlexNet, 2);
        let speedup = cpu.makespan / hetero.makespan;
        assert!(speedup > 3.0, "speedup = {speedup}");
        assert!(hetero.is_well_formed());
    }

    #[test]
    fn hetero_beats_fixed_and_progr_baselines() {
        let kind = ModelKind::AlexNet;
        let hetero = run(EngineConfig::hetero(), kind, 2);
        let fixed = run(EngineConfig::fixed_host(), kind, 2);
        let progr = run(EngineConfig::progr_only(), kind, 2);
        assert!(fixed.makespan > hetero.makespan);
        assert!(progr.makespan > hetero.makespan);
    }

    #[test]
    fn rc_and_op_improve_over_bare_hetero() {
        // At the paper's batch size; OP's benefit needs enough in-flight
        // work to pipeline.
        let model = Model::build(ModelKind::AlexNet).unwrap();
        let run_cfg = |cfg: EngineConfig| {
            Engine::new(cfg)
                .run(&[WorkloadSpec {
                    graph: model.graph(),
                    steps: 3,
                    cpu_progr_only: false,
                }])
                .unwrap()
        };
        let bare = run_cfg(EngineConfig::hetero_bare());
        let rc = run_cfg(EngineConfig::hetero_rc());
        let full = run_cfg(EngineConfig::hetero());
        assert!(rc.makespan < bare.makespan, "RC must help");
        assert!(full.makespan < rc.makespan, "OP must help further");
    }

    #[test]
    fn rc_and_op_raise_fixed_pim_utilization() {
        let kind = ModelKind::Vgg19;
        let bare = run(EngineConfig::hetero_bare(), kind, 1);
        let full = run(EngineConfig::hetero(), kind, 2);
        assert!(
            full.ff_utilization > bare.ff_utilization,
            "bare {} vs full {}",
            bare.ff_utilization,
            full.ff_utilization
        );
    }

    #[test]
    fn frequency_scaling_speeds_up_hetero() {
        let kind = ModelKind::AlexNet;
        let base = run(EngineConfig::hetero(), kind, 2);
        let fast = run(
            EngineConfig::hetero().with_stack(
                StackConfig::hmc2().with_frequency_multiplier(4.0).unwrap(),
            ),
            kind,
            2,
        );
        assert!(fast.makespan < base.makespan);
    }

    #[test]
    fn pipeline_respects_dependencies() {
        // A deliberately serial chain cannot finish faster than the sum of
        // its op times divided by available parallelism — sanity-check by
        // ensuring 2 steps take less than 2x one step (pipelining) but
        // more than 1x (dependencies preserved).
        let kind = ModelKind::AlexNet;
        let one = run(EngineConfig::hetero(), kind, 1);
        let two = run(EngineConfig::hetero(), kind, 2);
        assert!(two.makespan > one.makespan);
        assert!(two.makespan < one.makespan * 2.0);
    }

    #[test]
    fn mixed_restricted_workload_avoids_fixed_pim() {
        let model = Model::build_with_batch(ModelKind::Word2vec, 8).unwrap();
        let engine = Engine::new(EngineConfig::hetero());
        let r = engine
            .run(&[WorkloadSpec {
                graph: model.graph(),
                steps: 2,
                cpu_progr_only: true,
            }])
            .unwrap();
        assert_eq!(r.ff_utilization, 0.0);
        assert!(r.is_well_formed());
    }
}

#[cfg(test)]
mod preview_tests {
    use super::*;
    use pim_models::{Model, ModelKind};

    #[test]
    fn preview_places_conv_backprops_on_recursive_kernels() {
        let model = Model::build(ModelKind::Vgg19).unwrap();
        let engine = Engine::new(EngineConfig::hetero());
        let rows = engine.plan_preview(model.graph()).unwrap();
        assert_eq!(rows.len(), model.graph().op_count());
        let bpf = rows
            .iter()
            .find(|r| r.name == "Conv2DBackpropFilter")
            .unwrap();
        assert!(bpf.candidate);
        assert!(bpf.placement.starts_with("Recursive"), "{}", bpf.placement);
        let conv = rows.iter().find(|r| r.name == "Conv2D").unwrap();
        assert!(conv.placement.starts_with("Fixed PIM"), "{}", conv.placement);
        let relu = rows.iter().find(|r| r.name == "Relu").unwrap();
        assert_eq!(relu.placement, "Progr PIM");
    }

    #[test]
    fn cpu_only_preview_places_everything_on_cpu() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 4).unwrap();
        let engine = Engine::new(EngineConfig::cpu_only());
        let rows = engine.plan_preview(model.graph()).unwrap();
        assert!(rows.iter().all(|r| r.placement == "CPU"));
        assert!(rows.iter().all(|r| r.seconds >= 0.0));
    }
}
