//! Synchronization-cost constants and kernel-call granularity.
//!
//! These model the paper's §II-C trade-off: "fixed-function PIMs can impose
//! high performance overhead by (i) frequent operation-spawning and
//! (ii) host-PIM synchronization. Programmable PIMs typically execute
//! coarse-grained code blocks with less frequent host-PIM synchronization."

use pim_common::units::Seconds;

/// Multiply/add flops covered by one fixed-function kernel call (one tile).
/// An operation's MA work spawns `ceil(ma_flops / this)` kernel calls; who
/// pays for those calls — the host (expensive) or the programmable PIM's
/// runtime (cheap, overlapped) — is the crux of the recursive-kernel
/// mechanism.
pub const CALL_GRANULARITY_FLOPS: f64 = 6e6;

/// Host-side cost of spawning one fixed-function kernel call.
pub const HOST_CALL: Seconds = Seconds::new(4e-6);

/// Programmable-PIM-side cost of spawning one fixed-function kernel call
/// (the recursive-kernel path).
pub const PIM_CALL: Seconds = Seconds::new(0.1e-6);

/// Completion synchronization between host and a fixed-function offload.
pub const HOST_FF_SYNC: Seconds = Seconds::new(3e-6);

/// Completion synchronization between host and the programmable PIM.
pub const HOST_PROGR_SYNC: Seconds = Seconds::new(20e-6);

/// Synchronization between the programmable PIM and fixed-function PIMs
/// through global variables in main memory (§III-B memory model).
pub const PIM_INTERNAL_SYNC: Seconds = Seconds::new(1e-6);

/// End-of-step barrier across CPU and all PIMs.
pub const STEP_BARRIER: Seconds = Seconds::new(10e-6);

/// Number of fixed-function kernel calls an amount of MA work spawns.
///
/// # Examples
///
/// ```
/// use pim_runtime::sync::{kernel_calls, CALL_GRANULARITY_FLOPS};
/// assert_eq!(kernel_calls(0.0), 0);
/// assert_eq!(kernel_calls(CALL_GRANULARITY_FLOPS * 2.5), 3);
/// ```
pub fn kernel_calls(ma_flops: f64) -> u64 {
    (ma_flops / CALL_GRANULARITY_FLOPS).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_calls_are_an_order_cheaper_than_host_calls() {
        assert!(PIM_CALL.seconds() * 10.0 <= HOST_CALL.seconds());
    }

    #[test]
    fn call_count_rounds_up() {
        assert_eq!(kernel_calls(1.0), 1);
        assert_eq!(kernel_calls(CALL_GRANULARITY_FLOPS), 1);
        assert_eq!(kernel_calls(CALL_GRANULARITY_FLOPS + 1.0), 2);
    }

    #[test]
    fn isa_lowering_uses_the_same_call_granularity() {
        // pim-isa cannot depend on pim-runtime, so it carries its own copy
        // of the granularity; the ISA ground truth is only comparable to
        // the analytic model while the two stay identical.
        assert_eq!(pim_isa::CALL_GRANULARITY_FLOPS, CALL_GRANULARITY_FLOPS);
    }
}
