//! End-to-end engine tests over the model zoo (the submodules carry their
//! own unit tests for the event core and the placement policy).

use super::*;
use pim_models::{Model, ModelKind};

fn run(cfg: EngineConfig, kind: ModelKind, steps: usize) -> ExecutionReport {
    let model = Model::build_with_batch(kind, 16).unwrap();
    let engine = Engine::new(cfg);
    engine
        .run(&[WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }])
        .unwrap()
}

#[test]
fn cpu_config_runs_and_is_well_formed() {
    let r = run(
        EngineConfig::preset(SystemPreset::CpuOnly),
        ModelKind::AlexNet,
        2,
    );
    assert!(r.is_well_formed());
    assert!(r.makespan.seconds() > 0.0);
    assert_eq!(r.ff_utilization, 0.0);
}

#[test]
fn hetero_beats_cpu_substantially() {
    let cpu = run(
        EngineConfig::preset(SystemPreset::CpuOnly),
        ModelKind::AlexNet,
        2,
    );
    let hetero = run(
        EngineConfig::preset(SystemPreset::Hetero),
        ModelKind::AlexNet,
        2,
    );
    let speedup = cpu.makespan / hetero.makespan;
    assert!(speedup > 3.0, "speedup = {speedup}");
    assert!(hetero.is_well_formed());
}

#[test]
fn hetero_beats_fixed_and_progr_baselines() {
    let kind = ModelKind::AlexNet;
    let hetero = run(EngineConfig::preset(SystemPreset::Hetero), kind, 2);
    let fixed = run(EngineConfig::preset(SystemPreset::FixedHost), kind, 2);
    let progr = run(EngineConfig::preset(SystemPreset::ProgrOnly), kind, 2);
    assert!(fixed.makespan > hetero.makespan);
    assert!(progr.makespan > hetero.makespan);
}

#[test]
fn rc_and_op_improve_over_bare_hetero() {
    // At the paper's batch size; OP's benefit needs enough in-flight
    // work to pipeline.
    let model = Model::build(ModelKind::AlexNet).unwrap();
    let run_cfg = |cfg: EngineConfig| {
        Engine::new(cfg)
            .run(&[WorkloadSpec {
                graph: model.graph(),
                steps: 3,
                cpu_progr_only: false,
            }])
            .unwrap()
    };
    let bare = run_cfg(EngineConfig::preset(SystemPreset::HeteroBare));
    let rc = run_cfg(EngineConfig::preset(SystemPreset::HeteroRc));
    let full = run_cfg(EngineConfig::preset(SystemPreset::Hetero));
    assert!(rc.makespan < bare.makespan, "RC must help");
    assert!(full.makespan < rc.makespan, "OP must help further");
}

#[test]
fn rc_and_op_raise_fixed_pim_utilization() {
    let kind = ModelKind::Vgg19;
    let bare = run(EngineConfig::preset(SystemPreset::HeteroBare), kind, 1);
    let full = run(EngineConfig::preset(SystemPreset::Hetero), kind, 2);
    assert!(
        full.ff_utilization > bare.ff_utilization,
        "bare {} vs full {}",
        bare.ff_utilization,
        full.ff_utilization
    );
}

#[test]
fn frequency_scaling_speeds_up_hetero() {
    let kind = ModelKind::AlexNet;
    let base = run(EngineConfig::preset(SystemPreset::Hetero), kind, 2);
    let fast = run(
        EngineConfig::preset(SystemPreset::Hetero)
            .with_stack(StackConfig::hmc2().with_frequency_multiplier(4.0).unwrap()),
        kind,
        2,
    );
    assert!(fast.makespan < base.makespan);
}

#[test]
fn pipeline_respects_dependencies() {
    // A deliberately serial chain cannot finish faster than the sum of
    // its op times divided by available parallelism — sanity-check by
    // ensuring 2 steps take less than 2x one step (pipelining) but
    // more than 1x (dependencies preserved).
    let kind = ModelKind::AlexNet;
    let one = run(EngineConfig::preset(SystemPreset::Hetero), kind, 1);
    let two = run(EngineConfig::preset(SystemPreset::Hetero), kind, 2);
    assert!(two.makespan > one.makespan);
    assert!(two.makespan < one.makespan * 2.0);
}

#[test]
fn mixed_restricted_workload_avoids_fixed_pim() {
    let model = Model::build_with_batch(ModelKind::Word2vec, 8).unwrap();
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    let r = engine
        .run(&[WorkloadSpec {
            graph: model.graph(),
            steps: 2,
            cpu_progr_only: true,
        }])
        .unwrap();
    assert_eq!(r.ff_utilization, 0.0);
    assert!(r.is_well_formed());
}

#[test]
fn run_many_matches_individual_runs() {
    let alex = Model::build_with_batch(ModelKind::AlexNet, 8).unwrap();
    let dcgan = Model::build_with_batch(ModelKind::Dcgan, 8).unwrap();
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    let specs = [
        WorkloadSpec {
            graph: alex.graph(),
            steps: 2,
            cpu_progr_only: false,
        },
        WorkloadSpec {
            graph: dcgan.graph(),
            steps: 2,
            cpu_progr_only: false,
        },
    ];
    let many = engine.run_many(&specs).unwrap();
    assert_eq!(many.len(), 2);
    for (spec, report) in specs.iter().zip(&many) {
        let single = engine.run(&[*spec]).unwrap();
        assert_eq!(report.makespan, single.makespan);
        assert_eq!(report.dynamic_energy, single.dynamic_energy);
    }
}

mod preview_tests {
    use super::*;

    #[test]
    fn preview_places_conv_backprops_on_recursive_kernels() {
        let model = Model::build(ModelKind::Vgg19).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let rows = engine.plan_preview(model.graph()).unwrap();
        assert_eq!(rows.len(), model.graph().op_count());
        let bpf = rows
            .iter()
            .find(|r| r.name == "Conv2DBackpropFilter")
            .unwrap();
        assert!(bpf.candidate);
        assert!(bpf.placement.starts_with("Recursive"), "{}", bpf.placement);
        let conv = rows.iter().find(|r| r.name == "Conv2D").unwrap();
        assert!(
            conv.placement.starts_with("Fixed PIM"),
            "{}",
            conv.placement
        );
        let relu = rows.iter().find(|r| r.name == "Relu").unwrap();
        assert_eq!(relu.placement, "Progr PIM");
    }

    #[test]
    fn cpu_only_preview_places_everything_on_cpu() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 4).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::CpuOnly));
        let rows = engine.plan_preview(model.graph()).unwrap();
        assert!(rows.iter().all(|r| r.placement == "CPU"));
        assert!(rows.iter().all(|r| r.seconds >= 0.0));
    }
}

mod fault_tests {
    use super::*;
    use pim_hw::faults::{FaultPlan, FaultTarget};

    fn spec(model: &Model, steps: usize) -> WorkloadSpec<'_> {
        WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }
    }

    #[test]
    fn none_plan_is_byte_identical_to_the_fault_free_path() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let opts = RunOptions {
                timeline: true,
                ..RunOptions::default()
            };
            let plain = engine.run_with(&[spec(&model, 2)], &opts).unwrap();
            let faulted = engine
                .run_with_faults(&[spec(&model, 2)], &opts, &FaultPlan::none())
                .unwrap();
            assert_eq!(plain.report(), faulted.report(), "{preset:?}");
            assert_eq!(plain.timeline, faulted.timeline, "{preset:?}");
            assert!(faulted.degraded.is_none());
        }
    }

    #[test]
    fn seeded_runs_are_deterministic_and_recover() {
        // Every run here passes the debug-build self-verification, so the
        // fault-aware legality checker vets each timeline implicitly.
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        for preset in [
            SystemPreset::Hetero,
            SystemPreset::FixedHost,
            SystemPreset::HeteroRc,
        ] {
            let engine = Engine::new(EngineConfig::preset(preset));
            let horizon = engine.run(&[spec(&model, 2)]).unwrap().makespan;
            let plan = FaultPlan::seeded(7, 0.2, horizon, engine.config().ff_units);
            let opts = RunOptions {
                timeline: true,
                ..RunOptions::default()
            };
            let a = engine
                .run_with_faults(&[spec(&model, 2)], &opts, &plan)
                .unwrap();
            let b = engine
                .run_with_faults(&[spec(&model, 2)], &opts, &plan)
                .unwrap();
            assert_eq!(a.report(), b.report(), "{preset:?}");
            assert_eq!(a.timeline, b.timeline, "{preset:?}");
            assert!(
                a.counters.get("faults/injected") > 0.0,
                "{preset:?}: plan at rate 0.2 injected nothing"
            );
            assert!(a.report().makespan > Seconds::ZERO);
        }
    }

    #[test]
    fn all_ff_dead_collapses_to_the_programmable_preset() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let hetero = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let plan = FaultPlan::quarantine_ff_at_start(hetero.config().ff_units);
        let degraded = hetero
            .run_with_faults(&[spec(&model, 2)], &RunOptions::default(), &plan)
            .unwrap();
        assert_eq!(degraded.degraded, Some("Progr PIM"));
        let progr = Engine::new(EngineConfig::preset(SystemPreset::ProgrOnly))
            .run(&[spec(&model, 2)])
            .unwrap();
        assert_eq!(*degraded.report(), progr);
    }

    #[test]
    fn everything_dead_collapses_to_cpu() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 8).unwrap();
        let hetero = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let plan = FaultPlan::quarantine_ff_at_start(hetero.config().ff_units)
            .with_permanent(Seconds::ZERO, FaultTarget::ProgrPim);
        let degraded = hetero
            .run_with_faults(&[spec(&model, 2)], &RunOptions::default(), &plan)
            .unwrap();
        assert_eq!(degraded.degraded, Some("CPU"));
        let cpu = Engine::new(EngineConfig::preset(SystemPreset::CpuOnly))
            .run(&[spec(&model, 2)])
            .unwrap();
        assert_eq!(degraded.report().makespan, cpu.makespan);
        assert_eq!(degraded.report().dynamic_energy, cpu.dynamic_energy);
    }

    #[test]
    fn mid_run_progr_strike_still_finishes() {
        let model = Model::build_with_batch(ModelKind::Lstm, 16).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        // Anchor the strike inside the busy part of the schedule (the
        // makespan itself ends with barrier/decision accounting no event
        // reaches).
        let (_, timeline) = engine.run_detailed(&[spec(&model, 2)]).unwrap();
        let last_end =
            timeline
                .iter()
                .map(|e| e.end)
                .fold(Seconds::ZERO, |a, b| if b > a { b } else { a });
        let plan = FaultPlan::none().with_permanent(last_end * 0.5, FaultTarget::ProgrPim);
        let out = engine
            .run_with_faults(&[spec(&model, 2)], &RunOptions::default(), &plan)
            .unwrap();
        assert!(out.degraded.is_none());
        assert!(out.report().is_well_formed());
        assert!(out.counters.get("faults/quarantined_units") >= 1.0);
    }
}

mod limit_tests {
    use super::*;

    fn spec(model: &Model, steps: usize) -> WorkloadSpec<'_> {
        WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }
    }

    /// The differential guard of the tentpole: compiling the check sites
    /// in — and even running under generous explicit limits — leaves a
    /// completed run byte-identical to the unbounded run, on both the
    /// scheduled and serialized drivers.
    #[test]
    fn generous_limits_leave_completed_runs_byte_identical() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let opts = RunOptions {
            timeline: true,
            ..RunOptions::default()
        };
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let base = RunRequest::new(&[spec(&model, 2)]).with_options(opts);
            let plain = engine.execute(&base).unwrap();
            let token = CancelToken::new();
            let bounded = engine
                .execute(
                    &base.clone().with_limits(
                        RunLimits::none()
                            .with_max_events(u64::MAX / 2)
                            .with_deadline(Seconds::new(1e6))
                            .with_cancel(&token),
                    ),
                )
                .unwrap();
            assert_eq!(plain.report(), bounded.report(), "{preset:?}");
            assert_eq!(plain.timeline, bounded.timeline, "{preset:?}");
        }
    }

    #[test]
    fn fuel_budget_trips_deterministically() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let request =
            RunRequest::new(&[spec(&model, 4)]).with_limits(RunLimits::none().with_max_events(10));
        let a = engine.execute(&request).unwrap_err();
        let b = engine.execute(&request).unwrap_err();
        assert_eq!(
            a,
            PimError::BudgetExhausted {
                budget: "events",
                limit: 10
            }
        );
        assert_eq!(a, b, "trip point must be a pure function of the request");
    }

    #[test]
    fn fuel_budget_trips_the_serialized_driver_too() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        // FixedHost has no operation pipeline → run_serialized.
        let engine = Engine::new(EngineConfig::preset(SystemPreset::FixedHost));
        let err = engine
            .execute(
                &RunRequest::new(&[spec(&model, 4)])
                    .with_limits(RunLimits::none().with_max_events(5)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            PimError::BudgetExhausted {
                budget: "events",
                limit: 5
            }
        );
    }

    #[test]
    fn simulated_deadline_cuts_a_run_short() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let full = engine.run(&[spec(&model, 2)]).unwrap().makespan;
        let err = engine
            .execute(
                &RunRequest::new(&[spec(&model, 2)])
                    .with_limits(RunLimits::none().with_deadline(full * 0.01)),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                PimError::BudgetExhausted {
                    budget: "deadline-us",
                    ..
                }
            ),
            "{err:?}"
        );
        // A deadline past the makespan changes nothing.
        let ok = engine
            .execute(
                &RunRequest::new(&[spec(&model, 2)])
                    .with_limits(RunLimits::none().with_deadline(full * 2.0)),
            )
            .unwrap();
        assert_eq!(ok.report().makespan, full);
    }

    #[test]
    fn pre_fired_cancel_token_stops_the_run() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let token = CancelToken::new();
        token.cancel();
        let err = engine
            .execute(
                &RunRequest::new(&[spec(&model, 2)])
                    .with_limits(RunLimits::none().with_cancel(&token)),
            )
            .unwrap_err();
        assert!(matches!(err, PimError::Cancelled { .. }), "{err:?}");
    }

    #[test]
    fn faulted_drivers_honor_fuel_budgets() {
        use pim_hw::faults::FaultPlan;
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        for preset in [SystemPreset::Hetero, SystemPreset::FixedHost] {
            let engine = Engine::new(EngineConfig::preset(preset));
            let horizon = engine.run(&[spec(&model, 2)]).unwrap().makespan;
            let plan = FaultPlan::seeded(7, 0.2, horizon, engine.config().ff_units);
            let err = engine
                .execute(
                    &RunRequest::new(&[spec(&model, 2)])
                        .with_faults(plan)
                        .with_limits(RunLimits::none().with_max_events(5)),
                )
                .unwrap_err();
            assert_eq!(
                err,
                PimError::BudgetExhausted {
                    budget: "events",
                    limit: 5
                },
                "{preset:?}"
            );
        }
    }

    #[test]
    fn partitioned_fuel_is_per_partition() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        // Find fuel that just fits one workload as its own partition.
        let single = RunRequest::new(&[spec(&model, 1)]).partitioned();
        let mut fuel = 1u64;
        while engine
            .execute(
                &single
                    .clone()
                    .with_limits(RunLimits::none().with_max_events(fuel)),
            )
            .is_err()
        {
            fuel *= 2;
            assert!(fuel < 1 << 40, "fuel search ran away");
        }
        // The same fuel admits two identical partitions: each has its own
        // gauge, so doubling the workload count must not trip the budget.
        let double = RunRequest::new(&[spec(&model, 1), spec(&model, 1)])
            .partitioned()
            .with_limits(RunLimits::none().with_max_events(fuel));
        let out = engine.execute(&double).unwrap();
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0], out.reports[1]);
    }

    #[test]
    fn limits_are_excluded_from_the_canonical_identity() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let cfg = EngineConfig::preset(SystemPreset::Hetero);
        let plain = RunRequest::new(&[spec(&model, 2)]);
        let bounded = plain
            .clone()
            .with_limits(RunLimits::none().with_max_events(7));
        assert_eq!(plain.canonical(&cfg), bounded.canonical(&cfg));
        assert_eq!(plain.fingerprint(&cfg), bounded.fingerprint(&cfg));
    }
}

mod isa_tests {
    use super::*;

    #[test]
    fn isa_backend_runs_and_stays_close_to_analytic() {
        let kind = ModelKind::AlexNet;
        let analytic = run(EngineConfig::preset(SystemPreset::Hetero), kind, 2);
        let interpreted = run(
            EngineConfig::preset(SystemPreset::Hetero).with_progr_backend(ProgrBackend::Isa),
            kind,
            2,
        );
        assert!(interpreted.is_well_formed());
        let delta = (interpreted.makespan.seconds() - analytic.makespan.seconds()).abs()
            / analytic.makespan.seconds();
        // The ISA backend rounds issue cycles and bytes, and folds call
        // dispatch into the compute term; it must stay a refinement of the
        // analytic model, not a different model.
        assert!(delta < 0.05, "makespan delta {delta} too large");
    }

    #[test]
    fn isa_backend_is_deterministic() {
        let cfg = EngineConfig::preset(SystemPreset::Hetero).with_progr_backend(ProgrBackend::Isa);
        let a = run(cfg.clone(), ModelKind::Dcgan, 2);
        let b = run(cfg, ModelKind::Dcgan, 2);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.dynamic_energy, b.dynamic_energy);
    }

    #[test]
    fn isa_backend_distinguishes_fingerprints() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let spec = WorkloadSpec {
            graph: model.graph(),
            steps: 1,
            cpu_progr_only: false,
        };
        let request = RunRequest::new(&[spec]);
        let analytic = EngineConfig::preset(SystemPreset::Hetero);
        let isa = analytic.clone().with_progr_backend(ProgrBackend::Isa);
        assert_ne!(request.fingerprint(&analytic), request.fingerprint(&isa));
        // The default backend is Analytic — presets are unchanged.
        assert_eq!(analytic.progr_backend, ProgrBackend::Analytic);
    }

    #[test]
    fn progr_pool_stays_analytic_under_the_isa_backend() {
        // The ProgrOnly baseline never places on the single ARM device, so
        // the backend toggle must not move its numbers.
        let kind = ModelKind::Lstm;
        let analytic = run(EngineConfig::preset(SystemPreset::ProgrOnly), kind, 2);
        let isa = run(
            EngineConfig::preset(SystemPreset::ProgrOnly).with_progr_backend(ProgrBackend::Isa),
            kind,
            2,
        );
        assert_eq!(analytic.makespan, isa.makespan);
        assert_eq!(analytic.dynamic_energy, isa.dynamic_energy);
    }
}
