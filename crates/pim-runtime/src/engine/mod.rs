//! The runtime engine: configuration, workload preparation, and the public
//! simulation API.
//!
//! Implements the §III-C scheduler — profiling-based candidate selection,
//! the three scheduling principles, recursive PIM kernels (RC), and the
//! operation pipeline (OP) — over the device models of `pim-hw`. The five
//! system configurations of §VI map onto [`EngineConfig`] constructors
//! (the GPU baseline is analytic and lives in `pim-sim`).
//!
//! The engine is a thin facade over two submodules:
//!
//! * `placement` — the placement policy (`Planner`): the three scheduling
//!   principles costed through the `pim-hw` `Device` trait,
//! * `events` — the shared event core (clock, event heap, resource state,
//!   trace sinks) and the execution drivers, including
//!   [`run_device_serial`] which the `pim-sim` baselines use.

mod events;
mod placement;
#[cfg(test)]
mod tests;

pub use events::{
    run_device_serial, DeviceRun, NullSink, ResourceClass, TimelineEntry, TraceSink, VecSink,
    PROGR_KERNEL_SLOTS,
};

use crate::profiler::profile_step;
use crate::select::{select_candidates, CandidateSet};
use crate::stats::ExecutionReport;
use crate::verify::{ResourceLimits, WorkloadFacts};
use pim_common::{Diagnostics, PimError, Result};
use pim_graph::cost::graph_costs;
use pim_graph::Graph;
use pim_hw::fixed::FixedFunctionPool;
use pim_mem::stack::StackConfig;
use pim_tensor::cost::CostProfile;
use placement::{Availability, PlanKind, Planner};
use serde::Serialize;

/// Which compute complement the simulated system has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SystemMode {
    /// Everything on the host CPU.
    CpuOnly,
    /// Everything on the programmable-PIM pool ("Progr PIM" baseline).
    ProgrOnly,
    /// Fixed-function PIMs driven by the host; the rest on CPU
    /// ("Fixed PIM" baseline).
    FixedHost,
    /// The full heterogeneous PIM (fixed-function pool + one programmable
    /// PIM + CPU).
    Hetero,
}

/// Engine configuration: system complement plus runtime-technique toggles.
#[derive(Debug, Clone, Serialize)]
pub struct EngineConfig {
    /// Display name for reports.
    pub name: String,
    /// Compute complement.
    pub mode: SystemMode,
    /// Recursive PIM kernels enabled (§III-B).
    pub recursive_kernels: bool,
    /// Operation pipeline enabled (§III-C); when off, execution is
    /// serialized as in the baselines "without runtime scheduling".
    pub operation_pipeline: bool,
    /// Steps allowed in flight simultaneously under the pipeline.
    pub pipeline_depth: usize,
    /// Candidate-selection coverage (the paper's x = 90%).
    pub coverage: f64,
    /// The 3D memory stack (carries the frequency multiplier of §VI-D).
    pub stack: StackConfig,
    /// ARM cores of the programmable PIM.
    pub arm_cores: usize,
    /// Fixed-function units on the logic die.
    pub ff_units: usize,
}

impl EngineConfig {
    fn base(name: &str, mode: SystemMode) -> Self {
        EngineConfig {
            name: name.to_string(),
            mode,
            recursive_kernels: false,
            operation_pipeline: false,
            pipeline_depth: 4,
            coverage: 0.90,
            stack: StackConfig::hmc2(),
            arm_cores: 4,
            ff_units: pim_hw::fixed::DEFAULT_UNITS,
        }
    }

    /// The "CPU" configuration of §VI.
    pub fn cpu_only() -> Self {
        EngineConfig::base("CPU", SystemMode::CpuOnly)
    }

    /// The "Progr PIM" configuration: programmable PIMs only, no runtime
    /// scheduling.
    pub fn progr_only() -> Self {
        EngineConfig::base("Progr PIM", SystemMode::ProgrOnly)
    }

    /// The "Fixed PIM" configuration: fixed-function PIMs plus CPU, no
    /// runtime scheduling.
    pub fn fixed_host() -> Self {
        EngineConfig::base("Fixed PIM", SystemMode::FixedHost)
    }

    /// The full "Hetero PIM" configuration with RC and OP.
    pub fn hetero() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM", SystemMode::Hetero);
        cfg.recursive_kernels = true;
        cfg.operation_pipeline = true;
        cfg
    }

    /// Hetero hardware without either runtime technique (Fig. 13's
    /// "Hetero PIM" ablation bar).
    pub fn hetero_bare() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM (no RC/OP)", SystemMode::Hetero);
        cfg.recursive_kernels = false;
        cfg.operation_pipeline = false;
        cfg
    }

    /// Hetero hardware with recursive kernels but no operation pipeline
    /// (Fig. 13's "+RC" bar).
    pub fn hetero_rc() -> Self {
        let mut cfg = EngineConfig::base("Hetero PIM +RC", SystemMode::Hetero);
        cfg.recursive_kernels = true;
        cfg.operation_pipeline = false;
        cfg
    }

    /// Returns a copy with a different stack (frequency-scaling studies).
    pub fn with_stack(mut self, stack: StackConfig) -> Self {
        self.stack = stack;
        self
    }

    /// Returns a copy with a different PIM complement (Fig. 12 scaling).
    pub fn with_pim_complement(mut self, arm_cores: usize, ff_units: usize) -> Self {
        self.arm_cores = arm_cores;
        self.ff_units = ff_units;
        self
    }
}

/// One workload participating in a simulation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec<'g> {
    /// The training-step graph.
    pub graph: &'g Graph,
    /// Steps to simulate.
    pub steps: usize,
    /// Restrict to CPU + programmable PIM (the §VI-F non-CNN co-runner
    /// rule: "the non-CNN model executes on CPU or the programmable PIM,
    /// when they are idle").
    pub cpu_progr_only: bool,
}

/// One row of [`Engine::plan_preview`]: where an op would run, uncontended.
#[derive(Debug, Clone, Serialize)]
pub struct PlanRow {
    /// The operation.
    pub op: pim_common::ids::OpId,
    /// Its TensorFlow display name.
    pub name: &'static str,
    /// Placement description ("Fixed PIM (rc, 444 units)", "CPU", ...).
    pub placement: String,
    /// Whether the op was an offload candidate.
    pub candidate: bool,
    /// Estimated uncontended duration in seconds.
    pub seconds: f64,
}

/// Prepared per-workload state the execution drivers consume.
pub(crate) struct Prepared<'g> {
    pub spec: WorkloadSpec<'g>,
    pub costs: Vec<CostProfile>,
    pub candidates: CandidateSet,
    pub deps: Vec<Vec<usize>>,
    pub consumers: Vec<Vec<usize>>,
    pub topo: Vec<usize>,
    pub rank: Vec<usize>,
}

/// The engine: devices + policy for one configuration.
pub struct Engine {
    planner: Planner,
}

impl Engine {
    /// Builds the engine for a configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            planner: Planner::new(cfg),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.planner.cfg
    }

    /// Profiles, classifies, and indexes every workload for the drivers.
    fn prepare<'g>(&self, workloads: &[WorkloadSpec<'g>]) -> Result<Vec<Prepared<'g>>> {
        let mut prepared = Vec::with_capacity(workloads.len());
        for wl in workloads {
            let costs = graph_costs(wl.graph)?;
            let profile = profile_step(wl.graph, self.planner.cpu())?;
            let candidates = select_candidates(&profile, self.planner.cfg.coverage);
            let deps: Vec<Vec<usize>> = wl
                .graph
                .ops()
                .iter()
                .map(|op| {
                    wl.graph
                        .dependencies(op.id)
                        .map(|v| v.into_iter().map(|d| d.index()).collect())
                        .unwrap_or_default()
                })
                .collect();
            let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); wl.graph.op_count()];
            for (op, ds) in deps.iter().enumerate() {
                for &d in ds {
                    consumers[d].push(op);
                }
            }
            let topo = wl.graph.topo_order()?;
            let mut rank = vec![0usize; wl.graph.op_count()];
            for (r, id) in topo.iter().enumerate() {
                rank[id.index()] = r;
            }
            prepared.push(Prepared {
                spec: *wl,
                costs,
                candidates,
                deps,
                consumers,
                topo: topo.iter().map(|id| id.index()).collect(),
                rank,
            });
        }
        Ok(prepared)
    }

    /// Simulates the workloads and produces the report.
    ///
    /// In debug builds — or with the `verify` feature enabled — every run
    /// additionally replays its timeline through the `schedule` legality
    /// pass ([`Engine::verify_timeline`]) and panics on any violation, so
    /// a scheduler bug surfaces at the run that produced it.
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures, or an internal error if the
    /// scheduler wedges (a bug, guarded explicitly).
    pub fn run(&self, workloads: &[WorkloadSpec<'_>]) -> Result<ExecutionReport> {
        #[cfg(any(debug_assertions, feature = "verify"))]
        {
            let prepared = self.prepare(workloads)?;
            let mut sink = VecSink::default();
            let report = self.drive(&prepared, &mut sink)?;
            let diags = self.check_prepared(&prepared, &sink.into_entries());
            assert!(
                diags.is_clean(),
                "schedule verification failed for `{}`:\n{}",
                self.planner.cfg.name,
                diags.render_text()
            );
            Ok(report)
        }
        #[cfg(not(any(debug_assertions, feature = "verify")))]
        {
            let prepared = self.prepare(workloads)?;
            let mut sink = NullSink;
            self.drive(&prepared, &mut sink)
        }
    }

    /// Dispatches prepared workloads to the configured execution driver.
    fn drive(
        &self,
        prepared: &[Prepared<'_>],
        sink: &mut dyn TraceSink,
    ) -> Result<ExecutionReport> {
        if self.planner.cfg.operation_pipeline {
            events::run_scheduled(&self.planner, prepared, sink)
        } else {
            events::run_serialized(&self.planner, prepared, sink)
        }
    }

    /// Replays a recorded timeline against this configuration's devices
    /// and the workloads' dependency structure, reporting every legality
    /// violation as a `schedule`-pass diagnostic (see [`crate::verify`]).
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures while re-preparing the
    /// workloads; the timeline itself never errors — problems become
    /// diagnostics.
    pub fn verify_timeline(
        &self,
        workloads: &[WorkloadSpec<'_>],
        timeline: &[TimelineEntry],
    ) -> Result<Diagnostics> {
        let prepared = self.prepare(workloads)?;
        Ok(self.check_prepared(&prepared, timeline))
    }

    /// Builds the legality facts for prepared workloads and runs the
    /// schedule checker over a timeline.
    fn check_prepared(&self, prepared: &[Prepared<'_>], timeline: &[TimelineEntry]) -> Diagnostics {
        let facts: Vec<WorkloadFacts> = prepared
            .iter()
            .map(|wl| WorkloadFacts {
                deps: wl.deps.clone(),
                steps: wl.spec.steps,
                restricted: wl.spec.cpu_progr_only,
                costs: wl.costs.clone(),
                names: wl
                    .spec
                    .graph
                    .ops()
                    .iter()
                    .map(|op| op.kind.tf_name())
                    .collect(),
            })
            .collect();
        let cfg = &self.planner.cfg;
        let limits = ResourceLimits {
            cpu_slots: 1,
            progr_slots: events::PROGR_KERNEL_SLOTS,
            ff_units: cfg.ff_units,
            pipeline_depth: cfg.operation_pipeline.then_some(cfg.pipeline_depth),
        };
        let pool = FixedFunctionPool::new(self.planner.pool_cfg().clone());
        crate::verify::check_timeline(&facts, timeline, &limits, &pool)
    }

    /// Like [`Engine::run`], additionally returning the per-instance
    /// execution timeline (start/end/resource of every scheduled op) for
    /// inspection and invariant checking.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::run`].
    pub fn run_detailed(
        &self,
        workloads: &[WorkloadSpec<'_>],
    ) -> Result<(ExecutionReport, Vec<TimelineEntry>)> {
        let prepared = self.prepare(workloads)?;
        let mut sink = VecSink::default();
        let report = if self.planner.cfg.operation_pipeline {
            events::run_scheduled(&self.planner, &prepared, &mut sink)?
        } else {
            events::run_serialized(&self.planner, &prepared, &mut sink)?
        };
        Ok((report, sink.into_entries()))
    }

    /// Runs each workload as its own independent simulation, across
    /// threads when the `parallel` feature is enabled (the default).
    /// Results keep the input order.
    ///
    /// # Errors
    ///
    /// Propagates the first failure among the runs, in input order.
    pub fn run_many(&self, workloads: &[WorkloadSpec<'_>]) -> Result<Vec<ExecutionReport>> {
        crate::par::par_map(workloads, |wl| self.run(&[*wl]))
            .into_iter()
            .collect()
    }

    /// Previews the placement decision for every op of a graph under this
    /// configuration, with all resources free (no contention) — the
    /// explainability view of the scheduler (C-INTERMEDIATE: expose the
    /// intermediate results the simulation is built from).
    ///
    /// # Errors
    ///
    /// Propagates profiling/cost failures.
    pub fn plan_preview(&self, graph: &Graph) -> Result<Vec<PlanRow>> {
        let costs = graph_costs(graph)?;
        let profile = profile_step(graph, self.planner.cpu())?;
        let candidates = select_candidates(&profile, self.planner.cfg.coverage);
        let mut rows = Vec::with_capacity(graph.op_count());
        for node in graph.ops() {
            let cost = &costs[node.id.index()];
            let candidate = candidates.contains(node.id);
            let kind = self
                .planner
                .choose(
                    cost,
                    candidate,
                    false,
                    Availability::all_free(self.planner.cfg.ff_units),
                )
                .ok_or_else(|| PimError::internal("uncontended placement must exist"))?;
            let planned = self.planner.plan_cost(kind, cost);
            let placement = match kind {
                PlanKind::Cpu => "CPU".to_string(),
                PlanKind::ProgrPool => "Progr PIM pool".to_string(),
                PlanKind::Progr => "Progr PIM".to_string(),
                PlanKind::FixedWhole { rc_runtime, units } => {
                    format!(
                        "Fixed PIM ({}, {units} units)",
                        if rc_runtime { "rc" } else { "host" }
                    )
                }
                PlanKind::HostSplit { units } => format!("CPU + Fixed PIM ({units} units)"),
                PlanKind::Recursive { units } => {
                    format!("Recursive: Progr PIM + Fixed PIM ({units} units)")
                }
            };
            rows.push(PlanRow {
                op: node.id,
                name: node.kind.tf_name(),
                placement,
                candidate,
                seconds: planned.duration.seconds(),
            });
        }
        Ok(rows)
    }
}
