//! The runtime engine: configuration, workload preparation, and the public
//! simulation API.
//!
//! Implements the §III-C scheduler — profiling-based candidate selection,
//! the three scheduling principles, recursive PIM kernels (RC), and the
//! operation pipeline (OP) — over the device models of `pim-hw`. The
//! system configurations of §VI map onto [`SystemPreset`] via
//! [`EngineConfig::preset`] (the GPU baseline is analytic and lives in
//! `pim-sim`).
//!
//! All execution funnels through one entry point, [`Engine::execute`],
//! which takes a [`RunRequest`] — workloads, [`RunOptions`], a
//! [`FaultPlan`], and a [`Partitioning`] — and returns a [`RunOutput`]
//! carrying the reports plus any requested observability artifacts
//! (timeline, counters, Chrome-trace recording). [`Engine::run`],
//! [`Engine::run_with`], [`Engine::run_detailed`], [`Engine::run_many`],
//! [`Engine::run_with_faults`], and [`Engine::run_many_with`] are thin
//! wrappers that build the corresponding request. The same `RunRequest`
//! doubles as the content-addressed identity of a simulation:
//! [`RunRequest::fingerprint`] keys the shared result store of
//! `pim-serve`, so the in-process API, the wire protocol, and the cache
//! key are one object.
//!
//! The engine is a thin facade over the core submodules:
//!
//! * `placement` — the placement policy (`Planner`): the three scheduling
//!   principles costed through the `pim-hw` `Device` trait,
//! * `components` — the component/next-tick discrete-event core (device
//!   lanes, link/sync model, SoA resource state, component slab, clock,
//!   event heap),
//! * `observe` — timeline sinks and the observability `Observer`,
//! * `drivers` — the execution drivers, including [`run_device_serial`]
//!   which the `pim-sim` baselines use,
//! * `events` — the historical facade re-exporting the three above.

mod components;
mod drivers;
mod events;
pub mod faults;
mod limits;
mod observe;
mod placement;
#[cfg(test)]
mod tests;

pub use limits::{CancelToken, RunLimits};

pub(crate) use events::SCHED_TRACK;
pub use events::{
    run_device_serial, DeviceRun, NullSink, ResourceClass, TimelineEntry, TimelineSink, VecSink,
    PROGR_KERNEL_SLOTS,
};
pub use faults::{backoff_after, AttemptOutcome, BACKOFF_BASE, LINK_TIMEOUT, MAX_ATTEMPTS};

use crate::fuzz::TieBreak;
use crate::profiler::profile_step_cached_traced;
use crate::select::{select_candidates_tie_traced, select_candidates_traced, CandidateSet};
use crate::stats::ExecutionReport;
use crate::verify::{ResourceLimits, WorkloadFacts};
use events::Observer;
use faults::FaultContext;
use pim_common::trace::{Counters, NullTrace, TraceRecording};
use pim_common::units::Seconds;
use pim_common::{Diagnostics, PimError, Result};
use pim_graph::cost::graph_costs;
use pim_graph::Graph;
use pim_hw::cpu::CpuDevice;
use pim_hw::faults::{FaultPlan, FaultTarget};
use pim_hw::fixed::FixedFunctionPool;
use pim_mem::stack::StackConfig;
use pim_tensor::cost::CostProfile;
use placement::{describe, Availability, Planner};
use serde::Serialize;

/// Which compute complement the simulated system has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SystemMode {
    /// Everything on the host CPU.
    CpuOnly,
    /// Everything on the programmable-PIM pool ("Progr PIM" baseline).
    ProgrOnly,
    /// Fixed-function PIMs driven by the host; the rest on CPU
    /// ("Fixed PIM" baseline).
    FixedHost,
    /// The full heterogeneous PIM (fixed-function pool + one programmable
    /// PIM + CPU).
    Hetero,
}

/// The named system configurations of the evaluation — the single source
/// of truth [`EngineConfig::preset`] builds from.
///
/// §VI's engine-backed configurations plus the Fig. 13 ablation points
/// (the GPU baseline is analytic and lives in `pim-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SystemPreset {
    /// The "CPU" configuration of §VI.
    CpuOnly,
    /// The "Progr PIM" configuration: programmable PIMs only, no runtime
    /// scheduling.
    ProgrOnly,
    /// The "Fixed PIM" configuration: fixed-function PIMs plus CPU, no
    /// runtime scheduling.
    FixedHost,
    /// The full "Hetero PIM" configuration with RC and OP.
    Hetero,
    /// Hetero hardware without either runtime technique (Fig. 13's
    /// "Hetero PIM" ablation bar).
    HeteroBare,
    /// Hetero hardware with recursive kernels but no operation pipeline
    /// (Fig. 13's "+RC" bar).
    HeteroRc,
}

impl SystemPreset {
    /// Every preset, in evaluation order.
    pub const ALL: [SystemPreset; 6] = [
        SystemPreset::CpuOnly,
        SystemPreset::ProgrOnly,
        SystemPreset::FixedHost,
        SystemPreset::Hetero,
        SystemPreset::HeteroBare,
        SystemPreset::HeteroRc,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemPreset::CpuOnly => "CPU",
            SystemPreset::ProgrOnly => "Progr PIM",
            SystemPreset::FixedHost => "Fixed PIM",
            SystemPreset::Hetero => "Hetero PIM",
            SystemPreset::HeteroBare => "Hetero PIM (no RC/OP)",
            SystemPreset::HeteroRc => "Hetero PIM +RC",
        }
    }

    /// The compute complement this preset runs on.
    pub fn mode(self) -> SystemMode {
        match self {
            SystemPreset::CpuOnly => SystemMode::CpuOnly,
            SystemPreset::ProgrOnly => SystemMode::ProgrOnly,
            SystemPreset::FixedHost => SystemMode::FixedHost,
            SystemPreset::Hetero | SystemPreset::HeteroBare | SystemPreset::HeteroRc => {
                SystemMode::Hetero
            }
        }
    }
}

/// How programmable-PIM placements are costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum ProgrBackend {
    /// The closed-form device formula (`pim_hw::params::estimate`) — the
    /// default, and byte-identical to the pre-ISA engine.
    #[default]
    Analytic,
    /// ISA interpretation: each kernel placed on the ARM core lowers to a
    /// `pim_isa` program whose interpreted issue cycles and `ld`/`st`
    /// traffic produce the timing/energy estimate (the executed ground
    /// truth of DESIGN.md §4.12). The `ProgrOnly` pool abstraction stays
    /// analytic — it models "as many cores as needed", not one program.
    Isa,
}

/// Engine configuration: system complement plus runtime-technique toggles.
#[derive(Debug, Clone, Serialize)]
pub struct EngineConfig {
    /// Display name for reports.
    pub name: String,
    /// Compute complement.
    pub mode: SystemMode,
    /// Recursive PIM kernels enabled (§III-B).
    pub recursive_kernels: bool,
    /// Operation pipeline enabled (§III-C); when off, execution is
    /// serialized as in the baselines "without runtime scheduling".
    pub operation_pipeline: bool,
    /// Steps allowed in flight simultaneously under the pipeline.
    pub pipeline_depth: usize,
    /// Candidate-selection coverage (the paper's x = 90%).
    pub coverage: f64,
    /// The 3D memory stack (carries the frequency multiplier of §VI-D).
    pub stack: StackConfig,
    /// ARM cores of the programmable PIM.
    pub arm_cores: usize,
    /// Fixed-function units on the logic die.
    pub ff_units: usize,
    /// The host CPU: step-1 profiling and all CPU placements run on this
    /// device (defaults to the paper's Xeon E5-2630 v3).
    pub host: CpuDevice,
    /// Programmable-PIM costing backend. Part of the `Debug` rendering, so
    /// [`RunRequest::fingerprint`] distinguishes analytic from interpreted
    /// runs in the shared result store.
    pub progr_backend: ProgrBackend,
}

impl EngineConfig {
    /// Builds the configuration for a named preset — the one constructor
    /// all evaluation configurations derive from.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_runtime::engine::{EngineConfig, SystemPreset};
    /// let cfg = EngineConfig::preset(SystemPreset::Hetero);
    /// assert_eq!(cfg.name, "Hetero PIM");
    /// assert!(cfg.recursive_kernels && cfg.operation_pipeline);
    /// ```
    pub fn preset(preset: SystemPreset) -> Self {
        let (rc, op) = match preset {
            SystemPreset::Hetero => (true, true),
            SystemPreset::HeteroRc => (true, false),
            _ => (false, false),
        };
        EngineConfig {
            name: preset.name().to_string(),
            mode: preset.mode(),
            recursive_kernels: rc,
            operation_pipeline: op,
            pipeline_depth: 4,
            coverage: 0.90,
            stack: StackConfig::hmc2(),
            arm_cores: 4,
            ff_units: pim_hw::fixed::DEFAULT_UNITS,
            host: CpuDevice::xeon_e5_2630_v3(),
            progr_backend: ProgrBackend::default(),
        }
    }

    /// Returns a copy with a different stack (frequency-scaling studies).
    pub fn with_stack(mut self, stack: StackConfig) -> Self {
        self.stack = stack;
        self
    }

    /// Returns a copy with a different PIM complement (Fig. 12 scaling).
    pub fn with_pim_complement(mut self, arm_cores: usize, ff_units: usize) -> Self {
        self.arm_cores = arm_cores;
        self.ff_units = ff_units;
        self
    }

    /// Returns a copy with a different host CPU device; profiling and CPU
    /// placements follow it.
    pub fn with_host_cpu(mut self, host: CpuDevice) -> Self {
        self.host = host;
        self
    }

    /// Returns a copy with a different programmable-PIM costing backend.
    pub fn with_progr_backend(mut self, backend: ProgrBackend) -> Self {
        self.progr_backend = backend;
        self
    }
}

/// One workload participating in a simulation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec<'g> {
    /// The training-step graph.
    pub graph: &'g Graph,
    /// Steps to simulate.
    pub steps: usize,
    /// Restrict to CPU + programmable PIM (the §VI-F non-CNN co-runner
    /// rule: "the non-CNN model executes on CPU or the programmable PIM,
    /// when they are idle").
    pub cpu_progr_only: bool,
}

/// One row of [`Engine::plan_preview`]: where an op would run, uncontended.
#[derive(Debug, Clone, Serialize)]
pub struct PlanRow {
    /// The operation.
    pub op: pim_common::ids::OpId,
    /// Its TensorFlow display name.
    pub name: &'static str,
    /// Placement description ("Fixed PIM (rc, 444 units)", "CPU", ...).
    pub placement: String,
    /// Whether the op was an offload candidate.
    pub candidate: bool,
    /// Estimated uncontended duration in seconds.
    pub seconds: f64,
}

/// Prepared per-workload state the execution drivers consume.
pub(crate) struct Prepared<'g> {
    pub spec: WorkloadSpec<'g>,
    pub costs: Vec<CostProfile>,
    pub candidates: CandidateSet,
    pub deps: Vec<Vec<usize>>,
    pub consumers: Vec<Vec<usize>>,
    pub topo: Vec<usize>,
    pub rank: Vec<usize>,
}

/// Knobs for one [`Engine::run_with`] invocation: which observability
/// artifacts to materialize alongside the report.
///
/// The default requests nothing extra — `run_with(wls, &RunOptions::default())`
/// behaves exactly like [`Engine::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Collect the per-instance execution timeline.
    pub timeline: bool,
    /// Record a Chrome-trace span recording. Requires the `trace` cargo
    /// feature; without it the request is ignored and
    /// [`RunOutput::trace`] stays `None`.
    pub trace: bool,
    /// Tie-break policy for candidate ranking, dispatch-scan order, and
    /// event retire order. The default, [`TieBreak::Stable`], is the
    /// byte-identical production path; the seeded modes back the pass-5
    /// order-invariance audit ([`crate::fuzz`]) and the schedule search
    /// ([`crate::search`]).
    pub tie: TieBreak,
}

/// How [`Engine::execute`] maps workloads onto the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum Partitioning {
    /// All workloads co-run on one shared resource state (the Fig. 16
    /// co-scheduling scenario) and produce a single aggregate report.
    #[default]
    Shared,
    /// Each workload is an independent partition with the whole machine to
    /// itself, advanced on its own event core — on its own thread when the
    /// `parallel` feature is enabled — producing one report per workload.
    Partitioned,
}

/// One simulation request: the single argument of [`Engine::execute`],
/// the object every `Engine::run*` wrapper builds, and — through
/// [`RunRequest::canonical`] / [`RunRequest::fingerprint`] — the shared
/// cache/protocol key of the `pim-serve` daemon.
#[derive(Debug, Clone)]
pub struct RunRequest<'g> {
    /// The participating workloads.
    pub workloads: Vec<WorkloadSpec<'g>>,
    /// Observability and tie-break knobs.
    pub options: RunOptions,
    /// The fault plan; [`FaultPlan::none`] (the default) keeps the
    /// fault-free hot paths byte-identical.
    pub faults: FaultPlan,
    /// Shared co-run vs. independent partitions.
    pub partitioning: Partitioning,
    /// Execution bounds: event-count fuel, simulated-time deadline, and/or
    /// a cooperative [`CancelToken`]. Unbounded by default. Deliberately
    /// excluded from [`RunRequest::canonical`]: limits only decide whether
    /// a run *finishes*, never what a finished run produces, so a
    /// completed bounded run shares its cache cell with the unbounded run
    /// (and a tripped run returns an error, which is never cached).
    pub limits: RunLimits,
}

impl<'g> RunRequest<'g> {
    /// A fault-free, shared, default-options request over `workloads`.
    pub fn new(workloads: &[WorkloadSpec<'g>]) -> Self {
        RunRequest {
            workloads: workloads.to_vec(),
            options: RunOptions::default(),
            faults: FaultPlan::none(),
            partitioning: Partitioning::Shared,
            limits: RunLimits::none(),
        }
    }

    /// Returns the request with `options` replacing the defaults.
    #[must_use]
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Returns the request with `faults` replacing the empty plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the request with [`Partitioning::Partitioned`].
    #[must_use]
    pub fn partitioned(mut self) -> Self {
        self.partitioning = Partitioning::Partitioned;
        self
    }

    /// Returns the request with execution bounds replacing the unbounded
    /// default.
    #[must_use]
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The canonical text form of this request under a configuration: a
    /// stable, versioned rendering of everything that determines the
    /// simulation result — the configuration, each workload's structural
    /// graph hash and step count, the tie-break policy, the fault plan,
    /// and the partitioning.
    ///
    /// The observability toggles ([`RunOptions::timeline`],
    /// [`RunOptions::trace`]) are deliberately *excluded*: they change
    /// which artifacts are materialized, never the report (the trace
    /// byte-diff stage of ci.sh holds this invariant), so two requests
    /// differing only in observability share one cache cell.
    pub fn canonical(&self, cfg: &EngineConfig) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("run-request-v1");
        let _ = write!(s, ";config={cfg:?}");
        s.push_str(";workloads=[");
        for (i, wl) in self.workloads.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{graph={:016x},ops={},steps={},restricted={}}}",
                wl.graph.structural_hash(),
                wl.graph.op_count(),
                wl.steps,
                wl.cpu_progr_only
            );
        }
        let _ = write!(
            s,
            "];tie={:?};faults={:?};partitioning={:?}",
            self.options.tie, self.faults, self.partitioning
        );
        s
    }

    /// The content hash of [`RunRequest::canonical`] — the shared result
    /// store key (`pim_common::fingerprint::debug_hash` over the canonical
    /// string, stable across processes and thread counts).
    pub fn fingerprint(&self, cfg: &EngineConfig) -> u64 {
        pim_common::fingerprint::debug_hash(&self.canonical(cfg))
    }
}

/// Everything one simulation produced — the response half of the
/// [`RunRequest`] API.
pub type RunResponse = RunOutput;

/// Everything one simulation produced.
#[derive(Debug)]
pub struct RunOutput {
    /// The execution reports: exactly one for a [`Partitioning::Shared`]
    /// run (the aggregate over all co-run workloads), one per workload in
    /// input order for a [`Partitioning::Partitioned`] run.
    pub reports: Vec<ExecutionReport>,
    /// The per-instance timeline, when [`RunOptions::timeline`] was set.
    /// Partitioned runs merge per-partition timelines by
    /// `(quantized start, partition index)` with stable within-partition
    /// order (see the `components` module docs for the determinism
    /// argument).
    pub timeline: Option<Vec<TimelineEntry>>,
    /// The span recording, when [`RunOptions::trace`] was set and the
    /// `trace` feature is compiled in. Partitioned runs do not record
    /// traces.
    pub trace: Option<TraceRecording>,
    /// The run's counter registry (ops placed per device, events
    /// dispatched, busy seconds, bytes moved, sync stalls, fault
    /// recovery). Always collected; cross-checked against the report in
    /// debug/`verify` builds. Partitioned runs merge counters in partition
    /// order — every key is a sum over events, so the merge is independent
    /// of the worker count.
    pub counters: Counters,
    /// When a fault plan quarantined a whole compute complement before the
    /// run started, the preset the configuration gracefully degraded to
    /// (its display name); `None` for fault-free runs and plans the
    /// configuration rides out without collapsing. Mid-run strikes degrade
    /// placement-by-placement and do not set this.
    pub degraded: Option<&'static str>,
}

impl RunOutput {
    /// The run's single report. For shared runs this is *the* aggregate
    /// report; for partitioned runs it is the first partition's.
    ///
    /// # Panics
    ///
    /// Panics if the output carries no reports — only possible for a
    /// partitioned run over an empty workload set.
    pub fn report(&self) -> &ExecutionReport {
        &self.reports[0]
    }

    /// Consumes the output, returning its single (first) report.
    ///
    /// # Panics
    ///
    /// Panics if the output carries no reports (see [`RunOutput::report`]).
    pub fn into_report(mut self) -> ExecutionReport {
        self.reports.swap_remove(0)
    }
}

/// The engine: devices + policy for one configuration.
pub struct Engine {
    planner: Planner,
}

impl Engine {
    /// Builds the engine for a configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            planner: Planner::new(cfg),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.planner.cfg
    }

    /// The CPU device this configuration profiles and schedules against
    /// ([`EngineConfig::host`]).
    pub fn profiling_device(&self) -> &CpuDevice {
        self.planner.cpu()
    }

    /// Profiles, classifies, and indexes every workload for the drivers.
    fn prepare<'g>(
        &self,
        workloads: &[WorkloadSpec<'g>],
        tracer: &mut dyn pim_common::trace::TraceSink,
        tie: TieBreak,
    ) -> Result<Vec<Prepared<'g>>> {
        let mut prepared = Vec::with_capacity(workloads.len());
        for wl in workloads {
            let costs = graph_costs(wl.graph)?;
            let profile = profile_step_cached_traced(wl.graph, self.planner.cpu(), tracer)?;
            let candidates =
                select_candidates_tie_traced(&profile, self.planner.cfg.coverage, tie, tracer);
            let deps: Vec<Vec<usize>> = wl
                .graph
                .all_dependencies()
                .into_iter()
                .map(|v| v.into_iter().map(pim_common::ids::OpId::index).collect())
                .collect();
            let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); wl.graph.op_count()];
            for (op, ds) in deps.iter().enumerate() {
                for &d in ds {
                    consumers[d].push(op);
                }
            }
            let topo = wl.graph.topo_order()?;
            let mut rank = vec![0usize; wl.graph.op_count()];
            for (r, id) in topo.iter().enumerate() {
                rank[id.index()] = r;
            }
            prepared.push(Prepared {
                spec: *wl,
                costs,
                candidates,
                deps,
                consumers,
                topo: topo.iter().map(|id| id.index()).collect(),
                rank,
            });
        }
        Ok(prepared)
    }

    /// Executes one [`RunRequest`] — the single entry point every
    /// `Engine::run*` wrapper delegates to.
    ///
    /// A [`Partitioning::Shared`] request co-runs all workloads on one
    /// resource state under the request's fault plan: when the plan
    /// quarantines a whole compute complement before the run starts
    /// (e.g. every fixed-function unit at `t <= 0`), the configuration
    /// *collapses* to the strongest surviving preset along the paper's
    /// fixed → programmable → host chain before executing, and
    /// [`RunOutput::degraded`] names it. With [`FaultPlan::none`] the
    /// untouched fault-free drivers run and the output is byte-identical
    /// to the pre-fault-support engine.
    ///
    /// A [`Partitioning::Partitioned`] request gives each workload the
    /// whole machine to itself on its own event core — on its own thread
    /// when the `parallel` feature is enabled (worker count capped by
    /// `PIM_RUN_THREADS`) — then merges the artifacts deterministically:
    /// reports keep input order, timelines merge by `(quantized start,
    /// partition index)`, counters merge in partition order. The output
    /// is a pure function of the request, independent of the worker
    /// count.
    ///
    /// In debug builds — or with the `verify` feature enabled — every run
    /// additionally replays its timeline through the `schedule` legality
    /// pass ([`Engine::verify_timeline`]) and cross-checks the counter
    /// registry against the report ([`crate::stats::cross_check_counters`]),
    /// panicking on any violation so a scheduler bug surfaces at the run
    /// that produced it.
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures, or an internal error if the
    /// scheduler wedges (a bug, guarded explicitly). A request carrying
    /// [`RunLimits`] additionally returns `PimError::BudgetExhausted`
    /// when its event fuel or simulated-time deadline trips, and
    /// `PimError::Cancelled` when its [`CancelToken`] fires — both
    /// observed at the drivers' per-event check sites, so bounded runs
    /// that *complete* stay byte-identical to unbounded ones.
    /// Partitioned requests propagate the first failure among the
    /// partitions, in input order.
    pub fn execute(&self, request: &RunRequest<'_>) -> Result<RunOutput> {
        match request.partitioning {
            Partitioning::Shared => match self.degraded_engine(&request.faults) {
                Some((engine, label, eff)) => {
                    let mut out = engine.run_inner(
                        &request.workloads,
                        &request.options,
                        &eff,
                        &request.limits,
                    )?;
                    out.degraded = Some(label);
                    Ok(out)
                }
                None => self.run_inner(
                    &request.workloads,
                    &request.options,
                    &request.faults,
                    &request.limits,
                ),
            },
            Partitioning::Partitioned => {
                // Each partition gets its own gauge over the same limits —
                // a shared fuel counter would make the trip point depend on
                // worker interleaving — while the cancel token inside the
                // clone stays shared, so one cancel stops every partition.
                let outs: Vec<RunOutput> = crate::par::par_map(&request.workloads, |wl| {
                    self.execute(
                        &RunRequest::new(&[*wl])
                            .with_options(request.options)
                            .with_faults(request.faults.clone())
                            .with_limits(request.limits.clone()),
                    )
                })
                .into_iter()
                .collect::<Result<_>>()?;
                let mut counters = Counters::new();
                let mut reports = Vec::with_capacity(outs.len());
                let mut degraded = None;
                let mut parts = request
                    .options
                    .timeline
                    .then(|| Vec::with_capacity(outs.len()));
                for out in outs {
                    counters.merge(&out.counters);
                    degraded = degraded.or(out.degraded);
                    reports.extend(out.reports);
                    if let Some(parts) = parts.as_mut() {
                        parts.push(out.timeline.unwrap_or_default());
                    }
                }
                Ok(RunOutput {
                    reports,
                    timeline: parts.map(components::merge_partition_timelines),
                    trace: None,
                    counters,
                    degraded,
                })
            }
        }
    }

    /// Simulates the workloads on one shared resource state, producing
    /// exactly the artifacts `opts` asks for. Thin wrapper over
    /// [`Engine::execute`] with a fault-free shared request.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::execute`].
    pub fn run_with(&self, workloads: &[WorkloadSpec<'_>], opts: &RunOptions) -> Result<RunOutput> {
        self.execute(&RunRequest::new(workloads).with_options(*opts))
    }

    /// Like [`Engine::run_with`], executing under a seeded fault plan: the
    /// drivers inject the plan's transients, link timeouts, stragglers,
    /// and permanent faults, and recover per the policy in
    /// [`crate::engine::faults`]. Thin wrapper over [`Engine::execute`]
    /// with the plan attached; see there for the whole-complement
    /// collapse semantics.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::execute`].
    pub fn run_with_faults(
        &self,
        workloads: &[WorkloadSpec<'_>],
        opts: &RunOptions,
        plan: &FaultPlan,
    ) -> Result<RunOutput> {
        self.execute(
            &RunRequest::new(workloads)
                .with_options(*opts)
                .with_faults(plan.clone()),
        )
    }

    /// The preset this configuration collapses to when `plan` takes out a
    /// whole compute complement before the run starts.
    fn collapse_target(&self, plan: &FaultPlan) -> Option<SystemPreset> {
        if plan.is_none() {
            return None;
        }
        let cfg = &self.planner.cfg;
        let ff_dead = cfg.ff_units > 0 && plan.initial_ff_quarantine() >= cfg.ff_units;
        let progr_dead = plan.progr_quarantined_initially();
        match cfg.mode {
            SystemMode::Hetero if ff_dead && progr_dead => Some(SystemPreset::CpuOnly),
            SystemMode::Hetero if ff_dead => Some(SystemPreset::ProgrOnly),
            SystemMode::FixedHost if ff_dead => Some(SystemPreset::CpuOnly),
            SystemMode::ProgrOnly if progr_dead => Some(SystemPreset::CpuOnly),
            _ => None,
        }
    }

    /// Builds the collapsed engine plus the residual fault plan: the
    /// collapse consumes the initial quarantines it absorbed, so a plan
    /// that *only* kills a complement at the start leaves a fault-free
    /// residual and the collapsed run is byte-identical to the target
    /// preset's native run.
    fn degraded_engine(&self, plan: &FaultPlan) -> Option<(Engine, &'static str, FaultPlan)> {
        let target = self.collapse_target(plan)?;
        let base = EngineConfig::preset(target);
        let collapsed = EngineConfig {
            name: base.name,
            mode: base.mode,
            recursive_kernels: base.recursive_kernels,
            operation_pipeline: base.operation_pipeline,
            ..self.planner.cfg.clone()
        };
        let mut eff = plan.clone();
        eff.permanents.retain(|p| {
            if p.at > Seconds::ZERO {
                return true;
            }
            match p.target {
                // No collapsed complement ever places on the pool again.
                FaultTarget::FixedUnits(_) => false,
                // Consumed only when the collapse removed the progr PIM.
                FaultTarget::ProgrPim => target != SystemPreset::CpuOnly,
            }
        });
        Some((Engine::new(collapsed), target.name(), eff))
    }

    /// Shared body of [`Engine::run_with`] / [`Engine::run_with_faults`]:
    /// assumes any whole-complement collapse already happened.
    fn run_inner(
        &self,
        workloads: &[WorkloadSpec<'_>],
        opts: &RunOptions,
        plan: &FaultPlan,
        limits: &RunLimits,
    ) -> Result<RunOutput> {
        let verify = cfg!(any(debug_assertions, feature = "verify"));
        let faults = (!plan.is_none()).then(|| FaultContext::new(plan, self.planner.cfg.ff_units));

        let mut null = NullTrace;
        #[cfg(feature = "trace")]
        let mut recorder = pim_common::trace::Recorder::new();
        #[cfg(feature = "trace")]
        let tracer: &mut dyn pim_common::trace::TraceSink =
            if opts.trace { &mut recorder } else { &mut null };
        #[cfg(not(feature = "trace"))]
        let tracer: &mut dyn pim_common::trace::TraceSink = &mut null;

        let prepared = self.prepare(workloads, &mut *tracer, opts.tie)?;
        let mut counters = Counters::new();

        let (report, entries) = if opts.timeline || verify {
            let mut sink = VecSink::default();
            let report = {
                let mut obs = Observer::new(
                    &mut sink,
                    &mut counters,
                    self.planner.cfg.ff_units,
                    &mut *tracer,
                    &self.planner.cfg.name,
                );
                let report = self.drive(&prepared, &mut obs, faults.as_ref(), opts.tie, limits)?;
                obs.finish();
                report
            };
            (report, Some(sink.into_entries()))
        } else {
            let mut sink = NullSink;
            let mut obs = Observer::new(
                &mut sink,
                &mut counters,
                self.planner.cfg.ff_units,
                &mut *tracer,
                &self.planner.cfg.name,
            );
            let report = self.drive(&prepared, &mut obs, faults.as_ref(), opts.tie, limits)?;
            obs.finish();
            (report, None)
        };

        if verify {
            let entries = entries.as_deref().unwrap_or(&[]);
            let mut diags =
                self.check_prepared(&prepared, entries, faults.as_ref().map(|f| &f.plan));
            diags.extend(crate::stats::cross_check_counters(&report, &counters));
            assert!(
                diags.is_clean(),
                "schedule verification failed for `{}`:\n{}",
                self.planner.cfg.name,
                diags.render_text()
            );
        }

        #[cfg(feature = "trace")]
        let trace = opts.trace.then(|| recorder.into_recording());
        #[cfg(not(feature = "trace"))]
        let trace = None;

        Ok(RunOutput {
            reports: vec![report],
            timeline: if opts.timeline { entries } else { None },
            trace,
            counters,
            degraded: None,
        })
    }

    /// Simulates the workloads and produces the report. Thin wrapper over
    /// [`Engine::execute`] with a default shared request.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::execute`].
    pub fn run(&self, workloads: &[WorkloadSpec<'_>]) -> Result<ExecutionReport> {
        Ok(self.execute(&RunRequest::new(workloads))?.into_report())
    }

    /// Dispatches prepared workloads to the configured execution driver.
    /// Fault-free runs take the unchanged hot paths; a fault context
    /// selects the fault-aware twins.
    fn drive(
        &self,
        prepared: &[Prepared<'_>],
        obs: &mut Observer<'_>,
        faults: Option<&FaultContext>,
        tie: TieBreak,
        limits: &RunLimits,
    ) -> Result<ExecutionReport> {
        // The serialized drivers execute one op at a time in topological
        // order — there is no tie surface to permute, so they ignore the
        // policy (candidate selection already saw it in `prepare`).
        match faults {
            None => {
                if self.planner.cfg.operation_pipeline {
                    events::run_scheduled(&self.planner, prepared, obs, tie, limits)
                } else {
                    events::run_serialized(&self.planner, prepared, obs, limits)
                }
            }
            Some(f) => {
                if self.planner.cfg.operation_pipeline {
                    events::run_scheduled_faulted(&self.planner, prepared, obs, f, tie, limits)
                } else {
                    events::run_serialized_faulted(&self.planner, prepared, obs, f, limits)
                }
            }
        }
    }

    /// Replays a recorded timeline against this configuration's devices
    /// and the workloads' dependency structure, reporting every legality
    /// violation as a `schedule`-pass diagnostic (see [`crate::verify`]).
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures while re-preparing the
    /// workloads; the timeline itself never errors — problems become
    /// diagnostics.
    pub fn verify_timeline(
        &self,
        workloads: &[WorkloadSpec<'_>],
        timeline: &[TimelineEntry],
    ) -> Result<Diagnostics> {
        self.verify_timeline_inner(workloads, timeline, &FaultPlan::none())
    }

    /// Like [`Engine::verify_timeline`] for a timeline recorded under a
    /// fault plan ([`Engine::run_with_faults`] with the same plan): the
    /// checker additionally validates attempt chains, backoff spacing,
    /// plan consistency, and capacity under quarantine. Applies the same
    /// whole-complement collapse as the run did.
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures while re-preparing the
    /// workloads; timeline problems become diagnostics.
    pub fn verify_timeline_faulted(
        &self,
        workloads: &[WorkloadSpec<'_>],
        timeline: &[TimelineEntry],
        plan: &FaultPlan,
    ) -> Result<Diagnostics> {
        match self.degraded_engine(plan) {
            Some((engine, _, eff)) => engine.verify_timeline_inner(workloads, timeline, &eff),
            None => self.verify_timeline_inner(workloads, timeline, plan),
        }
    }

    fn verify_timeline_inner(
        &self,
        workloads: &[WorkloadSpec<'_>],
        timeline: &[TimelineEntry],
        plan: &FaultPlan,
    ) -> Result<Diagnostics> {
        let prepared = self.prepare(workloads, &mut NullTrace, TieBreak::Stable)?;
        Ok(self.check_prepared(&prepared, timeline, (!plan.is_none()).then_some(plan)))
    }

    /// Builds the legality facts for prepared workloads and runs the
    /// schedule checker over a timeline.
    fn check_prepared(
        &self,
        prepared: &[Prepared<'_>],
        timeline: &[TimelineEntry],
        plan: Option<&FaultPlan>,
    ) -> Diagnostics {
        let facts: Vec<WorkloadFacts> = prepared
            .iter()
            .map(|wl| WorkloadFacts {
                deps: wl.deps.clone(),
                steps: wl.spec.steps,
                restricted: wl.spec.cpu_progr_only,
                costs: wl.costs.clone(),
                names: wl
                    .spec
                    .graph
                    .ops()
                    .iter()
                    .map(|op| op.kind.tf_name())
                    .collect(),
            })
            .collect();
        let cfg = &self.planner.cfg;
        let limits = ResourceLimits {
            cpu_slots: 1,
            progr_slots: events::PROGR_KERNEL_SLOTS,
            ff_units: cfg.ff_units,
            pipeline_depth: cfg.operation_pipeline.then_some(cfg.pipeline_depth),
        };
        let pool = FixedFunctionPool::new(self.planner.pool_cfg().clone());
        crate::verify::check_timeline_faulted(&facts, timeline, &limits, &pool, plan)
    }

    /// Like [`Engine::run`], additionally returning the per-instance
    /// execution timeline (start/end/resource of every scheduled op) for
    /// inspection and invariant checking. Thin wrapper over
    /// [`Engine::execute`] with `timeline: true`.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Engine::run`].
    pub fn run_detailed(
        &self,
        workloads: &[WorkloadSpec<'_>],
    ) -> Result<(ExecutionReport, Vec<TimelineEntry>)> {
        let opts = RunOptions {
            timeline: true,
            ..RunOptions::default()
        };
        let mut out = self.execute(&RunRequest::new(workloads).with_options(opts))?;
        let timeline = out
            .timeline
            .take()
            .ok_or_else(|| PimError::internal("requested timeline missing from run output"))?;
        Ok((out.into_report(), timeline))
    }

    /// Runs each workload as its own independent simulation, across
    /// threads when the `parallel` feature is enabled (the default).
    /// Results keep the input order. Thin wrapper over
    /// [`Engine::run_many_with`] with default options.
    ///
    /// # Errors
    ///
    /// Propagates the first failure among the runs, in input order.
    pub fn run_many(&self, workloads: &[WorkloadSpec<'_>]) -> Result<Vec<ExecutionReport>> {
        Ok(self
            .run_many_with(workloads, &RunOptions::default())?
            .reports)
    }

    /// Partitioned multi-workload execution: each workload is an
    /// independent partition with the whole machine to itself. Thin
    /// wrapper over [`Engine::execute`] with a
    /// [`Partitioning::Partitioned`] request; see there for the
    /// determinism guarantees of the merge.
    ///
    /// This is *not* [`Engine::run_with`] with several workloads — that
    /// call co-runs the workloads on one shared resource state (the
    /// Fig. 16 scenario) and stays a single partition.
    ///
    /// # Errors
    ///
    /// Propagates the first failure among the partitions, in input order.
    pub fn run_many_with(
        &self,
        workloads: &[WorkloadSpec<'_>],
        opts: &RunOptions,
    ) -> Result<RunOutput> {
        self.execute(&RunRequest::new(workloads).with_options(*opts).partitioned())
    }

    /// Replays a merged multi-partition timeline ([`Engine::run_many_with`]
    /// with `timeline: true`) against the workloads it was recorded from:
    /// the timeline is split back into per-partition streams by its
    /// workload tags and each partition is checked independently, since
    /// every partition had the whole machine to itself.
    ///
    /// # Errors
    ///
    /// Propagates cost/profiling failures while re-preparing the
    /// workloads; timeline problems become diagnostics.
    pub fn verify_many_timeline(
        &self,
        workloads: &[WorkloadSpec<'_>],
        timeline: &[TimelineEntry],
    ) -> Result<Diagnostics> {
        let parts = crate::verify::split_partitions(timeline, workloads.len());
        let mut diags = Diagnostics::new();
        for (wl, part) in workloads.iter().zip(parts) {
            diags.extend(self.verify_timeline(&[*wl], &part)?);
        }
        Ok(diags)
    }

    /// Previews the placement decision for every op of a graph under this
    /// configuration, with all resources free (no contention) — the
    /// explainability view of the scheduler (C-INTERMEDIATE: expose the
    /// intermediate results the simulation is built from).
    ///
    /// # Errors
    ///
    /// Propagates profiling/cost failures.
    pub fn plan_preview(&self, graph: &Graph) -> Result<Vec<PlanRow>> {
        let costs = graph_costs(graph)?;
        let profile = profile_step_cached_traced(graph, self.planner.cpu(), &mut NullTrace)?;
        let candidates =
            select_candidates_traced(&profile, self.planner.cfg.coverage, &mut NullTrace);
        let mut rows = Vec::with_capacity(graph.op_count());
        for node in graph.ops() {
            let cost = &costs[node.id.index()];
            let candidate = candidates.contains(node.id);
            let kind = self
                .planner
                .choose(
                    cost,
                    candidate,
                    false,
                    Availability::all_free(self.planner.cfg.ff_units),
                )
                .ok_or_else(|| PimError::internal("uncontended placement must exist"))?;
            let planned = self.planner.plan_cost(kind, cost);
            rows.push(PlanRow {
                op: node.id,
                name: node.kind.tf_name(),
                placement: describe(kind),
                candidate,
                seconds: planned.duration.seconds(),
            });
        }
        Ok(rows)
    }
}
