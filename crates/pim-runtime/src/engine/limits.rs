//! Cooperative cancellation and deterministic execution budgets.
//!
//! A [`RunRequest`](super::RunRequest) may carry [`RunLimits`]: an
//! event-count fuel budget (`max_events`), a simulated-time deadline
//! (`deadline`), and/or an asynchronous [`CancelToken`]. The drivers
//! thread the limits into a [`Gauge`] ticked once per retired event at
//! the component next-tick merge (and once per op instance in the
//! serialized drivers, which have no merge); a tripped gauge surfaces as
//! `PimError::BudgetExhausted` or `PimError::Cancelled` from
//! `Engine::execute`.
//!
//! Determinism: the fuel and deadline budgets are measured in *simulated*
//! quantities — retired events and simulated seconds — never wall clock,
//! so whether a bounded run completes or trips, and after how many
//! events, is a pure function of the request. Only the [`CancelToken`]
//! is asynchronous (it exists to interrupt a wedged run from another
//! thread), and it is checked on a coarse event mask so the fault-free
//! hot path stays within its <5% budget. Partitioned runs give each
//! partition an independent gauge over the same limits (a shared atomic
//! counter would make the trip point depend on worker interleaving);
//! the token is shared, so one cancel stops every partition.
//!
//! Completed runs are budget-independent: the gauge only ever *stops*
//! execution, it never reorders or re-times it, so a run that finishes
//! under its limits is byte-identical to the unbounded run (the
//! differential guard in the engine tests pins this).

use pim_common::units::Seconds;
use pim_common::{PimError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many events pass between checks of the (asynchronous) cancel
/// token. Budget checks are exact; only the token is coarse.
const CANCEL_CHECK_MASK: u64 = 63;

/// A shareable cancellation handle: clone it, hand one side to the run,
/// call [`CancelToken::cancel`] from anywhere to stop it at the next
/// check site.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every run holding a clone of this token
    /// stops at its next check site.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Execution bounds for one run. The default is unbounded — and
/// [`RunLimits::none`] requests are routed through gauges that compare
/// against `u64::MAX`/`+inf`, so the fault-free hot path pays only the
/// per-event increment.
#[derive(Debug, Clone, Default)]
pub struct RunLimits {
    /// Fuel: the maximum number of events the run may retire. For the
    /// event-driven drivers an event is one next-tick merge advance; for
    /// the serialized drivers, one op attempt.
    pub max_events: Option<u64>,
    /// Simulated-time horizon: the run stops once the simulation clock
    /// passes this point.
    pub deadline: Option<Seconds>,
    /// Asynchronous cancellation handle.
    pub cancel: Option<CancelToken>,
}

impl RunLimits {
    /// Unbounded (the default).
    pub fn none() -> Self {
        RunLimits::default()
    }

    /// Whether every bound is absent.
    pub fn is_none(&self) -> bool {
        self.max_events.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Returns the limits with an event-count fuel budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Returns the limits with a simulated-time deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the limits carrying (a clone of) a cancel token.
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Builds the per-run gauge the drivers tick.
    pub(crate) fn gauge(&self) -> Gauge {
        Gauge {
            events: 0,
            max_events: self.max_events.unwrap_or(u64::MAX),
            deadline: self.deadline.unwrap_or(Seconds::new(f64::INFINITY)),
            cancel: self.cancel.as_ref().map(|t| t.flag.clone()),
        }
    }
}

/// The per-run fuel/deadline/cancellation gauge. One per driver
/// invocation; never shared across partitions.
pub(crate) struct Gauge {
    events: u64,
    max_events: u64,
    deadline: Seconds,
    cancel: Option<Arc<AtomicBool>>,
}

impl Gauge {
    /// Accounts one retired event at simulated time `now` and trips when
    /// a bound is exceeded.
    ///
    /// # Errors
    ///
    /// `PimError::BudgetExhausted` when the fuel or deadline budget is
    /// exceeded, `PimError::Cancelled` when the token fired.
    #[inline]
    pub fn tick(&mut self, now: Seconds) -> Result<()> {
        self.events += 1;
        if self.events > self.max_events {
            return Err(PimError::BudgetExhausted {
                budget: "events",
                limit: self.max_events,
            });
        }
        if now > self.deadline {
            return Err(PimError::BudgetExhausted {
                budget: "deadline-us",
                limit: (self.deadline.seconds() * 1e6) as u64,
            });
        }
        if let Some(flag) = &self.cancel {
            if self.events & CANCEL_CHECK_MASK == 0 && flag.load(Ordering::Relaxed) {
                return Err(PimError::Cancelled {
                    after_events: self.events,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_gauge_never_trips() {
        let mut g = RunLimits::none().gauge();
        for _ in 0..10_000 {
            g.tick(Seconds::new(1e12)).unwrap();
        }
    }

    #[test]
    fn fuel_budget_trips_exactly_at_the_limit() {
        let mut g = RunLimits::none().with_max_events(3).gauge();
        for _ in 0..3 {
            g.tick(Seconds::ZERO).unwrap();
        }
        let err = g.tick(Seconds::ZERO).unwrap_err();
        assert_eq!(
            err,
            PimError::BudgetExhausted {
                budget: "events",
                limit: 3
            }
        );
    }

    #[test]
    fn deadline_trips_once_the_clock_passes_it() {
        let mut g = RunLimits::none().with_deadline(Seconds::new(1.0)).gauge();
        g.tick(Seconds::new(0.5)).unwrap();
        g.tick(Seconds::new(1.0)).unwrap();
        let err = g.tick(Seconds::new(1.5)).unwrap_err();
        assert!(matches!(
            err,
            PimError::BudgetExhausted {
                budget: "deadline-us",
                ..
            }
        ));
    }

    #[test]
    fn cancel_token_stops_at_the_next_masked_check() {
        let token = CancelToken::new();
        let mut g = RunLimits::none().with_cancel(&token).gauge();
        for _ in 0..100 {
            g.tick(Seconds::ZERO).unwrap();
        }
        token.cancel();
        let mut tripped = None;
        for _ in 0..=CANCEL_CHECK_MASK {
            if let Err(e) = g.tick(Seconds::ZERO) {
                tripped = Some(e);
                break;
            }
        }
        let Some(PimError::Cancelled { after_events }) = tripped else {
            panic!("cancel never observed within one mask period: {tripped:?}");
        };
        assert!(after_events > 100 && after_events <= 101 + CANCEL_CHECK_MASK);
        assert!(token.is_cancelled());
    }

    #[test]
    fn token_clones_share_one_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }
}
