//! The execution drivers, running over the component event core.
//!
//! Three drivers cover the whole evaluation:
//!
//! * [`run_serialized`] — one op at a time in topological order (the
//!   "without runtime scheduling" configurations),
//! * [`run_scheduled`] — the event-driven operation pipeline (§III-C),
//! * [`run_device_serial`] — a single [`Device`] executing the step stream
//!   back-to-back (the analytic GPU and Neurocube baselines in `pim-sim`).
//!
//! The event-driven drivers register their state — device lanes, the
//! link/sync model, the resource pool, the observer — as components in a
//! [`ComponentSlab`] and loop on `earliest()`/`advance()`; see the
//! [`components`](super::components) module docs for the determinism
//! argument. All drivers account time and energy through the same
//! [`Accumulator`] and build their result exclusively via
//! [`ReportBuilder`], and all emit per-op [`TimelineEntry`] records to a
//! pluggable [`TimelineSink`]. The engine drivers additionally observe
//! execution through an [`Observer`]: counters always, Chrome-trace spans
//! when the `trace` feature is on.

use super::components::{
    Accumulator, Clock, Comp, ComponentSlab, DeviceLanes, InFlight, ResourceSoA, Retired, SyncLink,
};
use super::faults::{
    backoff_after, decide, extend_timeout, lane_for, scale_planned, stretch_planned,
    AttemptOutcome, Fate, FaultContext,
};
use super::limits::RunLimits;
use super::observe::{Observer, OpRecord, ResourceClass, TimelineEntry, TimelineSink};
use super::placement::{
    resource_class, Availability, PlanKind, PlannedOp, Planner, PLACEMENT_DECISION,
};
use super::{Prepared, SystemMode};
use crate::fuzz::TieBreak;
use crate::stats::{ExecutionReport, ReportBuilder};
use crate::sync::STEP_BARRIER;
use pim_common::ids::OpId;
use pim_common::units::{Joules, Seconds};
use pim_common::{PimError, Result};
use pim_hw::device::Device;
use pim_hw::faults::FaultTarget;
use std::collections::BTreeSet;

/// Sequential execution: one op at a time in topological order per step —
/// the "without runtime scheduling" configurations.
pub(crate) fn run_serialized(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    limits: &RunLimits,
) -> Result<ExecutionReport> {
    let mut acc = Accumulator::default();
    let mut clock = Clock::new();
    let mut gauge = limits.gauge();
    for (w, wl) in prepared.iter().enumerate() {
        let ops = wl.spec.graph.ops();
        // With everything free, placement is availability-independent:
        // choose and plan once per op and reuse the plan across steps
        // (both are pure, so the replayed numbers are bit-identical).
        let plans: Vec<(PlanKind, PlannedOp, bool)> = wl
            .topo
            .iter()
            .map(|&op| {
                let cost = &wl.costs[op];
                let is_candidate = wl.candidates.contains(OpId::new(op));
                let kind = planner
                    .choose(
                        cost,
                        is_candidate,
                        wl.spec.cpu_progr_only,
                        Availability::all_free(planner.cfg.ff_units),
                    )
                    .ok_or_else(|| PimError::internal("serialized placement found no device"))?;
                Ok((kind, planner.plan_cost(kind, cost), is_candidate))
            })
            .collect::<Result<_>>()?;
        for step in 0..wl.spec.steps {
            for (i, &op) in wl.topo.iter().enumerate() {
                let cost = &wl.costs[op];
                let (kind, ref planned, is_candidate) = plans[i];
                acc.add(planned);
                let entry = TimelineEntry {
                    workload: w,
                    step,
                    op,
                    start: clock.now(),
                    end: clock.now() + planned.duration,
                    resource: resource_class(planned),
                    ff_units: planned.ff_units,
                    attempt: 0,
                    outcome: AttemptOutcome::Completed,
                };
                obs.record_op(&OpRecord {
                    entry,
                    planned,
                    kind,
                    cost,
                    name: ops[op].kind.tf_name(),
                    candidate: is_candidate,
                    inflight: 1,
                });
                if planned.ff_units > 0 {
                    obs.ff_delta(clock.now(), planned.ff_units as isize);
                }
                clock.advance(planned.duration);
                if planned.ff_units > 0 {
                    obs.ff_delta(clock.now(), -(planned.ff_units as isize));
                }
                obs.completed();
                // One "event" per op instance: this driver has no next-tick
                // merge, so the budget check rides the serial op loop.
                gauge.tick(clock.now())?;
                if planner.cfg.mode == SystemMode::Hetero {
                    clock.advance(PLACEMENT_DECISION);
                    acc.sync_raw += PLACEMENT_DECISION;
                    obs.decision(PLACEMENT_DECISION);
                }
            }
            clock.advance(STEP_BARRIER);
            acc.sync_raw += STEP_BARRIER;
            obs.barrier(clock.now(), STEP_BARRIER);
        }
    }
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, clock.now()))
}

/// Priority key of a ready instance: step first (pipeline order), then
/// critical-path rank, then workload/op for a total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    step: usize,
    rank: usize,
    wl: usize,
    op: usize,
}

/// Dependency/readiness bookkeeping shared by the scheduled drivers.
struct ReadySet {
    /// Per-instance remaining dependency counts.
    remaining: Vec<Vec<Vec<usize>>>,
    step_left: Vec<Vec<usize>>,
    min_incomplete: Vec<usize>,
    ready: BTreeSet<Key>,
    /// Per-(workload, step) census of the ready set, kept in lockstep with
    /// every insert/remove so the stall accounting can count
    /// window-closed instances without walking the whole set each wake.
    ready_counts: Vec<Vec<usize>>,
}

impl ReadySet {
    fn new(prepared: &[Prepared<'_>]) -> Self {
        let remaining: Vec<Vec<Vec<usize>>> = prepared
            .iter()
            .map(|wl| {
                (0..wl.spec.steps)
                    .map(|step| {
                        wl.deps
                            .iter()
                            .map(|d| d.len() + usize::from(step > 0))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let step_left: Vec<Vec<usize>> = prepared
            .iter()
            .map(|wl| vec![wl.topo.len(); wl.spec.steps])
            .collect();
        let min_incomplete: Vec<usize> = vec![0; prepared.len()];
        let mut ready: BTreeSet<Key> = BTreeSet::new();
        let mut ready_counts: Vec<Vec<usize>> = prepared
            .iter()
            .map(|wl| vec![0usize; wl.spec.steps])
            .collect();
        for (w, wl) in prepared.iter().enumerate() {
            for (op, deps) in wl.deps.iter().enumerate() {
                if deps.is_empty() && wl.spec.steps > 0 {
                    ready.insert(Key {
                        step: 0,
                        rank: wl.rank[op],
                        wl: w,
                        op,
                    });
                    ready_counts[w][0] += 1;
                }
            }
        }
        ReadySet {
            remaining,
            step_left,
            min_incomplete,
            ready,
            ready_counts,
        }
    }

    fn insert(&mut self, key: Key) {
        self.ready.insert(key);
        self.ready_counts[key.wl][key.step] += 1;
    }

    fn remove(&mut self, key: &Key) {
        self.ready.remove(key);
        self.ready_counts[key.wl][key.step] -= 1;
    }

    /// Releases the dependents of a completed instance and advances the
    /// per-workload pipeline-window bookkeeping.
    fn complete(&mut self, prepared: &[Prepared<'_>], w: usize, step: usize, op: usize) {
        let wl = &prepared[w];
        // Intra-step consumers.
        for &c in &wl.consumers[op] {
            let r = &mut self.remaining[w][step][c];
            *r -= 1;
            if *r == 0 {
                self.insert(Key {
                    step,
                    rank: wl.rank[c],
                    wl: w,
                    op: c,
                });
            }
        }
        // Cross-step successor: the same op in the next step.
        if step + 1 < wl.spec.steps {
            let r = &mut self.remaining[w][step + 1][op];
            *r -= 1;
            if *r == 0 {
                self.insert(Key {
                    step: step + 1,
                    rank: wl.rank[op],
                    wl: w,
                    op,
                });
            }
        }
        // Step-completion bookkeeping for the pipeline window.
        self.step_left[w][step] -= 1;
        while self.min_incomplete[w] < wl.spec.steps
            && self.step_left[w][self.min_incomplete[w]] == 0
        {
            self.min_incomplete[w] += 1;
        }
    }

    /// Ready instances outside every open pipeline window.
    fn window_closed(&self, pipeline_depth: usize) -> usize {
        self.ready_counts
            .iter()
            .enumerate()
            .map(|(w, counts)| {
                let thr = self.min_incomplete[w] + pipeline_depth;
                counts.iter().skip(thr).sum::<usize>()
            })
            .sum()
    }
}

/// Applies the tie-break policy to one dispatch scan.
///
/// [`TieBreak::Stable`] and [`TieBreak::Permuted`] are no-ops: the scan
/// keeps the ready set's `(step, rank, wl, op)` order. The scan order
/// is schedule-*significant*, not incidental — `rank` is the
/// critical-path rank, so two ready ops can share `(step, rank)` even
/// in a single workload, and whichever the scan reaches first wins the
/// contended device. The first full-surface fuzz confirmed this
/// empirically, so the order stays pinned and its determinism is
/// audited by stable-rerun comparison instead (see `crate::fuzz`).
/// [`TieBreak::Priority`] re-sorts the whole scan by seeded hash: the
/// per-key pipeline-window check and the Fig. 7 registers still gate
/// every placement, so any order is legal, but the schedule changes —
/// that freedom is the search space of [`crate::search`].
fn order_scan(tie: TieBreak, scan: &mut [Key]) {
    match tie {
        TieBreak::Stable | TieBreak::Permuted(_) => {}
        TieBreak::Priority(_) => scan.sort_by_key(|k| {
            tie.decision_hash(&[k.step as u64, k.rank as u64, k.wl as u64, k.op as u64])
        }),
    }
}

/// Event-driven execution with the operation pipeline.
pub(crate) fn run_scheduled(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    tie: TieBreak,
    limits: &RunLimits,
) -> Result<ExecutionReport> {
    let mut rs = ReadySet::new(prepared);
    let mut gauge = limits.gauge();

    let mut comps = ComponentSlab::new(tie);
    let resources = comps.register(Comp::Resources(ResourceSoA::new(planner)));
    let lanes = comps.register(Comp::Lanes(DeviceLanes::new()));
    let _sync = comps.register(Comp::Sync(SyncLink::new()));
    let watch = comps.register(Comp::Observer(obs));

    let mut clock = Clock::new();
    let mut acc = Accumulator::default();
    let total_instances: usize = prepared
        .iter()
        .map(|wl| wl.spec.steps * wl.topo.len())
        .sum();
    let mut completed = 0usize;
    let mut inflight = 0usize;
    // Scratch buffer for the per-wake scan over the ready set, reused
    // across iterations and pre-sized for the whole graph.
    let mut scan: Vec<Key> = Vec::with_capacity(prepared.iter().map(|wl| wl.topo.len()).sum());

    while completed < total_instances {
        // Schedule everything that fits right now. One pass in priority
        // order suffices: placing an op only consumes resources and never
        // unlocks readiness, and `choose` is monotone in availability, so
        // an op skipped earlier in the pass cannot become placeable later
        // in the same pass. Keys sort by step first, so nothing at or
        // beyond the widest-open pipeline window can pass the per-key
        // window check — the scan stops copying there.
        let max_window = prepared
            .iter()
            .enumerate()
            .map(|(w, _)| rs.min_incomplete[w] + planner.cfg.pipeline_depth)
            .max()
            .unwrap_or(0);
        scan.clear();
        scan.extend(rs.ready.iter().take_while(|k| k.step < max_window).copied());
        order_scan(tie, &mut scan);
        // Availability only changes on acquire within the pass; read it
        // once and refresh after each placement.
        let mut avail = comps.resources(resources).availability();
        for &key in &scan {
            if !avail.cpu_free && !avail.progr_free && avail.ff_free == 0 {
                break; // every resource saturated — nothing can be placed
            }
            let wl = &prepared[key.wl];
            if key.step >= rs.min_incomplete[key.wl] + planner.cfg.pipeline_depth {
                continue; // pipeline window closed for this step
            }
            let cost = &wl.costs[key.op];
            let is_candidate = wl.candidates.contains(OpId::new(key.op));
            let Some(kind) = planner.choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
            else {
                continue;
            };
            let planned = planner.plan_cost(kind, cost);
            let units = comps.resources_mut(resources).acquire(kind, &planned)?;
            avail = comps.resources(resources).availability();
            acc.add(&planned);
            rs.remove(&key);
            inflight += 1;
            let rec = InFlight {
                wl: key.wl,
                step: key.step,
                op: key.op,
                kind,
                charge: planned,
                units,
                attempt: 0,
                outcome: AttemptOutcome::Completed,
                start: clock.now(),
                inflight_at_dispatch: inflight,
                candidate: is_candidate,
                live: true,
            };
            // Record the end at the same femtosecond quantization the
            // event heap uses, so timeline intervals match the actual
            // resource hold times exactly.
            let seq = comps.next_seq();
            let end_fs = comps
                .lanes_mut(lanes)
                .dispatch(clock.now() + planned.duration, rec, seq);
            let entry = TimelineEntry {
                workload: key.wl,
                step: key.step,
                op: key.op,
                start: clock.now(),
                end: Clock::from_fs(end_fs),
                resource: resource_class(&planned),
                ff_units: units,
                attempt: 0,
                outcome: AttemptOutcome::Completed,
            };
            comps.observer(watch).record_op(&OpRecord {
                entry,
                planned: &planned,
                kind,
                cost,
                name: wl.spec.graph.ops()[key.op].kind.tf_name(),
                candidate: is_candidate,
                inflight,
            });
            if units > 0 {
                comps.observer(watch).ff_delta(clock.now(), units as isize);
            }
        }

        // Anything still ready is stalled: either the Fig. 7 registers
        // showed no free resources, or its step sits outside the pipeline
        // window.
        if !rs.ready.is_empty() {
            let window_closed = rs.window_closed(planner.cfg.pipeline_depth);
            let resource_waiting = rs.ready.len() - window_closed;
            if resource_waiting > 0 {
                let avail = comps.resources(resources).availability();
                comps
                    .observer(watch)
                    .stall(clock.now(), resource_waiting, window_closed, avail);
            }
        }

        let Some(next) = comps.earliest() else {
            if completed < total_instances {
                return Err(PimError::internal(format!(
                    "scheduler wedged with {completed} of {total_instances} instances done"
                )));
            }
            break;
        };
        let Some((t_fs, retired)) = comps.advance(next) else {
            unreachable!("earliest() only returns components with a pending tick")
        };
        clock.jump_to_fs(t_fs);
        // The budget check site: once per retired event at the component
        // next-tick merge. On the unbounded default this is a counter
        // increment plus two never-true compares.
        gauge.tick(clock.now())?;
        let Retired::Op(done) = retired else {
            return Err(PimError::internal(
                "zero-fault event core retired a non-op event",
            ));
        };
        comps.resources_mut(resources).release(
            done.units,
            done.charge.uses_cpu,
            done.charge.uses_progr,
        );
        completed += 1;
        inflight -= 1;
        comps.observer(watch).completed();
        if done.units > 0 {
            comps
                .observer(watch)
                .ff_delta(clock.now(), -(done.units as isize));
        }

        rs.complete(prepared, done.wl, done.step, done.op);
    }
    let barrier_total: Seconds = prepared
        .iter()
        .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
        .sum();
    // The CPU-side runtime makes one placement decision per op instance
    // (register queries through the Table III APIs); this serial work is
    // not hidden by the pipeline.
    let decisions: Seconds = if planner.cfg.mode == SystemMode::Hetero {
        PLACEMENT_DECISION * total_instances as f64
    } else {
        Seconds::ZERO
    };
    acc.sync_raw += barrier_total + decisions;
    let makespan = clock.now() + barrier_total + decisions;
    comps.observer(watch).barrier(makespan, barrier_total);
    comps.observer(watch).decision(decisions);
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, makespan))
}

/// Applies one permanent strike to the serialized driver's alive-state.
fn apply_strike_serial(
    target: FaultTarget,
    ff_alive: &mut usize,
    progr_alive: &mut bool,
    obs: &mut Observer<'_>,
    at: Seconds,
) {
    match target {
        FaultTarget::FixedUnits(n) => {
            let n = n.min(*ff_alive);
            *ff_alive -= n;
            obs.quarantine(at, "ff units", n);
        }
        FaultTarget::ProgrPim => {
            *progr_alive = false;
            obs.quarantine(at, "progr pim", 1);
        }
    }
}

/// Sequential execution under a fault plan: the same topological order as
/// [`run_serialized`], with per-attempt fault fates, bounded retry with
/// exponential backoff, timeout re-dispatch, and permanent strikes taking
/// effect at their scheduled times. Aborted attempts are charged for the
/// fraction of the work the device actually performed.
pub(crate) fn run_serialized_faulted(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    faults: &FaultContext,
    limits: &RunLimits,
) -> Result<ExecutionReport> {
    let mut acc = Accumulator::default();
    let mut clock = Clock::new();
    let mut gauge = limits.gauge();
    let mut ff_alive = planner.cfg.ff_units - faults.initial_ff;
    let mut progr_alive = !faults.initial_progr_dead;
    if faults.initial_ff > 0 {
        obs.quarantine(clock.now(), "ff units", faults.initial_ff);
    }
    if faults.initial_progr_dead {
        obs.quarantine(clock.now(), "progr pim", 1);
    }
    let mut next_strike = 0usize;
    for (w, wl) in prepared.iter().enumerate() {
        let ops = wl.spec.graph.ops();
        for step in 0..wl.spec.steps {
            for &op in &wl.topo {
                let cost = &wl.costs[op];
                let is_candidate = wl.candidates.contains(OpId::new(op));
                let mut attempt = 0u32;
                loop {
                    // Strikes due by now take effect before placement.
                    while let Some(s) = faults.strikes.get(next_strike).copied() {
                        if s.at > clock.now() {
                            break;
                        }
                        apply_strike_serial(s.target, &mut ff_alive, &mut progr_alive, obs, s.at);
                        next_strike += 1;
                    }
                    let avail = Availability {
                        cpu_free: true,
                        progr_free: progr_alive,
                        ff_free: ff_alive,
                        ff_alive,
                        progr_alive,
                    };
                    let kind = planner
                        .choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
                        .ok_or_else(|| {
                            PimError::internal("serialized placement found no device")
                        })?;
                    let mut charge = planner.plan_cost(kind, cost);
                    let lane = lane_for(charge.ff_units, charge.uses_progr);
                    if let Some(l) = lane {
                        let m = faults.plan.latency_multiplier(l, clock.now());
                        if m > 1.0 {
                            charge = stretch_planned(&charge, m);
                        }
                    }
                    let mut outcome = match decide(&faults.plan, lane, w, step, op, attempt) {
                        Fate::Complete => AttemptOutcome::Completed,
                        Fate::Transient(frac) => {
                            charge = scale_planned(&charge, frac);
                            AttemptOutcome::Transient
                        }
                        Fate::TimedOut => {
                            charge = extend_timeout(&charge);
                            AttemptOutcome::TimedOut
                        }
                    };
                    let start = clock.now();
                    let mut end = start + charge.duration;
                    // A strike landing inside the attempt kills it at the
                    // strike instant when it takes the resources under it.
                    while let Some(s) = faults.strikes.get(next_strike).copied() {
                        if s.at >= end {
                            break;
                        }
                        let idle = match s.target {
                            FaultTarget::FixedUnits(_) => ff_alive.saturating_sub(charge.ff_units),
                            FaultTarget::ProgrPim => 0,
                        };
                        let kills = FaultContext::strike_kills(
                            s.target,
                            charge.ff_units,
                            charge.uses_progr,
                            idle,
                        );
                        apply_strike_serial(s.target, &mut ff_alive, &mut progr_alive, obs, s.at);
                        next_strike += 1;
                        if kills {
                            let dur = charge.duration.seconds();
                            let frac = if dur > 0.0 {
                                ((s.at - start).seconds() / dur).clamp(0.0, 1.0)
                            } else {
                                0.0
                            };
                            charge = scale_planned(&charge, frac);
                            end = s.at.max(start);
                            outcome = AttemptOutcome::Killed;
                            obs.killed(s.at, w, step, op);
                            break;
                        }
                    }
                    acc.add(&charge);
                    let entry = TimelineEntry {
                        workload: w,
                        step,
                        op,
                        start,
                        end,
                        resource: resource_class(&charge),
                        ff_units: charge.ff_units,
                        attempt,
                        outcome,
                    };
                    obs.record_op(&OpRecord {
                        entry,
                        planned: &charge,
                        kind,
                        cost,
                        name: ops[op].kind.tf_name(),
                        candidate: is_candidate,
                        inflight: 1,
                    });
                    if charge.ff_units > 0 {
                        obs.ff_delta(start, charge.ff_units as isize);
                    }
                    clock.advance(end - start);
                    // One "event" per attempt (retries and re-dispatches
                    // count — fuel must bound a run that never completes).
                    gauge.tick(clock.now())?;
                    if charge.ff_units > 0 {
                        obs.ff_delta(clock.now(), -(charge.ff_units as isize));
                    }
                    if planner.cfg.mode == SystemMode::Hetero {
                        clock.advance(PLACEMENT_DECISION);
                        acc.sync_raw += PLACEMENT_DECISION;
                        obs.decision(PLACEMENT_DECISION);
                    }
                    match outcome {
                        AttemptOutcome::Completed => {
                            obs.completed();
                            break;
                        }
                        AttemptOutcome::Transient => {
                            obs.fault(end, "transient", w, step, op);
                            obs.retried();
                            let backoff = backoff_after(attempt);
                            clock.advance(backoff);
                            acc.sync_raw += backoff;
                        }
                        AttemptOutcome::TimedOut => {
                            obs.fault(end, "timed-out", w, step, op);
                            obs.redispatched();
                        }
                        AttemptOutcome::Killed => {
                            obs.retried();
                        }
                    }
                    attempt += 1;
                }
            }
            clock.advance(STEP_BARRIER);
            acc.sync_raw += STEP_BARRIER;
            obs.barrier(clock.now(), STEP_BARRIER);
        }
    }
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, clock.now()))
}

/// Event-driven execution under a fault plan. Structured like
/// [`run_scheduled`] — same ready set, pipeline window, and availability
/// snapshots — with three differences: an attempt's fate is decided at
/// dispatch, charging and recording are deferred to the attempt's end (so
/// kills bill only the work actually performed), and permanent strikes are
/// delivered by the link/sync component as events that kill the in-flight
/// attempts under them.
pub(crate) fn run_scheduled_faulted(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    faults: &FaultContext,
    tie: TieBreak,
    limits: &RunLimits,
) -> Result<ExecutionReport> {
    let mut rs = ReadySet::new(prepared);
    let mut gauge = limits.gauge();
    // Attempt counter per instance (indexed step * ops + op).
    let mut attempts: Vec<Vec<u32>> = prepared
        .iter()
        .map(|wl| vec![0u32; wl.spec.steps * wl.deps.len()])
        .collect();

    let mut comps = ComponentSlab::new(tie);
    let resources = comps.register(Comp::Resources(ResourceSoA::new(planner)));
    let lanes = comps.register(Comp::Lanes(DeviceLanes::new()));
    let sync = comps.register(Comp::Sync(SyncLink::new()));
    let watch = comps.register(Comp::Observer(obs));

    if faults.initial_ff > 0 {
        comps
            .resources_mut(resources)
            .quarantine_ff(faults.initial_ff)?;
        comps
            .observer(watch)
            .quarantine(Seconds::ZERO, "ff units", faults.initial_ff);
    }
    if faults.initial_progr_dead {
        comps.resources_mut(resources).quarantine_progr();
        comps
            .observer(watch)
            .quarantine(Seconds::ZERO, "progr pim", 1);
    }
    for (i, s) in faults.strikes.iter().enumerate() {
        let seq = comps.next_seq();
        comps.sync_mut(sync).schedule_strike(s.at, i, seq);
    }

    let mut clock = Clock::new();
    let mut acc = Accumulator::default();
    let total_instances: usize = prepared
        .iter()
        .map(|wl| wl.spec.steps * wl.topo.len())
        .sum();
    let mut completed = 0usize;
    let mut inflight = 0usize;
    let mut scan: Vec<Key> = Vec::with_capacity(prepared.iter().map(|wl| wl.topo.len()).sum());

    while completed < total_instances {
        let max_window = prepared
            .iter()
            .enumerate()
            .map(|(w, _)| rs.min_incomplete[w] + planner.cfg.pipeline_depth)
            .max()
            .unwrap_or(0);
        scan.clear();
        scan.extend(rs.ready.iter().take_while(|k| k.step < max_window).copied());
        order_scan(tie, &mut scan);
        let mut avail = comps.resources(resources).availability();
        for &key in &scan {
            if !avail.cpu_free && !avail.progr_free && avail.ff_free == 0 {
                break;
            }
            let wl = &prepared[key.wl];
            if key.step >= rs.min_incomplete[key.wl] + planner.cfg.pipeline_depth {
                continue;
            }
            let cost = &wl.costs[key.op];
            let is_candidate = wl.candidates.contains(OpId::new(key.op));
            let Some(kind) = planner.choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
            else {
                continue;
            };
            let mut charge = planner.plan_cost(kind, cost);
            let lane = lane_for(charge.ff_units, charge.uses_progr);
            if let Some(l) = lane {
                let m = faults.plan.latency_multiplier(l, clock.now());
                if m > 1.0 {
                    charge = stretch_planned(&charge, m);
                }
            }
            let attempt = attempts[key.wl][key.step * wl.deps.len() + key.op];
            let outcome = match decide(&faults.plan, lane, key.wl, key.step, key.op, attempt) {
                Fate::Complete => AttemptOutcome::Completed,
                Fate::Transient(frac) => {
                    charge = scale_planned(&charge, frac);
                    AttemptOutcome::Transient
                }
                Fate::TimedOut => {
                    charge = extend_timeout(&charge);
                    AttemptOutcome::TimedOut
                }
            };
            let units = comps.resources_mut(resources).acquire(kind, &charge)?;
            avail = comps.resources(resources).availability();
            rs.remove(&key);
            inflight += 1;
            let rec = InFlight {
                wl: key.wl,
                step: key.step,
                op: key.op,
                kind,
                charge,
                units,
                attempt,
                outcome,
                start: clock.now(),
                inflight_at_dispatch: inflight,
                candidate: is_candidate,
                live: true,
            };
            let seq = comps.next_seq();
            comps
                .lanes_mut(lanes)
                .dispatch(clock.now() + charge.duration, rec, seq);
            if units > 0 {
                comps.observer(watch).ff_delta(clock.now(), units as isize);
            }
        }

        if !rs.ready.is_empty() {
            let window_closed = rs.window_closed(planner.cfg.pipeline_depth);
            let resource_waiting = rs.ready.len() - window_closed;
            if resource_waiting > 0 {
                let avail = comps.resources(resources).availability();
                comps
                    .observer(watch)
                    .stall(clock.now(), resource_waiting, window_closed, avail);
            }
        }

        let Some(next) = comps.earliest() else {
            if completed < total_instances {
                return Err(PimError::internal(format!(
                    "faulted scheduler wedged with {completed} of {total_instances} \
                     instances done"
                )));
            }
            break;
        };
        let Some((t_fs, retired)) = comps.advance(next) else {
            unreachable!("earliest() only returns components with a pending tick")
        };
        clock.jump_to_fs(t_fs);
        // Same check site as `run_scheduled`: once per retired event at
        // the next-tick merge (retry wakes and strikes count as events,
        // so fuel bounds a run that keeps faulting forever).
        gauge.tick(clock.now())?;
        match retired {
            Retired::Stale => {} // killed by a strike; already accounted
            Retired::Op(rec) => {
                comps.resources_mut(resources).release(
                    rec.units,
                    rec.charge.uses_cpu,
                    rec.charge.uses_progr,
                );
                inflight -= 1;
                if rec.units > 0 {
                    comps
                        .observer(watch)
                        .ff_delta(clock.now(), -(rec.units as isize));
                }
                acc.add(&rec.charge);
                let wl = &prepared[rec.wl];
                let entry = TimelineEntry {
                    workload: rec.wl,
                    step: rec.step,
                    op: rec.op,
                    start: rec.start,
                    end: clock.now(),
                    resource: resource_class(&rec.charge),
                    ff_units: rec.units,
                    attempt: rec.attempt,
                    outcome: rec.outcome,
                };
                comps.observer(watch).record_op(&OpRecord {
                    entry,
                    planned: &rec.charge,
                    kind: rec.kind,
                    cost: &wl.costs[rec.op],
                    name: wl.spec.graph.ops()[rec.op].kind.tf_name(),
                    candidate: rec.candidate,
                    inflight: rec.inflight_at_dispatch,
                });
                match rec.outcome {
                    AttemptOutcome::Completed => {
                        completed += 1;
                        comps.observer(watch).completed();
                        rs.complete(prepared, rec.wl, rec.step, rec.op);
                    }
                    AttemptOutcome::Transient => {
                        comps.observer(watch).fault(
                            clock.now(),
                            "transient",
                            rec.wl,
                            rec.step,
                            rec.op,
                        );
                        comps.observer(watch).retried();
                        attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                        let seq = comps.next_seq();
                        comps.sync_mut(sync).schedule_retry(
                            clock.now() + backoff_after(rec.attempt),
                            rec.wl,
                            rec.step,
                            rec.op,
                            seq,
                        );
                    }
                    AttemptOutcome::TimedOut => {
                        comps.observer(watch).fault(
                            clock.now(),
                            "timed-out",
                            rec.wl,
                            rec.step,
                            rec.op,
                        );
                        comps.observer(watch).redispatched();
                        attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                        rs.insert(Key {
                            step: rec.step,
                            rank: wl.rank[rec.op],
                            wl: rec.wl,
                            op: rec.op,
                        });
                    }
                    AttemptOutcome::Killed => {
                        unreachable!("live in-flight records never carry Killed")
                    }
                }
            }
            Retired::Retry { wl, step, op } => {
                rs.insert(Key {
                    step,
                    rank: prepared[wl].rank[op],
                    wl,
                    op,
                });
            }
            Retired::Strike(i) => {
                let s = faults.strikes[i];
                let lost = match s.target {
                    FaultTarget::FixedUnits(n) => n.min(comps.resources(resources).alive_ff()),
                    FaultTarget::ProgrPim => 0,
                };
                // Kill the in-flight attempts the strike lands on, earliest
                // dispatch first, until the lost resources are idle.
                loop {
                    let need_kill = match s.target {
                        FaultTarget::FixedUnits(_) => comps.resources(resources).free_ff() < lost,
                        FaultTarget::ProgrPim => {
                            comps.lanes(lanes).any_live(|r| r.charge.uses_progr)
                        }
                    };
                    if !need_kill {
                        break;
                    }
                    let victim = comps.lanes(lanes).victim(|r| match s.target {
                        FaultTarget::FixedUnits(_) => r.units > 0,
                        FaultTarget::ProgrPim => r.charge.uses_progr,
                    });
                    let Some(v) = victim else { break };
                    let rec = comps.lanes(lanes).record(v);
                    comps.lanes_mut(lanes).kill(v);
                    comps.resources_mut(resources).release(
                        rec.units,
                        rec.charge.uses_cpu,
                        rec.charge.uses_progr,
                    );
                    inflight -= 1;
                    if rec.units > 0 {
                        comps
                            .observer(watch)
                            .ff_delta(clock.now(), -(rec.units as isize));
                    }
                    let dur = rec.charge.duration.seconds();
                    let frac = if dur > 0.0 {
                        ((clock.now() - rec.start).seconds() / dur).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let partial = scale_planned(&rec.charge, frac);
                    acc.add(&partial);
                    let wl = &prepared[rec.wl];
                    let entry = TimelineEntry {
                        workload: rec.wl,
                        step: rec.step,
                        op: rec.op,
                        start: rec.start,
                        end: clock.now(),
                        resource: resource_class(&rec.charge),
                        ff_units: rec.units,
                        attempt: rec.attempt,
                        outcome: AttemptOutcome::Killed,
                    };
                    comps.observer(watch).record_op(&OpRecord {
                        entry,
                        planned: &partial,
                        kind: rec.kind,
                        cost: &wl.costs[rec.op],
                        name: wl.spec.graph.ops()[rec.op].kind.tf_name(),
                        candidate: rec.candidate,
                        inflight: rec.inflight_at_dispatch,
                    });
                    comps
                        .observer(watch)
                        .killed(clock.now(), rec.wl, rec.step, rec.op);
                    comps.observer(watch).retried();
                    attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                    rs.insert(Key {
                        step: rec.step,
                        rank: wl.rank[rec.op],
                        wl: rec.wl,
                        op: rec.op,
                    });
                }
                match s.target {
                    FaultTarget::FixedUnits(_) => {
                        comps.resources_mut(resources).quarantine_ff(lost)?;
                        comps
                            .observer(watch)
                            .quarantine(clock.now(), "ff units", lost);
                    }
                    FaultTarget::ProgrPim => {
                        comps.resources_mut(resources).quarantine_progr();
                        comps
                            .observer(watch)
                            .quarantine(clock.now(), "progr pim", 1);
                    }
                }
            }
            Retired::Idle => {
                unreachable!("passive components never win the earliest-tick race")
            }
        }
    }
    let barrier_total: Seconds = prepared
        .iter()
        .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
        .sum();
    let decisions: Seconds = if planner.cfg.mode == SystemMode::Hetero {
        PLACEMENT_DECISION * total_instances as f64
    } else {
        Seconds::ZERO
    };
    acc.sync_raw += barrier_total + decisions;
    let makespan = clock.now() + barrier_total + decisions;
    comps.observer(watch).barrier(makespan, barrier_total);
    comps.observer(watch).decision(decisions);
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, makespan))
}

/// One standalone device executing a step stream back-to-back — the
/// analytic baselines (GPU, Neurocube) driven through the same event core
/// and report path as the engine configurations.
pub struct DeviceRun<'a> {
    /// Configuration name for the report.
    pub system: &'a str,
    /// The device executing every op.
    pub device: &'a dyn Device,
    /// Per-op cost profiles in execution order.
    pub costs: &'a [pim_tensor::cost::CostProfile],
    /// Training steps.
    pub steps: usize,
    /// Extra data-movement time appended to each step (e.g. the GPU's
    /// unhidden PCIe staging and working-set spill).
    pub step_epilogue_dm: Seconds,
    /// Extra energy charged per step (e.g. PCIe transfer energy).
    pub step_epilogue_energy: Joules,
}

/// Runs one device serially over `steps` repetitions of its op stream.
///
/// Per op: `op = compute time`, `dm = memory-bound excess`,
/// `sync = dispatch`, with the device's own estimate deciding each split;
/// the step epilogue is accounted as data movement. Host idle power is
/// always charged — a standalone accelerator leaves the host package
/// powered but out of the compute path.
pub fn run_device_serial(run: &DeviceRun<'_>, sink: &mut dyn TimelineSink) -> ExecutionReport {
    let mut clock = Clock::new();
    let mut op_raw = Seconds::ZERO;
    let mut dm_raw = Seconds::ZERO;
    let mut sync_raw = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    for step in 0..run.steps {
        for (op, cost) in run.costs.iter().enumerate() {
            debug_assert!(run.device.accepts(cost), "device rejects op {op}");
            let est = run.device.estimate(cost);
            let busy = est.compute_time.max(est.memory_time);
            let duration = busy + est.dispatch_time;
            op_raw += est.compute_time;
            dm_raw += busy - est.compute_time;
            sync_raw += est.dispatch_time;
            energy += est.energy;
            sink.record(TimelineEntry {
                workload: 0,
                step,
                op,
                start: clock.now(),
                end: clock.now() + duration,
                resource: ResourceClass::Baseline,
                ff_units: 0,
                attempt: 0,
                outcome: AttemptOutcome::Completed,
            });
            clock.advance(duration);
        }
        clock.advance(run.step_epilogue_dm);
        dm_raw += run.step_epilogue_dm;
        energy += run.step_epilogue_energy;
    }
    let makespan = clock.now();
    ReportBuilder::new(run.system, run.steps)
        .makespan(makespan)
        .raw_parts(op_raw, dm_raw, sync_raw)
        .device_energy(energy)
        .charge_host_idle()
        .device_busy(run.device.name(), makespan)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VecSink;
    use pim_common::units::Bytes;
    use pim_hw::cpu::CpuDevice;
    use pim_tensor::cost::{CostProfile, OffloadClass};

    #[test]
    fn device_serial_run_traces_and_balances() {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let costs = vec![
            CostProfile::compute(
                1e9,
                1e9,
                0.0,
                Bytes::new(1e7),
                Bytes::new(1e7),
                OffloadClass::FullyMulAdd,
                64,
            );
            3
        ];
        let run = DeviceRun {
            system: "test-baseline",
            device: &cpu,
            costs: &costs,
            steps: 2,
            step_epilogue_dm: Seconds::new(1e-3),
            step_epilogue_energy: Joules::new(0.5),
        };
        let mut sink = VecSink::default();
        let report = run_device_serial(&run, &mut sink);
        let timeline = sink.into_entries();
        assert_eq!(timeline.len(), 6);
        assert!(timeline
            .iter()
            .all(|e| e.resource == ResourceClass::Baseline));
        // Contiguous, non-overlapping execution within each step.
        for pair in timeline.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
        assert!(report.is_well_formed());
        // The per-step epilogue is billed as data movement.
        assert!(report.data_movement_time >= Seconds::new(2e-3));
        assert_eq!(report.device_busy[cpu.params().name], report.makespan);
    }
}
