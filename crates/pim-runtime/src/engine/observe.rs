//! Observability: timeline sinks, the counter registry hot path, and the
//! driver-facing [`Observer`].
//!
//! The observer is a *passive* [`Component`](super::components::Component)
//! of the event core: it has no pending events of its own
//! (`next_tick() == None`) and participates in a run purely through the
//! explicit `record_op`/`completed`/`stall`/... calls the drivers make as
//! they advance. It is registered in the same component slab as the
//! event-bearing components so one registry owns everything a driver
//! touches.

use super::faults::AttemptOutcome;
use super::placement::{Availability, PlanKind, PlannedOp};
use pim_common::trace::{Counters, Track};
use pim_common::units::Seconds;
use pim_mem::traffic::TrafficStats;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

#[cfg(feature = "trace")]
use super::components::Clock;
#[cfg(feature = "trace")]
use super::placement::describe;
#[cfg(feature = "trace")]
use crate::sync::kernel_calls;
#[cfg(feature = "trace")]
use pim_common::trace::TraceEvent;

/// Which exclusive resource class an op instance occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceClass {
    /// The host CPU slot.
    Cpu,
    /// A programmable-PIM kernel slot.
    Progr,
    /// Fixed-function units only.
    Fixed,
    /// CPU + fixed-function units (host-driven split).
    CpuAndFixed,
    /// Programmable PIM + fixed-function units (recursive kernel).
    ProgrAndFixed,
    /// A standalone baseline device (GPU, Neurocube) outside the
    /// heterogeneous stack.
    Baseline,
}

/// One scheduled op instance on the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelineEntry {
    /// Workload index.
    pub workload: usize,
    /// Training step.
    pub step: usize,
    /// Operation index within the graph.
    pub op: usize,
    /// Start time.
    pub start: Seconds,
    /// Completion time.
    pub end: Seconds,
    /// Resource class occupied.
    pub resource: ResourceClass,
    /// Fixed-function units held for the whole interval (0 for pure
    /// CPU/programmable placements and baseline devices).
    pub ff_units: usize,
    /// Which attempt of the instance this is (0 in fault-free runs).
    pub attempt: u32,
    /// How the attempt ended ([`AttemptOutcome::Completed`] in fault-free
    /// runs).
    pub outcome: AttemptOutcome,
}

/// Receives one [`TimelineEntry`] per executed op instance.
///
/// The drivers emit entries as they commit ops to the clock; a sink can
/// collect them ([`VecSink`]), stream them elsewhere, or drop them
/// ([`NullSink`]) when only the report matters. (Span-level tracing for
/// Chrome-trace export is a separate concern — see
/// [`pim_common::trace::TraceSink`].)
pub trait TimelineSink {
    /// Records one committed op instance.
    fn record(&mut self, entry: TimelineEntry);
}

/// Discards every entry — timeline collection disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TimelineSink for NullSink {
    fn record(&mut self, _entry: TimelineEntry) {}
}

/// Collects the full timeline in memory.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<TimelineEntry>,
}

impl TimelineSink for VecSink {
    fn record(&mut self, entry: TimelineEntry) {
        self.entries.push(entry);
    }
}

impl VecSink {
    /// The collected timeline, in commit order.
    pub fn into_entries(self) -> Vec<TimelineEntry> {
        self.entries
    }
}

// ---------------------------------------------------------------------------
// Observability: track layout, counters, and the driver-facing Observer.
// ---------------------------------------------------------------------------

/// The single trace process every engine run records under.
pub(crate) const TRACE_PID: u32 = 1;

/// Scheduler track: placement/selection instants, stalls, barriers.
pub(crate) const SCHED_TRACK: Track = Track::new(TRACE_PID, 1);

/// Fixed-function occupancy counter track.
#[cfg(feature = "trace")]
pub(crate) const FF_TRACK: Track = Track::new(TRACE_PID, 2);

/// First thread id of each resource class's span lanes; overlapping spans
/// of one class fan out to `base + lane`.
#[cfg(feature = "trace")]
fn class_base_tid(class: ResourceClass) -> u32 {
    match class {
        ResourceClass::Cpu => 1000,
        ResourceClass::Progr => 2000,
        ResourceClass::Fixed => 3000,
        ResourceClass::CpuAndFixed => 4000,
        ResourceClass::ProgrAndFixed => 5000,
        ResourceClass::Baseline => 6000,
    }
}

/// Stable display label of a resource class (also the counter-key suffix
/// under `ops/`).
#[cfg(feature = "trace")]
pub(crate) fn class_label(class: ResourceClass) -> &'static str {
    match class {
        ResourceClass::Cpu => "CPU",
        ResourceClass::Progr => "Progr PIM",
        ResourceClass::Fixed => "Fixed PIM",
        ResourceClass::CpuAndFixed => "CPU+Fixed",
        ResourceClass::ProgrAndFixed => "Progr+Fixed",
        ResourceClass::Baseline => "Baseline",
    }
}

/// Stable display label of an attempt outcome (trace span/instant args).
#[cfg(feature = "trace")]
fn outcome_label(outcome: AttemptOutcome) -> &'static str {
    match outcome {
        AttemptOutcome::Completed => "completed",
        AttemptOutcome::Transient => "transient",
        AttemptOutcome::TimedOut => "timed-out",
        AttemptOutcome::Killed => "killed",
    }
}

/// Dense index of a resource class (counter slots, lane tables).
fn class_index(class: ResourceClass) -> usize {
    match class {
        ResourceClass::Cpu => 0,
        ResourceClass::Progr => 1,
        ResourceClass::Fixed => 2,
        ResourceClass::CpuAndFixed => 3,
        ResourceClass::ProgrAndFixed => 4,
        ResourceClass::Baseline => 5,
    }
}

/// Interned `ops/<class>` counter keys — the hot path must not build a
/// fresh `String` per committed op.
const OPS_COUNTER_KEYS: [&str; 6] = [
    "ops/CPU",
    "ops/Progr PIM",
    "ops/Fixed PIM",
    "ops/CPU+Fixed",
    "ops/Progr+Fixed",
    "ops/Baseline",
];

/// Everything the [`Observer`] needs to know about one committed op.
pub(crate) struct OpRecord<'c> {
    pub entry: TimelineEntry,
    pub planned: &'c PlannedOp,
    pub kind: PlanKind,
    pub cost: &'c CostProfile,
    pub name: &'static str,
    pub candidate: bool,
    /// Op instances in flight at commit time (OP pipeline occupancy,
    /// including this one).
    pub inflight: usize,
}

/// Per-class greedy lane assignment for overlapping spans.
///
/// Spans arrive in non-decreasing start order (the drivers only move the
/// clock forward), so first-fit against lane end times is deterministic
/// and optimal enough for a readable timeline.
#[cfg(feature = "trace")]
#[derive(Default)]
struct Lanes {
    /// Quantized end time of the last span per lane, per resource class.
    ends: [Vec<u128>; 6],
}

#[cfg(feature = "trace")]
impl Lanes {
    fn class_index(class: ResourceClass) -> usize {
        match class {
            ResourceClass::Cpu => 0,
            ResourceClass::Progr => 1,
            ResourceClass::Fixed => 2,
            ResourceClass::CpuAndFixed => 3,
            ResourceClass::ProgrAndFixed => 4,
            ResourceClass::Baseline => 5,
        }
    }

    /// Assigns a lane for `[start, end]`; `true` when the lane is new.
    fn assign(&mut self, class: ResourceClass, start: Seconds, end: Seconds) -> (usize, bool) {
        let ends = &mut self.ends[Self::class_index(class)];
        let start_fs = Clock::to_fs(start);
        let end_fs = Clock::to_fs(end);
        for (lane, lane_end) in ends.iter_mut().enumerate() {
            if *lane_end <= start_fs {
                *lane_end = end_fs;
                return (lane, false);
            }
        }
        ends.push(end_fs);
        (ends.len() - 1, true)
    }
}

/// The drivers' window into the observability layer.
///
/// Always feeds the per-instance [`TimelineSink`], the [`Counters`]
/// registry, and the [`TrafficStats`] accumulator; with the `trace`
/// feature enabled it additionally emits Chrome-trace spans, instants, and
/// counter samples to a [`pim_common::trace::TraceSink`]. With the feature
/// off the trace half compiles away entirely.
pub(crate) struct Observer<'a> {
    timeline: &'a mut dyn TimelineSink,
    counters: &'a mut Counters,
    traffic: TrafficStats,
    ff_units_total: usize,
    ff_busy_units: usize,
    hot: HotCounters,
    #[cfg(feature = "trace")]
    tracer: &'a mut dyn pim_common::trace::TraceSink,
    #[cfg(feature = "trace")]
    lanes: Lanes,
}

/// Per-event counter updates accumulated in plain fields and flushed to the
/// [`Counters`] registry once in [`Observer::finish`], so the hot path does
/// no string formatting or map lookups. Sums are built by the same sequence
/// of f64 additions the registry would have performed, so the flushed
/// totals are bit-identical; a key is only materialized when it was touched,
/// matching the registry's insert-on-first-use behavior.
#[derive(Default)]
struct HotCounters {
    dispatched: u64,
    completed: u64,
    stalls: u64,
    ops: [u64; 6],
    busy_cpu: f64,
    busy_cpu_touched: bool,
    busy_progr: f64,
    busy_progr_touched: bool,
    busy_ff: f64,
    busy_ff_touched: bool,
    barrier_seconds: f64,
    barrier_touched: bool,
    decision_seconds: f64,
    decision_touched: bool,
    faults_injected: u64,
    retries: u64,
    redispatches: u64,
    quarantined_units: u64,
}

impl HotCounters {
    fn flush(&mut self, counters: &mut Counters) {
        if self.dispatched > 0 {
            counters.add("events/dispatched", self.dispatched as f64);
        }
        if self.completed > 0 {
            counters.add("events/completed", self.completed as f64);
        }
        if self.stalls > 0 {
            counters.add("events/stalls", self.stalls as f64);
        }
        for (i, &n) in self.ops.iter().enumerate() {
            if n > 0 {
                counters.add(OPS_COUNTER_KEYS[i], n as f64);
            }
        }
        if self.busy_cpu_touched {
            counters.add("busy_seconds/CPU", self.busy_cpu);
        }
        if self.busy_progr_touched {
            counters.add("busy_seconds/Progr PIM", self.busy_progr);
        }
        if self.busy_ff_touched {
            counters.add("busy_seconds/Fixed PIM", self.busy_ff);
        }
        if self.barrier_touched {
            counters.add("sync/barrier_seconds", self.barrier_seconds);
        }
        if self.decision_touched {
            counters.add("sync/decision_seconds", self.decision_seconds);
        }
        if self.faults_injected > 0 {
            counters.add("faults/injected", self.faults_injected as f64);
        }
        if self.retries > 0 {
            counters.add("faults/retries", self.retries as f64);
        }
        if self.redispatches > 0 {
            counters.add("faults/redispatches", self.redispatches as f64);
        }
        if self.quarantined_units > 0 {
            counters.add("faults/quarantined_units", self.quarantined_units as f64);
        }
        *self = HotCounters::default();
    }
}

impl<'a> Observer<'a> {
    /// Builds an observer over a timeline sink, a counters registry, and a
    /// span tracer; `system` labels the trace process.
    pub fn new(
        timeline: &'a mut dyn TimelineSink,
        counters: &'a mut Counters,
        ff_units_total: usize,
        tracer: &'a mut dyn pim_common::trace::TraceSink,
        system: &str,
    ) -> Self {
        #[cfg(not(feature = "trace"))]
        let _ = (tracer, system);
        #[cfg(feature = "trace")]
        if tracer.enabled() {
            tracer.record(TraceEvent::ProcessName {
                track: Track::new(TRACE_PID, 0),
                name: format!("hetero-pim engine: {system}"),
            });
            tracer.record(TraceEvent::ThreadName {
                track: SCHED_TRACK,
                name: "scheduler".to_string(),
            });
            tracer.record(TraceEvent::ThreadName {
                track: FF_TRACK,
                name: "ff-unit occupancy".to_string(),
            });
        }
        Observer {
            timeline,
            counters,
            traffic: TrafficStats::new(),
            ff_units_total,
            ff_busy_units: 0,
            hot: HotCounters::default(),
            #[cfg(feature = "trace")]
            tracer,
            #[cfg(feature = "trace")]
            lanes: Lanes::default(),
        }
    }

    /// Records one committed op instance: timeline entry, counters,
    /// traffic, and (feature-gated) a span on its resource-class lane.
    pub fn record_op(&mut self, rec: &OpRecord<'_>) {
        self.timeline.record(rec.entry);
        self.hot.dispatched += 1;
        let class = rec.entry.resource;
        self.hot.ops[class_index(class)] += 1;
        let planned = rec.planned;
        if planned.uses_cpu {
            self.hot.busy_cpu += planned.duration.seconds();
            self.hot.busy_cpu_touched = true;
        }
        if planned.uses_progr {
            self.hot.busy_progr += planned.duration.seconds();
            self.hot.busy_progr_touched = true;
        }
        if planned.ff_units > 0 {
            self.hot.busy_ff += planned.ff_units as f64 * planned.ff_busy.seconds()
                / self.ff_units_total.max(1) as f64;
            self.hot.busy_ff_touched = true;
        }
        self.traffic
            .record(rec.cost.bytes_read, rec.cost.bytes_written);
        #[cfg(not(feature = "trace"))]
        let _ = (rec.kind, rec.name, rec.candidate, rec.inflight);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            let (lane, fresh) = self.lanes.assign(class, rec.entry.start, rec.entry.end);
            let track = Track::new(TRACE_PID, class_base_tid(class) + lane as u32);
            if fresh {
                let label = class_label(class);
                self.tracer.record(TraceEvent::ThreadName {
                    track,
                    name: if lane == 0 {
                        label.to_string()
                    } else {
                        format!("{label} #{}", lane + 1)
                    },
                });
            }
            let mut args: pim_common::trace::Args = vec![
                ("wl", rec.entry.workload.into()),
                ("step", rec.entry.step.into()),
                ("op", rec.entry.op.into()),
                ("placement", describe(rec.kind).into()),
                ("candidate", rec.candidate.into()),
                ("inflight", rec.inflight.into()),
            ];
            if rec.entry.ff_units > 0 {
                args.push(("ff_units", rec.entry.ff_units.into()));
            }
            // Fault-free entries carry no attempt args, keeping zero-fault
            // traces byte-identical to their pre-fault-model goldens.
            if rec.entry.attempt > 0 || rec.entry.outcome != AttemptOutcome::Completed {
                args.push(("attempt", (rec.entry.attempt as usize).into()));
                args.push(("outcome", outcome_label(rec.entry.outcome).into()));
            }
            if matches!(
                rec.kind,
                PlanKind::FixedWhole {
                    rc_runtime: true,
                    ..
                } | PlanKind::Recursive { .. }
            ) {
                args.push(("rc_calls", kernel_calls(rec.cost.ma_flops()).into()));
            }
            self.tracer.record(TraceEvent::Span {
                track,
                name: rec.name.to_string(),
                cat: "op",
                start: rec.entry.start,
                end: rec.entry.end,
                args,
            });
        }
    }

    /// Records one completion event popped off the heap (or, in the
    /// serialized driver, an op retiring).
    pub fn completed(&mut self) {
        self.hot.completed += 1;
    }

    /// Applies a fixed-function occupancy change and samples the counter
    /// track.
    pub fn ff_delta(&mut self, now: Seconds, grant: isize) {
        self.ff_busy_units = (self.ff_busy_units as isize + grant).max(0) as usize;
        #[cfg(not(feature = "trace"))]
        let _ = now;
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Counter {
                track: FF_TRACK,
                name: "ff units busy",
                ts: now,
                value: self.ff_busy_units as f64,
            });
        }
    }

    /// Records a register-file stall: ready ops that could not be placed
    /// because the Fig. 7 registers showed no free resources
    /// (`window_closed` counts ops merely outside the OP pipeline window).
    pub fn stall(
        &mut self,
        now: Seconds,
        waiting: usize,
        window_closed: usize,
        avail: Availability,
    ) {
        self.hot.stalls += 1;
        #[cfg(not(feature = "trace"))]
        let _ = (now, waiting, window_closed, avail);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "stall".to_string(),
                cat: "sched",
                ts: now,
                args: vec![
                    ("waiting", waiting.into()),
                    ("window_closed", window_closed.into()),
                    ("cpu_free", avail.cpu_free.into()),
                    ("progr_free", avail.progr_free.into()),
                    ("ff_free", avail.ff_free.into()),
                ],
            });
        }
    }

    /// Records one end-of-step barrier at `now`.
    pub fn barrier(&mut self, now: Seconds, amount: Seconds) {
        self.hot.barrier_seconds += amount.seconds();
        self.hot.barrier_touched = true;
        #[cfg(not(feature = "trace"))]
        let _ = now;
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "step barrier".to_string(),
                cat: "sync",
                ts: now,
                args: vec![("seconds", amount.seconds().into())],
            });
        }
    }

    /// Accounts placement-decision time spent by the CPU-side runtime.
    pub fn decision(&mut self, amount: Seconds) {
        self.hot.decision_seconds += amount.seconds();
        self.hot.decision_touched = true;
    }

    /// Records one injected fault event (transient, timeout, or permanent
    /// strike) as a counter bump plus a scheduler-track trace instant.
    pub fn fault(&mut self, now: Seconds, what: &'static str, wl: usize, step: usize, op: usize) {
        self.hot.faults_injected += 1;
        #[cfg(not(feature = "trace"))]
        let _ = (now, what, wl, step, op);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: what.to_string(),
                cat: "fault",
                ts: now,
                args: vec![("wl", wl.into()), ("step", step.into()), ("op", op.into())],
            });
        }
    }

    /// Records a permanent fault quarantining `units` resource units
    /// (one injected fault event, `units` quarantined units).
    pub fn quarantine(&mut self, now: Seconds, what: &'static str, units: usize) {
        self.hot.faults_injected += 1;
        self.hot.quarantined_units += units as u64;
        #[cfg(not(feature = "trace"))]
        let _ = (now, what);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "quarantine".to_string(),
                cat: "fault",
                ts: now,
                args: vec![("what", what.into()), ("units", units.into())],
            });
        }
    }

    /// Records an in-flight op killed by a permanent strike (the strike
    /// itself was already counted by [`Observer::quarantine`]).
    #[allow(clippy::unused_self)] // self is read only with the trace feature on
    pub fn killed(&mut self, now: Seconds, wl: usize, step: usize, op: usize) {
        #[cfg(not(feature = "trace"))]
        let _ = (now, wl, step, op);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "killed".to_string(),
                cat: "fault",
                ts: now,
                args: vec![("wl", wl.into()), ("step", step.into()), ("op", op.into())],
            });
        }
    }

    /// Counts a retry scheduled after a transient fault or kill.
    pub fn retried(&mut self) {
        self.hot.retries += 1;
    }

    /// Counts a re-dispatch after a link timeout.
    pub fn redispatched(&mut self) {
        self.hot.redispatches += 1;
    }

    /// Flushes deferred accounting (hot counters, traffic totals) into the
    /// counters registry. Must be called once, after the driver returns.
    pub fn finish(&mut self) {
        self.hot.flush(self.counters);
        self.traffic.apply(self.counters);
    }
}
