//! Facade over the component-based discrete-event core.
//!
//! This module once held the whole event core in one file; it is now
//! split by concern and re-exported here so existing paths keep working:
//!
//! * [`components`](super::components) — the [`Component`] trait
//!   (`next_tick()`/`advance(to)`), the per-device lanes, the link/sync
//!   model, the flat SoA resource state, the component slab, the clock,
//!   and the event heap,
//! * [`observe`](super::observe) — timeline sinks and the driver-facing
//!   `Observer`,
//! * [`drivers`](super::drivers) — the execution drivers every
//!   configuration runs through.
//!
//! [`Component`]: super::components::Component

pub use super::components::PROGR_KERNEL_SLOTS;
pub use super::drivers::{run_device_serial, DeviceRun};
pub(crate) use super::drivers::{
    run_scheduled, run_scheduled_faulted, run_serialized, run_serialized_faulted,
};
pub use super::observe::{NullSink, ResourceClass, TimelineEntry, TimelineSink, VecSink};
pub(crate) use super::observe::{Observer, SCHED_TRACK};
