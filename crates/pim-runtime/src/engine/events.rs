//! The shared event core: clock, event heap, resource state, tracing, and
//! the execution drivers every configuration runs through.
//!
//! Three drivers cover the whole evaluation:
//!
//! * [`run_serialized`] — one op at a time in topological order (the
//!   "without runtime scheduling" configurations),
//! * [`run_scheduled`] — the event-driven operation pipeline (§III-C),
//! * [`run_device_serial`] — a single [`Device`] executing the step stream
//!   back-to-back (the analytic GPU and Neurocube baselines in `pim-sim`).
//!
//! All three account time and energy through the same [`Accumulator`] and
//! build their result exclusively via [`ReportBuilder`], and all three emit
//! per-op [`TimelineEntry`] records to a pluggable [`TimelineSink`]. The
//! engine drivers additionally observe execution through an [`Observer`]:
//! counters always, Chrome-trace spans when the `trace` feature is on.

use super::faults::{
    backoff_after, decide, extend_timeout, lane_for, scale_planned, stretch_planned,
    AttemptOutcome, Fate, FaultContext,
};
use super::placement::{
    resource_class, Availability, PlanKind, PlannedOp, Planner, PLACEMENT_DECISION,
};
use super::{Prepared, SystemMode};
use crate::stats::{ExecutionReport, ReportBuilder};
use crate::sync::STEP_BARRIER;
use pim_common::ids::{BankId, OpId};
use pim_common::trace::{Counters, Track};
use pim_common::units::{Joules, Seconds};
use pim_common::{PimError, Result};
use pim_hw::device::Device;
use pim_hw::faults::FaultTarget;
use pim_hw::fixed::FixedFunctionPool;
use pim_hw::registers::StatusRegisters;
use pim_mem::traffic::TrafficStats;
use pim_tensor::cost::CostProfile;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

#[cfg(feature = "trace")]
use super::placement::describe;
#[cfg(feature = "trace")]
use crate::sync::kernel_calls;
#[cfg(feature = "trace")]
use pim_common::trace::TraceEvent;

/// Which exclusive resource class an op instance occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceClass {
    /// The host CPU slot.
    Cpu,
    /// A programmable-PIM kernel slot.
    Progr,
    /// Fixed-function units only.
    Fixed,
    /// CPU + fixed-function units (host-driven split).
    CpuAndFixed,
    /// Programmable PIM + fixed-function units (recursive kernel).
    ProgrAndFixed,
    /// A standalone baseline device (GPU, Neurocube) outside the
    /// heterogeneous stack.
    Baseline,
}

/// One scheduled op instance on the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelineEntry {
    /// Workload index.
    pub workload: usize,
    /// Training step.
    pub step: usize,
    /// Operation index within the graph.
    pub op: usize,
    /// Start time.
    pub start: Seconds,
    /// Completion time.
    pub end: Seconds,
    /// Resource class occupied.
    pub resource: ResourceClass,
    /// Fixed-function units held for the whole interval (0 for pure
    /// CPU/programmable placements and baseline devices).
    pub ff_units: usize,
    /// Which attempt of the instance this is (0 in fault-free runs).
    pub attempt: u32,
    /// How the attempt ended ([`AttemptOutcome::Completed`] in fault-free
    /// runs).
    pub outcome: AttemptOutcome,
}

/// Receives one [`TimelineEntry`] per executed op instance.
///
/// The drivers emit entries as they commit ops to the clock; a sink can
/// collect them ([`VecSink`]), stream them elsewhere, or drop them
/// ([`NullSink`]) when only the report matters. (Span-level tracing for
/// Chrome-trace export is a separate concern — see
/// [`pim_common::trace::TraceSink`].)
pub trait TimelineSink {
    /// Records one committed op instance.
    fn record(&mut self, entry: TimelineEntry);
}

/// Discards every entry — timeline collection disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TimelineSink for NullSink {
    fn record(&mut self, _entry: TimelineEntry) {}
}

/// Collects the full timeline in memory.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<TimelineEntry>,
}

impl TimelineSink for VecSink {
    fn record(&mut self, entry: TimelineEntry) {
        self.entries.push(entry);
    }
}

impl VecSink {
    /// The collected timeline, in commit order.
    pub fn into_entries(self) -> Vec<TimelineEntry> {
        self.entries
    }
}

// ---------------------------------------------------------------------------
// Observability: track layout, counters, and the driver-facing Observer.
// ---------------------------------------------------------------------------

/// The single trace process every engine run records under.
pub(crate) const TRACE_PID: u32 = 1;

/// Scheduler track: placement/selection instants, stalls, barriers.
pub(crate) const SCHED_TRACK: Track = Track::new(TRACE_PID, 1);

/// Fixed-function occupancy counter track.
#[cfg(feature = "trace")]
pub(crate) const FF_TRACK: Track = Track::new(TRACE_PID, 2);

/// First thread id of each resource class's span lanes; overlapping spans
/// of one class fan out to `base + lane`.
#[cfg(feature = "trace")]
fn class_base_tid(class: ResourceClass) -> u32 {
    match class {
        ResourceClass::Cpu => 1000,
        ResourceClass::Progr => 2000,
        ResourceClass::Fixed => 3000,
        ResourceClass::CpuAndFixed => 4000,
        ResourceClass::ProgrAndFixed => 5000,
        ResourceClass::Baseline => 6000,
    }
}

/// Stable display label of a resource class (also the counter-key suffix
/// under `ops/`).
#[cfg(feature = "trace")]
pub(crate) fn class_label(class: ResourceClass) -> &'static str {
    match class {
        ResourceClass::Cpu => "CPU",
        ResourceClass::Progr => "Progr PIM",
        ResourceClass::Fixed => "Fixed PIM",
        ResourceClass::CpuAndFixed => "CPU+Fixed",
        ResourceClass::ProgrAndFixed => "Progr+Fixed",
        ResourceClass::Baseline => "Baseline",
    }
}

/// Stable display label of an attempt outcome (trace span/instant args).
#[cfg(feature = "trace")]
fn outcome_label(outcome: AttemptOutcome) -> &'static str {
    match outcome {
        AttemptOutcome::Completed => "completed",
        AttemptOutcome::Transient => "transient",
        AttemptOutcome::TimedOut => "timed-out",
        AttemptOutcome::Killed => "killed",
    }
}

/// Dense index of a resource class (counter slots, lane tables).
fn class_index(class: ResourceClass) -> usize {
    match class {
        ResourceClass::Cpu => 0,
        ResourceClass::Progr => 1,
        ResourceClass::Fixed => 2,
        ResourceClass::CpuAndFixed => 3,
        ResourceClass::ProgrAndFixed => 4,
        ResourceClass::Baseline => 5,
    }
}

/// Interned `ops/<class>` counter keys — the hot path must not build a
/// fresh `String` per committed op.
const OPS_COUNTER_KEYS: [&str; 6] = [
    "ops/CPU",
    "ops/Progr PIM",
    "ops/Fixed PIM",
    "ops/CPU+Fixed",
    "ops/Progr+Fixed",
    "ops/Baseline",
];

/// Everything the [`Observer`] needs to know about one committed op.
pub(crate) struct OpRecord<'c> {
    pub entry: TimelineEntry,
    pub planned: &'c PlannedOp,
    pub kind: PlanKind,
    pub cost: &'c CostProfile,
    pub name: &'static str,
    pub candidate: bool,
    /// Op instances in flight at commit time (OP pipeline occupancy,
    /// including this one).
    pub inflight: usize,
}

/// Per-class greedy lane assignment for overlapping spans.
///
/// Spans arrive in non-decreasing start order (the drivers only move the
/// clock forward), so first-fit against lane end times is deterministic
/// and optimal enough for a readable timeline.
#[cfg(feature = "trace")]
#[derive(Default)]
struct Lanes {
    /// Quantized end time of the last span per lane, per resource class.
    ends: [Vec<u128>; 6],
}

#[cfg(feature = "trace")]
impl Lanes {
    fn class_index(class: ResourceClass) -> usize {
        match class {
            ResourceClass::Cpu => 0,
            ResourceClass::Progr => 1,
            ResourceClass::Fixed => 2,
            ResourceClass::CpuAndFixed => 3,
            ResourceClass::ProgrAndFixed => 4,
            ResourceClass::Baseline => 5,
        }
    }

    /// Assigns a lane for `[start, end]`; `true` when the lane is new.
    fn assign(&mut self, class: ResourceClass, start: Seconds, end: Seconds) -> (usize, bool) {
        let ends = &mut self.ends[Self::class_index(class)];
        let start_fs = Clock::to_fs(start);
        let end_fs = Clock::to_fs(end);
        for (lane, lane_end) in ends.iter_mut().enumerate() {
            if *lane_end <= start_fs {
                *lane_end = end_fs;
                return (lane, false);
            }
        }
        ends.push(end_fs);
        (ends.len() - 1, true)
    }
}

/// The drivers' window into the observability layer.
///
/// Always feeds the per-instance [`TimelineSink`], the [`Counters`]
/// registry, and the [`TrafficStats`] accumulator; with the `trace`
/// feature enabled it additionally emits Chrome-trace spans, instants, and
/// counter samples to a [`pim_common::trace::TraceSink`]. With the feature
/// off the trace half compiles away entirely.
pub(crate) struct Observer<'a> {
    timeline: &'a mut dyn TimelineSink,
    counters: &'a mut Counters,
    traffic: TrafficStats,
    ff_units_total: usize,
    ff_busy_units: usize,
    hot: HotCounters,
    #[cfg(feature = "trace")]
    tracer: &'a mut dyn pim_common::trace::TraceSink,
    #[cfg(feature = "trace")]
    lanes: Lanes,
}

/// Per-event counter updates accumulated in plain fields and flushed to the
/// [`Counters`] registry once in [`Observer::finish`], so the hot path does
/// no string formatting or map lookups. Sums are built by the same sequence
/// of f64 additions the registry would have performed, so the flushed
/// totals are bit-identical; a key is only materialized when it was touched,
/// matching the registry's insert-on-first-use behavior.
#[derive(Default)]
struct HotCounters {
    dispatched: u64,
    completed: u64,
    stalls: u64,
    ops: [u64; 6],
    busy_cpu: f64,
    busy_cpu_touched: bool,
    busy_progr: f64,
    busy_progr_touched: bool,
    busy_ff: f64,
    busy_ff_touched: bool,
    barrier_seconds: f64,
    barrier_touched: bool,
    decision_seconds: f64,
    decision_touched: bool,
    faults_injected: u64,
    retries: u64,
    redispatches: u64,
    quarantined_units: u64,
}

impl HotCounters {
    fn flush(&mut self, counters: &mut Counters) {
        if self.dispatched > 0 {
            counters.add("events/dispatched", self.dispatched as f64);
        }
        if self.completed > 0 {
            counters.add("events/completed", self.completed as f64);
        }
        if self.stalls > 0 {
            counters.add("events/stalls", self.stalls as f64);
        }
        for (i, &n) in self.ops.iter().enumerate() {
            if n > 0 {
                counters.add(OPS_COUNTER_KEYS[i], n as f64);
            }
        }
        if self.busy_cpu_touched {
            counters.add("busy_seconds/CPU", self.busy_cpu);
        }
        if self.busy_progr_touched {
            counters.add("busy_seconds/Progr PIM", self.busy_progr);
        }
        if self.busy_ff_touched {
            counters.add("busy_seconds/Fixed PIM", self.busy_ff);
        }
        if self.barrier_touched {
            counters.add("sync/barrier_seconds", self.barrier_seconds);
        }
        if self.decision_touched {
            counters.add("sync/decision_seconds", self.decision_seconds);
        }
        if self.faults_injected > 0 {
            counters.add("faults/injected", self.faults_injected as f64);
        }
        if self.retries > 0 {
            counters.add("faults/retries", self.retries as f64);
        }
        if self.redispatches > 0 {
            counters.add("faults/redispatches", self.redispatches as f64);
        }
        if self.quarantined_units > 0 {
            counters.add("faults/quarantined_units", self.quarantined_units as f64);
        }
        *self = HotCounters::default();
    }
}

impl<'a> Observer<'a> {
    /// Builds an observer over a timeline sink, a counters registry, and a
    /// span tracer; `system` labels the trace process.
    pub fn new(
        timeline: &'a mut dyn TimelineSink,
        counters: &'a mut Counters,
        ff_units_total: usize,
        tracer: &'a mut dyn pim_common::trace::TraceSink,
        system: &str,
    ) -> Self {
        #[cfg(not(feature = "trace"))]
        let _ = (tracer, system);
        #[cfg(feature = "trace")]
        if tracer.enabled() {
            tracer.record(TraceEvent::ProcessName {
                track: Track::new(TRACE_PID, 0),
                name: format!("hetero-pim engine: {system}"),
            });
            tracer.record(TraceEvent::ThreadName {
                track: SCHED_TRACK,
                name: "scheduler".to_string(),
            });
            tracer.record(TraceEvent::ThreadName {
                track: FF_TRACK,
                name: "ff-unit occupancy".to_string(),
            });
        }
        Observer {
            timeline,
            counters,
            traffic: TrafficStats::new(),
            ff_units_total,
            ff_busy_units: 0,
            hot: HotCounters::default(),
            #[cfg(feature = "trace")]
            tracer,
            #[cfg(feature = "trace")]
            lanes: Lanes::default(),
        }
    }

    /// Records one committed op instance: timeline entry, counters,
    /// traffic, and (feature-gated) a span on its resource-class lane.
    pub fn record_op(&mut self, rec: &OpRecord<'_>) {
        self.timeline.record(rec.entry);
        self.hot.dispatched += 1;
        let class = rec.entry.resource;
        self.hot.ops[class_index(class)] += 1;
        let planned = rec.planned;
        if planned.uses_cpu {
            self.hot.busy_cpu += planned.duration.seconds();
            self.hot.busy_cpu_touched = true;
        }
        if planned.uses_progr {
            self.hot.busy_progr += planned.duration.seconds();
            self.hot.busy_progr_touched = true;
        }
        if planned.ff_units > 0 {
            self.hot.busy_ff += planned.ff_units as f64 * planned.ff_busy.seconds()
                / self.ff_units_total.max(1) as f64;
            self.hot.busy_ff_touched = true;
        }
        self.traffic
            .record(rec.cost.bytes_read, rec.cost.bytes_written);
        #[cfg(not(feature = "trace"))]
        let _ = (rec.kind, rec.name, rec.candidate, rec.inflight);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            let (lane, fresh) = self.lanes.assign(class, rec.entry.start, rec.entry.end);
            let track = Track::new(TRACE_PID, class_base_tid(class) + lane as u32);
            if fresh {
                let label = class_label(class);
                self.tracer.record(TraceEvent::ThreadName {
                    track,
                    name: if lane == 0 {
                        label.to_string()
                    } else {
                        format!("{label} #{}", lane + 1)
                    },
                });
            }
            let mut args: pim_common::trace::Args = vec![
                ("wl", rec.entry.workload.into()),
                ("step", rec.entry.step.into()),
                ("op", rec.entry.op.into()),
                ("placement", describe(rec.kind).into()),
                ("candidate", rec.candidate.into()),
                ("inflight", rec.inflight.into()),
            ];
            if rec.entry.ff_units > 0 {
                args.push(("ff_units", rec.entry.ff_units.into()));
            }
            // Fault-free entries carry no attempt args, keeping zero-fault
            // traces byte-identical to their pre-fault-model goldens.
            if rec.entry.attempt > 0 || rec.entry.outcome != AttemptOutcome::Completed {
                args.push(("attempt", (rec.entry.attempt as usize).into()));
                args.push(("outcome", outcome_label(rec.entry.outcome).into()));
            }
            if matches!(
                rec.kind,
                PlanKind::FixedWhole {
                    rc_runtime: true,
                    ..
                } | PlanKind::Recursive { .. }
            ) {
                args.push(("rc_calls", kernel_calls(rec.cost.ma_flops()).into()));
            }
            self.tracer.record(TraceEvent::Span {
                track,
                name: rec.name.to_string(),
                cat: "op",
                start: rec.entry.start,
                end: rec.entry.end,
                args,
            });
        }
    }

    /// Records one completion event popped off the heap (or, in the
    /// serialized driver, an op retiring).
    pub fn completed(&mut self) {
        self.hot.completed += 1;
    }

    /// Applies a fixed-function occupancy change and samples the counter
    /// track.
    pub fn ff_delta(&mut self, now: Seconds, grant: isize) {
        self.ff_busy_units = (self.ff_busy_units as isize + grant).max(0) as usize;
        #[cfg(not(feature = "trace"))]
        let _ = now;
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Counter {
                track: FF_TRACK,
                name: "ff units busy",
                ts: now,
                value: self.ff_busy_units as f64,
            });
        }
    }

    /// Records a register-file stall: ready ops that could not be placed
    /// because the Fig. 7 registers showed no free resources
    /// (`window_closed` counts ops merely outside the OP pipeline window).
    pub fn stall(
        &mut self,
        now: Seconds,
        waiting: usize,
        window_closed: usize,
        avail: Availability,
    ) {
        self.hot.stalls += 1;
        #[cfg(not(feature = "trace"))]
        let _ = (now, waiting, window_closed, avail);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "stall".to_string(),
                cat: "sched",
                ts: now,
                args: vec![
                    ("waiting", waiting.into()),
                    ("window_closed", window_closed.into()),
                    ("cpu_free", avail.cpu_free.into()),
                    ("progr_free", avail.progr_free.into()),
                    ("ff_free", avail.ff_free.into()),
                ],
            });
        }
    }

    /// Records one end-of-step barrier at `now`.
    pub fn barrier(&mut self, now: Seconds, amount: Seconds) {
        self.hot.barrier_seconds += amount.seconds();
        self.hot.barrier_touched = true;
        #[cfg(not(feature = "trace"))]
        let _ = now;
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "step barrier".to_string(),
                cat: "sync",
                ts: now,
                args: vec![("seconds", amount.seconds().into())],
            });
        }
    }

    /// Accounts placement-decision time spent by the CPU-side runtime.
    pub fn decision(&mut self, amount: Seconds) {
        self.hot.decision_seconds += amount.seconds();
        self.hot.decision_touched = true;
    }

    /// Records one injected fault event (transient, timeout, or permanent
    /// strike) as a counter bump plus a scheduler-track trace instant.
    pub fn fault(&mut self, now: Seconds, what: &'static str, wl: usize, step: usize, op: usize) {
        self.hot.faults_injected += 1;
        #[cfg(not(feature = "trace"))]
        let _ = (now, what, wl, step, op);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: what.to_string(),
                cat: "fault",
                ts: now,
                args: vec![("wl", wl.into()), ("step", step.into()), ("op", op.into())],
            });
        }
    }

    /// Records a permanent fault quarantining `units` resource units
    /// (one injected fault event, `units` quarantined units).
    pub fn quarantine(&mut self, now: Seconds, what: &'static str, units: usize) {
        self.hot.faults_injected += 1;
        self.hot.quarantined_units += units as u64;
        #[cfg(not(feature = "trace"))]
        let _ = (now, what);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "quarantine".to_string(),
                cat: "fault",
                ts: now,
                args: vec![("what", what.into()), ("units", units.into())],
            });
        }
    }

    /// Records an in-flight op killed by a permanent strike (the strike
    /// itself was already counted by [`Observer::quarantine`]).
    pub fn killed(&mut self, now: Seconds, wl: usize, step: usize, op: usize) {
        #[cfg(not(feature = "trace"))]
        let _ = (now, wl, step, op);
        #[cfg(feature = "trace")]
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::Instant {
                track: SCHED_TRACK,
                name: "killed".to_string(),
                cat: "fault",
                ts: now,
                args: vec![("wl", wl.into()), ("step", step.into()), ("op", op.into())],
            });
        }
    }

    /// Counts a retry scheduled after a transient fault or kill.
    pub fn retried(&mut self) {
        self.hot.retries += 1;
    }

    /// Counts a re-dispatch after a link timeout.
    pub fn redispatched(&mut self) {
        self.hot.redispatches += 1;
    }

    /// Flushes deferred accounting (hot counters, traffic totals) into the
    /// counters registry. Must be called once, after the driver returns.
    pub fn finish(&mut self) {
        self.hot.flush(self.counters);
        self.traffic.apply(self.counters);
    }
}

/// The simulation clock.
///
/// Event-driven execution quantizes completion times to integer
/// femtoseconds so heap ordering, timeline intervals, and resource hold
/// times agree exactly; sequential execution just accumulates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Clock {
    now: Seconds,
}

impl Clock {
    pub fn new() -> Self {
        Clock { now: Seconds::ZERO }
    }

    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advances by a duration (sequential drivers).
    pub fn advance(&mut self, d: Seconds) {
        self.now += d;
    }

    /// Jumps to a quantized event time (event-driven driver).
    pub fn jump_to_fs(&mut self, fs: u128) {
        self.now = Self::from_fs(fs);
    }

    pub fn to_fs(t: Seconds) -> u128 {
        (t.seconds() * 1e15) as u128
    }

    pub fn from_fs(fs: u128) -> Seconds {
        Seconds::new(fs as f64 / 1e15)
    }
}

/// Min-heap of completion events, FIFO-ordered among simultaneous ones.
///
/// Payload slots are recycled through a free list, so long runs keep the
/// payload store bounded by the peak number of in-flight events instead of
/// growing by one slot per push. Ordering is untouched: the heap key is
/// `(time, seq, slot)` and `seq` is unique, so the recycled slot index
/// never participates in a tie-break.
#[derive(Debug)]
pub(crate) struct EventHeap<T> {
    heap: BinaryHeap<Reverse<(u128, u64, usize)>>,
    payloads: Vec<T>,
    free: Vec<usize>,
    seq: u64,
}

impl<T: Copy> EventHeap<T> {
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(16),
            payloads: Vec::with_capacity(16),
            free: Vec::with_capacity(16),
            seq: 0,
        }
    }

    /// Schedules `payload` to complete at `end`; returns the quantized
    /// completion time so callers can mirror it (e.g. in the timeline).
    pub fn push(&mut self, end: Seconds, payload: T) -> u128 {
        let fs = Clock::to_fs(end);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.payloads[slot] = payload;
                slot
            }
            None => {
                self.payloads.push(payload);
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((fs, self.seq, idx)));
        self.seq += 1;
        fs
    }

    /// Pops the earliest completion.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        self.heap.pop().map(|Reverse((fs, _, idx))| {
            self.free.push(idx);
            (fs, self.payloads[idx])
        })
    }
}

/// Concurrent programmable-PIM kernels: the runtime dedicates a core pair
/// to each in-flight kernel.
pub const PROGR_KERNEL_SLOTS: usize = 2;

/// Exclusive-resource occupancy during event-driven execution, mirrored
/// into the Fig. 7 busy/idle register file the software scheduler queries.
#[derive(Debug)]
pub(crate) struct ResourceState {
    cpu_free: bool,
    progr_slots: usize,
    pool: FixedFunctionPool,
    registers: StatusRegisters,
    /// Busy-unit count currently reflected in the bank registers, so each
    /// mirror only rewrites the registers that changed since the last
    /// acquire/release instead of scanning all of them.
    mirrored_busy: usize,
    /// Units permanently lost to fail-stop faults. Quarantine holds them
    /// through a never-released pool grant, so the Fig. 7 registers show
    /// them busy without any special-casing.
    quarantined_ff: usize,
    /// The programmable PIM has not been permanently quarantined.
    progr_alive: bool,
}

impl ResourceState {
    pub fn new(planner: &Planner) -> Self {
        let pool = FixedFunctionPool::new(planner.pool_cfg().clone());
        let registers = StatusRegisters::new(pool.total_units());
        ResourceState {
            cpu_free: true,
            progr_slots: PROGR_KERNEL_SLOTS,
            pool,
            registers,
            mirrored_busy: 0,
            quarantined_ff: 0,
            progr_alive: true,
        }
    }

    /// Free resources right now, as the placement policy sees them — read
    /// from the Fig. 7 register file, exactly like the software scheduler
    /// does through the Table III query APIs.
    pub fn availability(&self) -> Availability {
        Availability {
            cpu_free: self.cpu_free,
            progr_free: !self.registers.progr_busy(),
            ff_free: self.registers.idle_bank_count(),
            ff_alive: self.pool.total_units() - self.quarantined_ff,
            progr_alive: self.progr_alive,
        }
    }

    /// Fixed-function units idle right now.
    pub fn free_ff(&self) -> usize {
        self.pool.free_units()
    }

    /// Units still alive (free or busy, but not quarantined).
    pub fn alive_ff(&self) -> usize {
        self.pool.total_units() - self.quarantined_ff
    }

    /// Permanently removes `units` idle fixed-function units. The grant is
    /// never released, so the Fig. 7 registers report them busy forever.
    ///
    /// # Errors
    ///
    /// Propagates a pool-grant failure (callers kill enough in-flight work
    /// first to make the units idle).
    pub fn quarantine_ff(&mut self, units: usize) -> Result<()> {
        if units == 0 {
            return Ok(());
        }
        self.pool.grant(units)?;
        self.quarantined_ff += units;
        self.mirror_registers();
        Ok(())
    }

    /// Permanently removes the programmable PIM (callers kill in-flight
    /// kernels first, so every slot is free here).
    pub fn quarantine_progr(&mut self) {
        self.progr_alive = false;
        self.progr_slots = 0;
        self.mirror_registers();
    }

    /// Reserves the resources a chosen placement needs; returns the
    /// fixed-function units held (0 for CPU/programmable placements).
    ///
    /// # Errors
    ///
    /// Propagates a pool-grant failure (a scheduler bug: [`Planner::choose`]
    /// only proposes grants that fit).
    pub fn acquire(&mut self, kind: PlanKind, planned: &PlannedOp) -> Result<usize> {
        let units = match kind {
            PlanKind::FixedWhole { units, .. }
            | PlanKind::HostSplit { units }
            | PlanKind::Recursive { units } => {
                self.pool.grant(units)?;
                units
            }
            _ => 0,
        };
        if planned.uses_cpu {
            self.cpu_free = false;
        }
        if planned.uses_progr {
            self.progr_slots -= 1;
        }
        self.mirror_registers();
        Ok(units)
    }

    /// Returns a completed op's resources.
    pub fn release(&mut self, units: usize, uses_cpu: bool, uses_progr: bool) {
        if units > 0 {
            self.pool.release(units);
        }
        if uses_cpu {
            self.cpu_free = true;
        }
        if uses_progr {
            self.progr_slots += 1;
        }
        self.mirror_registers();
    }

    /// Busy units fill bank registers from index 0 upward; the programmable
    /// PIM's single bit is busy when no kernel slot is free. Only the
    /// registers whose bit actually changed are rewritten.
    fn mirror_registers(&mut self) {
        let busy = self.pool.total_units() - self.pool.free_units();
        for i in self.mirrored_busy.min(busy)..self.mirrored_busy.max(busy) {
            let _ = self.registers.set_bank_busy(BankId::new(i), i < busy);
        }
        self.mirrored_busy = busy;
        self.registers.set_progr_busy(self.progr_slots == 0);
    }
}

/// Statistic accumulator shared by every execution driver.
#[derive(Debug, Default)]
pub(crate) struct Accumulator {
    op_raw: Seconds,
    dm_raw: Seconds,
    pub sync_raw: Seconds,
    energy: Joules,
    cpu_busy: Seconds,
    progr_busy: Seconds,
    ff_unit_seconds: f64,
}

impl Accumulator {
    pub fn add(&mut self, planned: &PlannedOp) {
        self.op_raw += planned.op_part;
        self.dm_raw += planned.dm_part;
        self.sync_raw += planned.sync_part;
        self.energy += planned.energy;
        if planned.uses_cpu {
            self.cpu_busy += planned.duration;
        }
        if planned.uses_progr {
            self.progr_busy += planned.duration;
        }
        self.ff_unit_seconds += planned.ff_units as f64 * planned.ff_busy.seconds();
    }

    pub fn into_report(
        self,
        planner: &Planner,
        steps: usize,
        makespan: Seconds,
    ) -> ExecutionReport {
        let cfg = &planner.cfg;
        let ff_utilization = if makespan.seconds() > 0.0 && cfg.mode != SystemMode::CpuOnly {
            (self.ff_unit_seconds / (cfg.ff_units as f64 * makespan.seconds())).min(1.0)
        } else {
            0.0
        };
        let mut builder = ReportBuilder::new(cfg.name.clone(), steps)
            .makespan(makespan)
            .raw_parts(self.op_raw, self.dm_raw, self.sync_raw)
            .device_energy(self.energy)
            .ff_utilization(ff_utilization)
            .device_busy("CPU", self.cpu_busy)
            .device_busy("Progr PIM", self.progr_busy)
            .device_busy(
                "Fixed PIM",
                Seconds::new(self.ff_unit_seconds / cfg.ff_units.max(1) as f64),
            );
        // PIM configurations keep the host package powered (it hosts the
        // TensorFlow runtime and the OpenCL host program) even while PIMs
        // compute; CPU-only runs already bill the CPU per op.
        if cfg.mode != SystemMode::CpuOnly {
            builder = builder.charge_host_idle();
        }
        builder.build()
    }
}

/// Sequential execution: one op at a time in topological order per step —
/// the "without runtime scheduling" configurations.
pub(crate) fn run_serialized(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
) -> Result<ExecutionReport> {
    let mut acc = Accumulator::default();
    let mut clock = Clock::new();
    for (w, wl) in prepared.iter().enumerate() {
        let ops = wl.spec.graph.ops();
        for step in 0..wl.spec.steps {
            for &op in &wl.topo {
                let cost = &wl.costs[op];
                let is_candidate = wl.candidates.contains(OpId::new(op));
                let kind = planner
                    .choose(
                        cost,
                        is_candidate,
                        wl.spec.cpu_progr_only,
                        Availability::all_free(planner.cfg.ff_units),
                    )
                    .ok_or_else(|| PimError::internal("serialized placement found no device"))?;
                let planned = planner.plan_cost(kind, cost);
                acc.add(&planned);
                let entry = TimelineEntry {
                    workload: w,
                    step,
                    op,
                    start: clock.now(),
                    end: clock.now() + planned.duration,
                    resource: resource_class(&planned),
                    ff_units: planned.ff_units,
                    attempt: 0,
                    outcome: AttemptOutcome::Completed,
                };
                obs.record_op(&OpRecord {
                    entry,
                    planned: &planned,
                    kind,
                    cost,
                    name: ops[op].kind.tf_name(),
                    candidate: is_candidate,
                    inflight: 1,
                });
                if planned.ff_units > 0 {
                    obs.ff_delta(clock.now(), planned.ff_units as isize);
                }
                clock.advance(planned.duration);
                if planned.ff_units > 0 {
                    obs.ff_delta(clock.now(), -(planned.ff_units as isize));
                }
                obs.completed();
                if planner.cfg.mode == SystemMode::Hetero {
                    clock.advance(PLACEMENT_DECISION);
                    acc.sync_raw += PLACEMENT_DECISION;
                    obs.decision(PLACEMENT_DECISION);
                }
            }
            clock.advance(STEP_BARRIER);
            acc.sync_raw += STEP_BARRIER;
            obs.barrier(clock.now(), STEP_BARRIER);
        }
    }
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, clock.now()))
}

/// Event-driven execution with the operation pipeline.
pub(crate) fn run_scheduled(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
) -> Result<ExecutionReport> {
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key {
        step: usize,
        rank: usize,
        wl: usize,
        op: usize,
    }
    // Per-instance remaining dependency counts.
    let mut remaining: Vec<Vec<Vec<usize>>> = prepared
        .iter()
        .map(|wl| {
            (0..wl.spec.steps)
                .map(|step| {
                    wl.deps
                        .iter()
                        .map(|d| d.len() + usize::from(step > 0))
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut step_left: Vec<Vec<usize>> = prepared
        .iter()
        .map(|wl| vec![wl.topo.len(); wl.spec.steps])
        .collect();
    let mut min_incomplete: Vec<usize> = vec![0; prepared.len()];

    let mut ready: BTreeSet<Key> = BTreeSet::new();
    // Per-(workload, step) census of the ready set, kept in lockstep with
    // every insert/remove so the stall accounting can count
    // window-closed instances without walking the whole set each wake.
    let mut ready_counts: Vec<Vec<usize>> = prepared
        .iter()
        .map(|wl| vec![0usize; wl.spec.steps])
        .collect();
    for (w, wl) in prepared.iter().enumerate() {
        for (op, deps) in wl.deps.iter().enumerate() {
            if deps.is_empty() && wl.spec.steps > 0 {
                ready.insert(Key {
                    step: 0,
                    rank: wl.rank[op],
                    wl: w,
                    op,
                });
                ready_counts[w][0] += 1;
            }
        }
    }

    let mut state = ResourceState::new(planner);

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Done {
        wl: usize,
        step: usize,
        op: usize,
        units: usize,
        uses_cpu: bool,
        uses_progr: bool,
    }
    let mut events: EventHeap<Done> = EventHeap::new();
    let mut clock = Clock::new();
    let mut acc = Accumulator::default();
    let total_instances: usize = prepared
        .iter()
        .map(|wl| wl.spec.steps * wl.topo.len())
        .sum();
    let mut completed = 0usize;
    let mut inflight = 0usize;
    // Scratch buffer for the per-wake scan over the ready set, reused
    // across iterations and pre-sized for the whole graph.
    let mut scan: Vec<Key> = Vec::with_capacity(prepared.iter().map(|wl| wl.topo.len()).sum());

    while completed < total_instances {
        // Schedule everything that fits right now. One pass in priority
        // order suffices: placing an op only consumes resources and never
        // unlocks readiness, and `choose` is monotone in availability, so
        // an op skipped earlier in the pass cannot become placeable later
        // in the same pass. Keys sort by step first, so nothing at or
        // beyond the widest-open pipeline window can pass the per-key
        // window check — the scan stops copying there.
        let max_window = prepared
            .iter()
            .enumerate()
            .map(|(w, _)| min_incomplete[w] + planner.cfg.pipeline_depth)
            .max()
            .unwrap_or(0);
        scan.clear();
        scan.extend(ready.iter().take_while(|k| k.step < max_window).copied());
        // Availability only changes on acquire within the pass; read it
        // once and refresh after each placement.
        let mut avail = state.availability();
        for &key in &scan {
            if !avail.cpu_free && !avail.progr_free && avail.ff_free == 0 {
                break; // every resource saturated — nothing can be placed
            }
            let wl = &prepared[key.wl];
            if key.step >= min_incomplete[key.wl] + planner.cfg.pipeline_depth {
                continue; // pipeline window closed for this step
            }
            let cost = &wl.costs[key.op];
            let is_candidate = wl.candidates.contains(OpId::new(key.op));
            let Some(kind) = planner.choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
            else {
                continue;
            };
            let planned = planner.plan_cost(kind, cost);
            let units = state.acquire(kind, &planned)?;
            avail = state.availability();
            acc.add(&planned);
            ready.remove(&key);
            ready_counts[key.wl][key.step] -= 1;
            inflight += 1;
            // Record the end at the same femtosecond quantization the
            // event heap uses, so timeline intervals match the actual
            // resource hold times exactly.
            let end_fs = events.push(
                clock.now() + planned.duration,
                Done {
                    wl: key.wl,
                    step: key.step,
                    op: key.op,
                    units,
                    uses_cpu: planned.uses_cpu,
                    uses_progr: planned.uses_progr,
                },
            );
            let entry = TimelineEntry {
                workload: key.wl,
                step: key.step,
                op: key.op,
                start: clock.now(),
                end: Clock::from_fs(end_fs),
                resource: resource_class(&planned),
                ff_units: units,
                attempt: 0,
                outcome: AttemptOutcome::Completed,
            };
            obs.record_op(&OpRecord {
                entry,
                planned: &planned,
                kind,
                cost,
                name: wl.spec.graph.ops()[key.op].kind.tf_name(),
                candidate: is_candidate,
                inflight,
            });
            if units > 0 {
                obs.ff_delta(clock.now(), units as isize);
            }
        }

        // Anything still ready is stalled: either the Fig. 7 registers
        // showed no free resources, or its step sits outside the pipeline
        // window.
        if !ready.is_empty() {
            let window_closed: usize = ready_counts
                .iter()
                .enumerate()
                .map(|(w, counts)| {
                    let thr = min_incomplete[w] + planner.cfg.pipeline_depth;
                    counts.iter().skip(thr).sum::<usize>()
                })
                .sum();
            let resource_waiting = ready.len() - window_closed;
            if resource_waiting > 0 {
                obs.stall(
                    clock.now(),
                    resource_waiting,
                    window_closed,
                    state.availability(),
                );
            }
        }

        let Some((t_fs, done)) = events.pop() else {
            if completed < total_instances {
                return Err(PimError::internal(format!(
                    "scheduler wedged with {completed} of {total_instances} instances done"
                )));
            }
            break;
        };
        clock.jump_to_fs(t_fs);
        state.release(done.units, done.uses_cpu, done.uses_progr);
        completed += 1;
        inflight -= 1;
        obs.completed();
        if done.units > 0 {
            obs.ff_delta(clock.now(), -(done.units as isize));
        }

        let wl = &prepared[done.wl];
        // Intra-step consumers.
        for &c in &wl.consumers[done.op] {
            let r = &mut remaining[done.wl][done.step][c];
            *r -= 1;
            if *r == 0 {
                ready.insert(Key {
                    step: done.step,
                    rank: wl.rank[c],
                    wl: done.wl,
                    op: c,
                });
                ready_counts[done.wl][done.step] += 1;
            }
        }
        // Cross-step successor: the same op in the next step.
        if done.step + 1 < wl.spec.steps {
            let r = &mut remaining[done.wl][done.step + 1][done.op];
            *r -= 1;
            if *r == 0 {
                ready.insert(Key {
                    step: done.step + 1,
                    rank: wl.rank[done.op],
                    wl: done.wl,
                    op: done.op,
                });
                ready_counts[done.wl][done.step + 1] += 1;
            }
        }
        // Step-completion bookkeeping for the pipeline window.
        step_left[done.wl][done.step] -= 1;
        while min_incomplete[done.wl] < wl.spec.steps
            && step_left[done.wl][min_incomplete[done.wl]] == 0
        {
            min_incomplete[done.wl] += 1;
        }
    }
    let barrier_total: Seconds = prepared
        .iter()
        .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
        .sum();
    // The CPU-side runtime makes one placement decision per op instance
    // (register queries through the Table III APIs); this serial work is
    // not hidden by the pipeline.
    let decisions: Seconds = if planner.cfg.mode == SystemMode::Hetero {
        PLACEMENT_DECISION * total_instances as f64
    } else {
        Seconds::ZERO
    };
    acc.sync_raw += barrier_total + decisions;
    let makespan = clock.now() + barrier_total + decisions;
    obs.barrier(makespan, barrier_total);
    obs.decision(decisions);
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, makespan))
}

/// Applies one permanent strike to the serialized driver's alive-state.
fn apply_strike_serial(
    target: FaultTarget,
    ff_alive: &mut usize,
    progr_alive: &mut bool,
    obs: &mut Observer<'_>,
    at: Seconds,
) {
    match target {
        FaultTarget::FixedUnits(n) => {
            let n = n.min(*ff_alive);
            *ff_alive -= n;
            obs.quarantine(at, "ff units", n);
        }
        FaultTarget::ProgrPim => {
            *progr_alive = false;
            obs.quarantine(at, "progr pim", 1);
        }
    }
}

/// Sequential execution under a fault plan: the same topological order as
/// [`run_serialized`], with per-attempt fault fates, bounded retry with
/// exponential backoff, timeout re-dispatch, and permanent strikes taking
/// effect at their scheduled times. Aborted attempts are charged for the
/// fraction of the work the device actually performed.
pub(crate) fn run_serialized_faulted(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    faults: &FaultContext,
) -> Result<ExecutionReport> {
    let mut acc = Accumulator::default();
    let mut clock = Clock::new();
    let mut ff_alive = planner.cfg.ff_units - faults.initial_ff;
    let mut progr_alive = !faults.initial_progr_dead;
    if faults.initial_ff > 0 {
        obs.quarantine(clock.now(), "ff units", faults.initial_ff);
    }
    if faults.initial_progr_dead {
        obs.quarantine(clock.now(), "progr pim", 1);
    }
    let mut next_strike = 0usize;
    for (w, wl) in prepared.iter().enumerate() {
        let ops = wl.spec.graph.ops();
        for step in 0..wl.spec.steps {
            for &op in &wl.topo {
                let cost = &wl.costs[op];
                let is_candidate = wl.candidates.contains(OpId::new(op));
                let mut attempt = 0u32;
                loop {
                    // Strikes due by now take effect before placement.
                    while let Some(s) = faults.strikes.get(next_strike).copied() {
                        if s.at > clock.now() {
                            break;
                        }
                        apply_strike_serial(s.target, &mut ff_alive, &mut progr_alive, obs, s.at);
                        next_strike += 1;
                    }
                    let avail = Availability {
                        cpu_free: true,
                        progr_free: progr_alive,
                        ff_free: ff_alive,
                        ff_alive,
                        progr_alive,
                    };
                    let kind = planner
                        .choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
                        .ok_or_else(|| {
                            PimError::internal("serialized placement found no device")
                        })?;
                    let mut charge = planner.plan_cost(kind, cost);
                    let lane = lane_for(charge.ff_units, charge.uses_progr);
                    if let Some(l) = lane {
                        let m = faults.plan.latency_multiplier(l, clock.now());
                        if m > 1.0 {
                            charge = stretch_planned(&charge, m);
                        }
                    }
                    let mut outcome = match decide(&faults.plan, lane, w, step, op, attempt) {
                        Fate::Complete => AttemptOutcome::Completed,
                        Fate::Transient(frac) => {
                            charge = scale_planned(&charge, frac);
                            AttemptOutcome::Transient
                        }
                        Fate::TimedOut => {
                            charge = extend_timeout(&charge);
                            AttemptOutcome::TimedOut
                        }
                    };
                    let start = clock.now();
                    let mut end = start + charge.duration;
                    // A strike landing inside the attempt kills it at the
                    // strike instant when it takes the resources under it.
                    while let Some(s) = faults.strikes.get(next_strike).copied() {
                        if s.at >= end {
                            break;
                        }
                        let idle = match s.target {
                            FaultTarget::FixedUnits(_) => ff_alive.saturating_sub(charge.ff_units),
                            FaultTarget::ProgrPim => 0,
                        };
                        let kills = FaultContext::strike_kills(
                            s.target,
                            charge.ff_units,
                            charge.uses_progr,
                            idle,
                        );
                        apply_strike_serial(s.target, &mut ff_alive, &mut progr_alive, obs, s.at);
                        next_strike += 1;
                        if kills {
                            let dur = charge.duration.seconds();
                            let frac = if dur > 0.0 {
                                ((s.at - start).seconds() / dur).clamp(0.0, 1.0)
                            } else {
                                0.0
                            };
                            charge = scale_planned(&charge, frac);
                            end = s.at.max(start);
                            outcome = AttemptOutcome::Killed;
                            obs.killed(s.at, w, step, op);
                            break;
                        }
                    }
                    acc.add(&charge);
                    let entry = TimelineEntry {
                        workload: w,
                        step,
                        op,
                        start,
                        end,
                        resource: resource_class(&charge),
                        ff_units: charge.ff_units,
                        attempt,
                        outcome,
                    };
                    obs.record_op(&OpRecord {
                        entry,
                        planned: &charge,
                        kind,
                        cost,
                        name: ops[op].kind.tf_name(),
                        candidate: is_candidate,
                        inflight: 1,
                    });
                    if charge.ff_units > 0 {
                        obs.ff_delta(start, charge.ff_units as isize);
                    }
                    clock.advance(end - start);
                    if charge.ff_units > 0 {
                        obs.ff_delta(clock.now(), -(charge.ff_units as isize));
                    }
                    if planner.cfg.mode == SystemMode::Hetero {
                        clock.advance(PLACEMENT_DECISION);
                        acc.sync_raw += PLACEMENT_DECISION;
                        obs.decision(PLACEMENT_DECISION);
                    }
                    match outcome {
                        AttemptOutcome::Completed => {
                            obs.completed();
                            break;
                        }
                        AttemptOutcome::Transient => {
                            obs.fault(end, "transient", w, step, op);
                            obs.retried();
                            let backoff = backoff_after(attempt);
                            clock.advance(backoff);
                            acc.sync_raw += backoff;
                        }
                        AttemptOutcome::TimedOut => {
                            obs.fault(end, "timed-out", w, step, op);
                            obs.redispatched();
                        }
                        AttemptOutcome::Killed => {
                            obs.retried();
                        }
                    }
                    attempt += 1;
                }
            }
            clock.advance(STEP_BARRIER);
            acc.sync_raw += STEP_BARRIER;
            obs.barrier(clock.now(), STEP_BARRIER);
        }
    }
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, clock.now()))
}

/// Event-driven execution under a fault plan. Structured like
/// [`run_scheduled`] — same ready set, pipeline window, and availability
/// snapshots — with three differences: an attempt's fate is decided at
/// dispatch, charging and recording are deferred to the attempt's end (so
/// kills bill only the work actually performed), and permanent strikes are
/// delivered as heap events that kill the in-flight attempts under them.
pub(crate) fn run_scheduled_faulted(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    obs: &mut Observer<'_>,
    faults: &FaultContext,
) -> Result<ExecutionReport> {
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key {
        step: usize,
        rank: usize,
        wl: usize,
        op: usize,
    }
    let mut remaining: Vec<Vec<Vec<usize>>> = prepared
        .iter()
        .map(|wl| {
            (0..wl.spec.steps)
                .map(|step| {
                    wl.deps
                        .iter()
                        .map(|d| d.len() + usize::from(step > 0))
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut step_left: Vec<Vec<usize>> = prepared
        .iter()
        .map(|wl| vec![wl.topo.len(); wl.spec.steps])
        .collect();
    let mut min_incomplete: Vec<usize> = vec![0; prepared.len()];

    let mut ready: BTreeSet<Key> = BTreeSet::new();
    let mut ready_counts: Vec<Vec<usize>> = prepared
        .iter()
        .map(|wl| vec![0usize; wl.spec.steps])
        .collect();
    for (w, wl) in prepared.iter().enumerate() {
        for (op, deps) in wl.deps.iter().enumerate() {
            if deps.is_empty() && wl.spec.steps > 0 {
                ready.insert(Key {
                    step: 0,
                    rank: wl.rank[op],
                    wl: w,
                    op,
                });
                ready_counts[w][0] += 1;
            }
        }
    }
    // Attempt counter per instance (indexed step * ops + op).
    let mut attempts: Vec<Vec<u32>> = prepared
        .iter()
        .map(|wl| vec![0u32; wl.spec.steps * wl.deps.len()])
        .collect();

    let mut state = ResourceState::new(planner);
    if faults.initial_ff > 0 {
        state.quarantine_ff(faults.initial_ff)?;
        obs.quarantine(Seconds::ZERO, "ff units", faults.initial_ff);
    }
    if faults.initial_progr_dead {
        state.quarantine_progr();
        obs.quarantine(Seconds::ZERO, "progr pim", 1);
    }

    /// One dispatched attempt occupying resources until its heap event.
    #[derive(Debug, Clone, Copy)]
    struct InFlight {
        wl: usize,
        step: usize,
        op: usize,
        kind: PlanKind,
        /// Fate-adjusted planned op (the charge if the attempt runs to its
        /// scheduled end).
        charge: PlannedOp,
        units: usize,
        attempt: u32,
        outcome: AttemptOutcome,
        start: Seconds,
        inflight_at_dispatch: usize,
        candidate: bool,
        /// Cleared when a strike kills the attempt before its event pops.
        live: bool,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        /// The in-flight attempt in this slab slot reaches its end.
        Attempt(usize),
        /// A retry's backoff expires; the instance becomes ready again.
        Retry { wl: usize, step: usize, op: usize },
        /// Permanent strike `i` of the fault context lands.
        Strike(usize),
    }

    let mut events: EventHeap<Ev> = EventHeap::new();
    for (i, s) in faults.strikes.iter().enumerate() {
        events.push(s.at, Ev::Strike(i));
    }
    let mut slab: Vec<InFlight> = Vec::new();
    // Slots whose heap event has popped; a killed slot is recycled only
    // when its stale event drains, so a pending event never aliases a
    // reused slot.
    let mut free_slots: Vec<usize> = Vec::new();

    let mut clock = Clock::new();
    let mut acc = Accumulator::default();
    let total_instances: usize = prepared
        .iter()
        .map(|wl| wl.spec.steps * wl.topo.len())
        .sum();
    let mut completed = 0usize;
    let mut inflight = 0usize;
    let mut scan: Vec<Key> = Vec::with_capacity(prepared.iter().map(|wl| wl.topo.len()).sum());

    while completed < total_instances {
        let max_window = prepared
            .iter()
            .enumerate()
            .map(|(w, _)| min_incomplete[w] + planner.cfg.pipeline_depth)
            .max()
            .unwrap_or(0);
        scan.clear();
        scan.extend(ready.iter().take_while(|k| k.step < max_window).copied());
        let mut avail = state.availability();
        for &key in &scan {
            if !avail.cpu_free && !avail.progr_free && avail.ff_free == 0 {
                break;
            }
            let wl = &prepared[key.wl];
            if key.step >= min_incomplete[key.wl] + planner.cfg.pipeline_depth {
                continue;
            }
            let cost = &wl.costs[key.op];
            let is_candidate = wl.candidates.contains(OpId::new(key.op));
            let Some(kind) = planner.choose(cost, is_candidate, wl.spec.cpu_progr_only, avail)
            else {
                continue;
            };
            let mut charge = planner.plan_cost(kind, cost);
            let lane = lane_for(charge.ff_units, charge.uses_progr);
            if let Some(l) = lane {
                let m = faults.plan.latency_multiplier(l, clock.now());
                if m > 1.0 {
                    charge = stretch_planned(&charge, m);
                }
            }
            let attempt = attempts[key.wl][key.step * wl.deps.len() + key.op];
            let outcome = match decide(&faults.plan, lane, key.wl, key.step, key.op, attempt) {
                Fate::Complete => AttemptOutcome::Completed,
                Fate::Transient(frac) => {
                    charge = scale_planned(&charge, frac);
                    AttemptOutcome::Transient
                }
                Fate::TimedOut => {
                    charge = extend_timeout(&charge);
                    AttemptOutcome::TimedOut
                }
            };
            let units = state.acquire(kind, &charge)?;
            avail = state.availability();
            ready.remove(&key);
            ready_counts[key.wl][key.step] -= 1;
            inflight += 1;
            let rec = InFlight {
                wl: key.wl,
                step: key.step,
                op: key.op,
                kind,
                charge,
                units,
                attempt,
                outcome,
                start: clock.now(),
                inflight_at_dispatch: inflight,
                candidate: is_candidate,
                live: true,
            };
            let slot = match free_slots.pop() {
                Some(s) => {
                    slab[s] = rec;
                    s
                }
                None => {
                    slab.push(rec);
                    slab.len() - 1
                }
            };
            events.push(clock.now() + charge.duration, Ev::Attempt(slot));
            if units > 0 {
                obs.ff_delta(clock.now(), units as isize);
            }
        }

        if !ready.is_empty() {
            let window_closed: usize = ready_counts
                .iter()
                .enumerate()
                .map(|(w, counts)| {
                    let thr = min_incomplete[w] + planner.cfg.pipeline_depth;
                    counts.iter().skip(thr).sum::<usize>()
                })
                .sum();
            let resource_waiting = ready.len() - window_closed;
            if resource_waiting > 0 {
                obs.stall(
                    clock.now(),
                    resource_waiting,
                    window_closed,
                    state.availability(),
                );
            }
        }

        let Some((t_fs, ev)) = events.pop() else {
            if completed < total_instances {
                return Err(PimError::internal(format!(
                    "faulted scheduler wedged with {completed} of {total_instances} \
                     instances done"
                )));
            }
            break;
        };
        clock.jump_to_fs(t_fs);
        match ev {
            Ev::Attempt(slot) => {
                let rec = slab[slot];
                free_slots.push(slot);
                if !rec.live {
                    continue; // killed by a strike; already accounted
                }
                slab[slot].live = false;
                state.release(rec.units, rec.charge.uses_cpu, rec.charge.uses_progr);
                inflight -= 1;
                if rec.units > 0 {
                    obs.ff_delta(clock.now(), -(rec.units as isize));
                }
                acc.add(&rec.charge);
                let wl = &prepared[rec.wl];
                let entry = TimelineEntry {
                    workload: rec.wl,
                    step: rec.step,
                    op: rec.op,
                    start: rec.start,
                    end: clock.now(),
                    resource: resource_class(&rec.charge),
                    ff_units: rec.units,
                    attempt: rec.attempt,
                    outcome: rec.outcome,
                };
                obs.record_op(&OpRecord {
                    entry,
                    planned: &rec.charge,
                    kind: rec.kind,
                    cost: &wl.costs[rec.op],
                    name: wl.spec.graph.ops()[rec.op].kind.tf_name(),
                    candidate: rec.candidate,
                    inflight: rec.inflight_at_dispatch,
                });
                match rec.outcome {
                    AttemptOutcome::Completed => {
                        completed += 1;
                        obs.completed();
                        for &c in &wl.consumers[rec.op] {
                            let r = &mut remaining[rec.wl][rec.step][c];
                            *r -= 1;
                            if *r == 0 {
                                ready.insert(Key {
                                    step: rec.step,
                                    rank: wl.rank[c],
                                    wl: rec.wl,
                                    op: c,
                                });
                                ready_counts[rec.wl][rec.step] += 1;
                            }
                        }
                        if rec.step + 1 < wl.spec.steps {
                            let r = &mut remaining[rec.wl][rec.step + 1][rec.op];
                            *r -= 1;
                            if *r == 0 {
                                ready.insert(Key {
                                    step: rec.step + 1,
                                    rank: wl.rank[rec.op],
                                    wl: rec.wl,
                                    op: rec.op,
                                });
                                ready_counts[rec.wl][rec.step + 1] += 1;
                            }
                        }
                        step_left[rec.wl][rec.step] -= 1;
                        while min_incomplete[rec.wl] < wl.spec.steps
                            && step_left[rec.wl][min_incomplete[rec.wl]] == 0
                        {
                            min_incomplete[rec.wl] += 1;
                        }
                    }
                    AttemptOutcome::Transient => {
                        obs.fault(clock.now(), "transient", rec.wl, rec.step, rec.op);
                        obs.retried();
                        attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                        events.push(
                            clock.now() + backoff_after(rec.attempt),
                            Ev::Retry {
                                wl: rec.wl,
                                step: rec.step,
                                op: rec.op,
                            },
                        );
                    }
                    AttemptOutcome::TimedOut => {
                        obs.fault(clock.now(), "timed-out", rec.wl, rec.step, rec.op);
                        obs.redispatched();
                        attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                        ready.insert(Key {
                            step: rec.step,
                            rank: wl.rank[rec.op],
                            wl: rec.wl,
                            op: rec.op,
                        });
                        ready_counts[rec.wl][rec.step] += 1;
                    }
                    AttemptOutcome::Killed => {
                        unreachable!("live in-flight records never carry Killed")
                    }
                }
            }
            Ev::Retry { wl, step, op } => {
                ready.insert(Key {
                    step,
                    rank: prepared[wl].rank[op],
                    wl,
                    op,
                });
                ready_counts[wl][step] += 1;
            }
            Ev::Strike(i) => {
                let s = faults.strikes[i];
                let lost = match s.target {
                    FaultTarget::FixedUnits(n) => n.min(state.alive_ff()),
                    FaultTarget::ProgrPim => 0,
                };
                // Kill the in-flight attempts the strike lands on, earliest
                // dispatch first, until the lost resources are idle.
                loop {
                    let need_kill = match s.target {
                        FaultTarget::FixedUnits(_) => state.free_ff() < lost,
                        FaultTarget::ProgrPim => slab.iter().any(|r| r.live && r.charge.uses_progr),
                    };
                    if !need_kill {
                        break;
                    }
                    let victim = slab
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| {
                            r.live
                                && match s.target {
                                    FaultTarget::FixedUnits(_) => r.units > 0,
                                    FaultTarget::ProgrPim => r.charge.uses_progr,
                                }
                        })
                        .min_by_key(|&(j, r)| (Clock::to_fs(r.start), r.wl, r.step, r.op, j))
                        .map(|(j, _)| j);
                    let Some(v) = victim else { break };
                    let rec = slab[v];
                    slab[v].live = false;
                    state.release(rec.units, rec.charge.uses_cpu, rec.charge.uses_progr);
                    inflight -= 1;
                    if rec.units > 0 {
                        obs.ff_delta(clock.now(), -(rec.units as isize));
                    }
                    let dur = rec.charge.duration.seconds();
                    let frac = if dur > 0.0 {
                        ((clock.now() - rec.start).seconds() / dur).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let partial = scale_planned(&rec.charge, frac);
                    acc.add(&partial);
                    let wl = &prepared[rec.wl];
                    let entry = TimelineEntry {
                        workload: rec.wl,
                        step: rec.step,
                        op: rec.op,
                        start: rec.start,
                        end: clock.now(),
                        resource: resource_class(&rec.charge),
                        ff_units: rec.units,
                        attempt: rec.attempt,
                        outcome: AttemptOutcome::Killed,
                    };
                    obs.record_op(&OpRecord {
                        entry,
                        planned: &partial,
                        kind: rec.kind,
                        cost: &wl.costs[rec.op],
                        name: wl.spec.graph.ops()[rec.op].kind.tf_name(),
                        candidate: rec.candidate,
                        inflight: rec.inflight_at_dispatch,
                    });
                    obs.killed(clock.now(), rec.wl, rec.step, rec.op);
                    obs.retried();
                    attempts[rec.wl][rec.step * wl.deps.len() + rec.op] += 1;
                    ready.insert(Key {
                        step: rec.step,
                        rank: wl.rank[rec.op],
                        wl: rec.wl,
                        op: rec.op,
                    });
                    ready_counts[rec.wl][rec.step] += 1;
                }
                match s.target {
                    FaultTarget::FixedUnits(_) => {
                        state.quarantine_ff(lost)?;
                        obs.quarantine(clock.now(), "ff units", lost);
                    }
                    FaultTarget::ProgrPim => {
                        state.quarantine_progr();
                        obs.quarantine(clock.now(), "progr pim", 1);
                    }
                }
            }
        }
    }
    let barrier_total: Seconds = prepared
        .iter()
        .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
        .sum();
    let decisions: Seconds = if planner.cfg.mode == SystemMode::Hetero {
        PLACEMENT_DECISION * total_instances as f64
    } else {
        Seconds::ZERO
    };
    acc.sync_raw += barrier_total + decisions;
    let makespan = clock.now() + barrier_total + decisions;
    obs.barrier(makespan, barrier_total);
    obs.decision(decisions);
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, makespan))
}

/// One standalone device executing a step stream back-to-back — the
/// analytic baselines (GPU, Neurocube) driven through the same event core
/// and report path as the engine configurations.
pub struct DeviceRun<'a> {
    /// Configuration name for the report.
    pub system: &'a str,
    /// The device executing every op.
    pub device: &'a dyn Device,
    /// Per-op cost profiles in execution order.
    pub costs: &'a [CostProfile],
    /// Training steps.
    pub steps: usize,
    /// Extra data-movement time appended to each step (e.g. the GPU's
    /// unhidden PCIe staging and working-set spill).
    pub step_epilogue_dm: Seconds,
    /// Extra energy charged per step (e.g. PCIe transfer energy).
    pub step_epilogue_energy: Joules,
}

/// Runs one device serially over `steps` repetitions of its op stream.
///
/// Per op: `op = compute time`, `dm = memory-bound excess`,
/// `sync = dispatch`, with the device's own estimate deciding each split;
/// the step epilogue is accounted as data movement. Host idle power is
/// always charged — a standalone accelerator leaves the host package
/// powered but out of the compute path.
pub fn run_device_serial(run: &DeviceRun<'_>, sink: &mut dyn TimelineSink) -> ExecutionReport {
    let mut clock = Clock::new();
    let mut op_raw = Seconds::ZERO;
    let mut dm_raw = Seconds::ZERO;
    let mut sync_raw = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    for step in 0..run.steps {
        for (op, cost) in run.costs.iter().enumerate() {
            debug_assert!(run.device.accepts(cost), "device rejects op {op}");
            let est = run.device.estimate(cost);
            let busy = est.compute_time.max(est.memory_time);
            let duration = busy + est.dispatch_time;
            op_raw += est.compute_time;
            dm_raw += busy - est.compute_time;
            sync_raw += est.dispatch_time;
            energy += est.energy;
            sink.record(TimelineEntry {
                workload: 0,
                step,
                op,
                start: clock.now(),
                end: clock.now() + duration,
                resource: ResourceClass::Baseline,
                ff_units: 0,
                attempt: 0,
                outcome: AttemptOutcome::Completed,
            });
            clock.advance(duration);
        }
        clock.advance(run.step_epilogue_dm);
        dm_raw += run.step_epilogue_dm;
        energy += run.step_epilogue_energy;
    }
    let makespan = clock.now();
    ReportBuilder::new(run.system, run.steps)
        .makespan(makespan)
        .raw_parts(op_raw, dm_raw, sync_raw)
        .device_energy(energy)
        .charge_host_idle()
        .device_busy(run.device.name(), makespan)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pim_common::units::Bytes;
    use pim_hw::cpu::CpuDevice;
    use pim_tensor::cost::OffloadClass;

    #[test]
    fn event_heap_orders_by_time_then_fifo() {
        let mut heap: EventHeap<usize> = EventHeap::new();
        heap.push(Seconds::new(2e-6), 0);
        heap.push(Seconds::new(1e-6), 1);
        heap.push(Seconds::new(1e-6), 2);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn clock_quantization_round_trips() {
        let t = Seconds::new(1.2345e-3);
        let fs = Clock::to_fs(t);
        assert!((Clock::from_fs(fs).seconds() - t.seconds()).abs() < 1e-15);
        let mut clock = Clock::new();
        clock.advance(Seconds::new(1.0));
        clock.jump_to_fs(Clock::to_fs(Seconds::new(2.0)));
        assert_eq!(clock.now(), Seconds::new(2.0));
    }

    #[test]
    fn resource_state_mirrors_the_fig7_registers() {
        let planner = Planner::new(EngineConfig::hetero());
        let mut state = ResourceState::new(&planner);
        assert!(state.registers.all_banks_idle());
        assert!(!state.registers.progr_busy());

        let cost = CostProfile::compute(
            1e9,
            1e9,
            0.0,
            Bytes::new(1e7),
            Bytes::new(1e7),
            OffloadClass::FullyMulAdd,
            128,
        );
        let kind = PlanKind::FixedWhole {
            rc_runtime: true,
            units: 128,
        };
        let planned = planner.plan_cost(kind, &cost);
        let units = state.acquire(kind, &planned).unwrap();
        assert_eq!(units, 128);
        assert_eq!(
            state.registers.idle_bank_count(),
            planner.pool_cfg().total_units - 128
        );
        assert_eq!(
            state.availability().ff_free,
            planner.pool_cfg().total_units - 128
        );

        state.release(units, false, false);
        assert!(state.registers.all_banks_idle());
    }

    #[test]
    fn progr_slots_saturate_the_busy_bit() {
        let planner = Planner::new(EngineConfig::hetero());
        let mut state = ResourceState::new(&planner);
        let cost = CostProfile::compute(
            0.0,
            0.0,
            1e8,
            Bytes::new(1e6),
            Bytes::new(1e6),
            OffloadClass::NonMulAdd,
            0,
        );
        let planned = planner.plan_cost(PlanKind::Progr, &cost);
        for _ in 0..PROGR_KERNEL_SLOTS {
            assert!(state.availability().progr_free);
            state.acquire(PlanKind::Progr, &planned).unwrap();
        }
        assert!(!state.availability().progr_free);
        assert!(state.registers.progr_busy());
        state.release(0, false, true);
        assert!(state.availability().progr_free);
        assert!(!state.registers.progr_busy());
    }

    #[test]
    fn device_serial_run_traces_and_balances() {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let costs = vec![
            CostProfile::compute(
                1e9,
                1e9,
                0.0,
                Bytes::new(1e7),
                Bytes::new(1e7),
                OffloadClass::FullyMulAdd,
                64,
            );
            3
        ];
        let run = DeviceRun {
            system: "test-baseline",
            device: &cpu,
            costs: &costs,
            steps: 2,
            step_epilogue_dm: Seconds::new(1e-3),
            step_epilogue_energy: Joules::new(0.5),
        };
        let mut sink = VecSink::default();
        let report = run_device_serial(&run, &mut sink);
        let timeline = sink.into_entries();
        assert_eq!(timeline.len(), 6);
        assert!(timeline
            .iter()
            .all(|e| e.resource == ResourceClass::Baseline));
        // Contiguous, non-overlapping execution within each step.
        for pair in timeline.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
        assert!(report.is_well_formed());
        // The per-step epilogue is billed as data movement.
        assert!(report.data_movement_time >= Seconds::new(2e-3));
        assert_eq!(report.device_busy[cpu.params().name], report.makespan);
    }
}
