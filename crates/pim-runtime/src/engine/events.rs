//! The shared event core: clock, event heap, resource state, tracing, and
//! the execution drivers every configuration runs through.
//!
//! Three drivers cover the whole evaluation:
//!
//! * [`run_serialized`] — one op at a time in topological order (the
//!   "without runtime scheduling" configurations),
//! * [`run_scheduled`] — the event-driven operation pipeline (§III-C),
//! * [`run_device_serial`] — a single [`Device`] executing the step stream
//!   back-to-back (the analytic GPU and Neurocube baselines in `pim-sim`).
//!
//! All three account time and energy through the same [`Accumulator`] and
//! build their result exclusively via [`ReportBuilder`], and all three emit
//! per-op [`TimelineEntry`] records to a pluggable [`TraceSink`].

use super::placement::{
    resource_class, Availability, PlanKind, PlannedOp, Planner, PLACEMENT_DECISION,
};
use super::{Prepared, SystemMode};
use crate::stats::{ExecutionReport, ReportBuilder};
use crate::sync::STEP_BARRIER;
use pim_common::ids::{BankId, OpId};
use pim_common::units::{Joules, Seconds};
use pim_common::{PimError, Result};
use pim_hw::device::Device;
use pim_hw::fixed::FixedFunctionPool;
use pim_hw::registers::StatusRegisters;
use pim_tensor::cost::CostProfile;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Which exclusive resource class an op instance occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceClass {
    /// The host CPU slot.
    Cpu,
    /// A programmable-PIM kernel slot.
    Progr,
    /// Fixed-function units only.
    Fixed,
    /// CPU + fixed-function units (host-driven split).
    CpuAndFixed,
    /// Programmable PIM + fixed-function units (recursive kernel).
    ProgrAndFixed,
    /// A standalone baseline device (GPU, Neurocube) outside the
    /// heterogeneous stack.
    Baseline,
}

/// One scheduled op instance on the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelineEntry {
    /// Workload index.
    pub workload: usize,
    /// Training step.
    pub step: usize,
    /// Operation index within the graph.
    pub op: usize,
    /// Start time.
    pub start: Seconds,
    /// Completion time.
    pub end: Seconds,
    /// Resource class occupied.
    pub resource: ResourceClass,
    /// Fixed-function units held for the whole interval (0 for pure
    /// CPU/programmable placements and baseline devices).
    pub ff_units: usize,
}

/// Receives one [`TimelineEntry`] per executed op instance.
///
/// The drivers emit entries as they commit ops to the clock; a sink can
/// collect them ([`VecSink`]), stream them elsewhere, or drop them
/// ([`NullSink`]) when only the report matters.
pub trait TraceSink {
    /// Records one committed op instance.
    fn record(&mut self, entry: TimelineEntry);
}

/// Discards every entry — tracing disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _entry: TimelineEntry) {}
}

/// Collects the full timeline in memory.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<TimelineEntry>,
}

impl TraceSink for VecSink {
    fn record(&mut self, entry: TimelineEntry) {
        self.entries.push(entry);
    }
}

impl VecSink {
    /// The collected timeline, in commit order.
    pub fn into_entries(self) -> Vec<TimelineEntry> {
        self.entries
    }
}

/// The simulation clock.
///
/// Event-driven execution quantizes completion times to integer
/// femtoseconds so heap ordering, timeline intervals, and resource hold
/// times agree exactly; sequential execution just accumulates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Clock {
    now: Seconds,
}

impl Clock {
    pub fn new() -> Self {
        Clock { now: Seconds::ZERO }
    }

    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advances by a duration (sequential drivers).
    pub fn advance(&mut self, d: Seconds) {
        self.now += d;
    }

    /// Jumps to a quantized event time (event-driven driver).
    pub fn jump_to_fs(&mut self, fs: u128) {
        self.now = Self::from_fs(fs);
    }

    pub fn to_fs(t: Seconds) -> u128 {
        (t.seconds() * 1e15) as u128
    }

    pub fn from_fs(fs: u128) -> Seconds {
        Seconds::new(fs as f64 / 1e15)
    }
}

/// Min-heap of completion events, FIFO-ordered among simultaneous ones.
#[derive(Debug)]
pub(crate) struct EventHeap<T> {
    heap: BinaryHeap<Reverse<(u128, u64, usize)>>,
    payloads: Vec<T>,
    seq: u64,
}

impl<T: Copy> EventHeap<T> {
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to complete at `end`; returns the quantized
    /// completion time so callers can mirror it (e.g. in the timeline).
    pub fn push(&mut self, end: Seconds, payload: T) -> u128 {
        let fs = Clock::to_fs(end);
        self.payloads.push(payload);
        self.heap
            .push(Reverse((fs, self.seq, self.payloads.len() - 1)));
        self.seq += 1;
        fs
    }

    /// Pops the earliest completion.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        self.heap
            .pop()
            .map(|Reverse((fs, _, idx))| (fs, self.payloads[idx]))
    }
}

/// Concurrent programmable-PIM kernels: the runtime dedicates a core pair
/// to each in-flight kernel.
pub const PROGR_KERNEL_SLOTS: usize = 2;

/// Exclusive-resource occupancy during event-driven execution, mirrored
/// into the Fig. 7 busy/idle register file the software scheduler queries.
#[derive(Debug)]
pub(crate) struct ResourceState {
    cpu_free: bool,
    progr_slots: usize,
    pool: FixedFunctionPool,
    registers: StatusRegisters,
}

impl ResourceState {
    pub fn new(planner: &Planner) -> Self {
        let pool = FixedFunctionPool::new(planner.pool_cfg().clone());
        let registers = StatusRegisters::new(pool.total_units());
        ResourceState {
            cpu_free: true,
            progr_slots: PROGR_KERNEL_SLOTS,
            pool,
            registers,
        }
    }

    /// Free resources right now, as the placement policy sees them — read
    /// from the Fig. 7 register file, exactly like the software scheduler
    /// does through the Table III query APIs.
    pub fn availability(&self) -> Availability {
        Availability {
            cpu_free: self.cpu_free,
            progr_free: !self.registers.progr_busy(),
            ff_free: self.registers.idle_bank_count(),
        }
    }

    /// Reserves the resources a chosen placement needs; returns the
    /// fixed-function units held (0 for CPU/programmable placements).
    ///
    /// # Errors
    ///
    /// Propagates a pool-grant failure (a scheduler bug: [`Planner::choose`]
    /// only proposes grants that fit).
    pub fn acquire(&mut self, kind: PlanKind, planned: &PlannedOp) -> Result<usize> {
        let units = match kind {
            PlanKind::FixedWhole { units, .. }
            | PlanKind::HostSplit { units }
            | PlanKind::Recursive { units } => {
                self.pool.grant(units)?;
                units
            }
            _ => 0,
        };
        if planned.uses_cpu {
            self.cpu_free = false;
        }
        if planned.uses_progr {
            self.progr_slots -= 1;
        }
        self.mirror_registers();
        Ok(units)
    }

    /// Returns a completed op's resources.
    pub fn release(&mut self, units: usize, uses_cpu: bool, uses_progr: bool) {
        if units > 0 {
            self.pool.release(units);
        }
        if uses_cpu {
            self.cpu_free = true;
        }
        if uses_progr {
            self.progr_slots += 1;
        }
        self.mirror_registers();
    }

    /// Busy units fill bank registers from index 0 upward; the programmable
    /// PIM's single bit is busy when no kernel slot is free.
    fn mirror_registers(&mut self) {
        let busy = self.pool.total_units() - self.pool.free_units();
        for i in 0..self.pool.total_units() {
            let _ = self.registers.set_bank_busy(BankId::new(i), i < busy);
        }
        self.registers.set_progr_busy(self.progr_slots == 0);
    }
}

/// Statistic accumulator shared by every execution driver.
#[derive(Debug, Default)]
pub(crate) struct Accumulator {
    op_raw: Seconds,
    dm_raw: Seconds,
    pub sync_raw: Seconds,
    energy: Joules,
    cpu_busy: Seconds,
    progr_busy: Seconds,
    ff_unit_seconds: f64,
}

impl Accumulator {
    pub fn add(&mut self, planned: &PlannedOp) {
        self.op_raw += planned.op_part;
        self.dm_raw += planned.dm_part;
        self.sync_raw += planned.sync_part;
        self.energy += planned.energy;
        if planned.uses_cpu {
            self.cpu_busy += planned.duration;
        }
        if planned.uses_progr {
            self.progr_busy += planned.duration;
        }
        self.ff_unit_seconds += planned.ff_units as f64 * planned.ff_busy.seconds();
    }

    pub fn into_report(
        self,
        planner: &Planner,
        steps: usize,
        makespan: Seconds,
    ) -> ExecutionReport {
        let cfg = &planner.cfg;
        let ff_utilization = if makespan.seconds() > 0.0 && cfg.mode != SystemMode::CpuOnly {
            (self.ff_unit_seconds / (cfg.ff_units as f64 * makespan.seconds())).min(1.0)
        } else {
            0.0
        };
        let mut builder = ReportBuilder::new(cfg.name.clone(), steps)
            .makespan(makespan)
            .raw_parts(self.op_raw, self.dm_raw, self.sync_raw)
            .device_energy(self.energy)
            .ff_utilization(ff_utilization)
            .device_busy("CPU", self.cpu_busy)
            .device_busy("Progr PIM", self.progr_busy)
            .device_busy(
                "Fixed PIM",
                Seconds::new(self.ff_unit_seconds / cfg.ff_units.max(1) as f64),
            );
        // PIM configurations keep the host package powered (it hosts the
        // TensorFlow runtime and the OpenCL host program) even while PIMs
        // compute; CPU-only runs already bill the CPU per op.
        if cfg.mode != SystemMode::CpuOnly {
            builder = builder.charge_host_idle();
        }
        builder.build()
    }
}

/// Sequential execution: one op at a time in topological order per step —
/// the "without runtime scheduling" configurations.
pub(crate) fn run_serialized(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    sink: &mut dyn TraceSink,
) -> Result<ExecutionReport> {
    let mut acc = Accumulator::default();
    let mut clock = Clock::new();
    for (w, wl) in prepared.iter().enumerate() {
        for step in 0..wl.spec.steps {
            for &op in &wl.topo {
                let cost = &wl.costs[op];
                let is_candidate = wl.candidates.contains(OpId::new(op));
                let kind = planner
                    .choose(
                        cost,
                        is_candidate,
                        wl.spec.cpu_progr_only,
                        Availability::all_free(planner.cfg.ff_units),
                    )
                    .ok_or_else(|| PimError::internal("serialized placement found no device"))?;
                let planned = planner.plan_cost(kind, cost);
                acc.add(&planned);
                sink.record(TimelineEntry {
                    workload: w,
                    step,
                    op,
                    start: clock.now(),
                    end: clock.now() + planned.duration,
                    resource: resource_class(&planned),
                    ff_units: planned.ff_units,
                });
                clock.advance(planned.duration);
                if planner.cfg.mode == SystemMode::Hetero {
                    clock.advance(PLACEMENT_DECISION);
                    acc.sync_raw += PLACEMENT_DECISION;
                }
            }
            clock.advance(STEP_BARRIER);
            acc.sync_raw += STEP_BARRIER;
        }
    }
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, clock.now()))
}

/// Event-driven execution with the operation pipeline.
pub(crate) fn run_scheduled(
    planner: &Planner,
    prepared: &[Prepared<'_>],
    sink: &mut dyn TraceSink,
) -> Result<ExecutionReport> {
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key {
        step: usize,
        rank: usize,
        wl: usize,
        op: usize,
    }
    // Per-instance remaining dependency counts.
    let mut remaining: Vec<Vec<Vec<usize>>> = prepared
        .iter()
        .map(|wl| {
            (0..wl.spec.steps)
                .map(|step| {
                    wl.deps
                        .iter()
                        .map(|d| d.len() + usize::from(step > 0))
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut step_left: Vec<Vec<usize>> = prepared
        .iter()
        .map(|wl| vec![wl.topo.len(); wl.spec.steps])
        .collect();
    let mut min_incomplete: Vec<usize> = vec![0; prepared.len()];

    let mut ready: BTreeSet<Key> = BTreeSet::new();
    for (w, wl) in prepared.iter().enumerate() {
        for (op, deps) in wl.deps.iter().enumerate() {
            if deps.is_empty() && wl.spec.steps > 0 {
                ready.insert(Key {
                    step: 0,
                    rank: wl.rank[op],
                    wl: w,
                    op,
                });
            }
        }
    }

    let mut state = ResourceState::new(planner);

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Done {
        wl: usize,
        step: usize,
        op: usize,
        units: usize,
        uses_cpu: bool,
        uses_progr: bool,
    }
    let mut events: EventHeap<Done> = EventHeap::new();
    let mut clock = Clock::new();
    let mut acc = Accumulator::default();
    let total_instances: usize = prepared
        .iter()
        .map(|wl| wl.spec.steps * wl.topo.len())
        .sum();
    let mut completed = 0usize;

    while completed < total_instances {
        // Schedule everything that fits right now.
        let mut scheduled_any = true;
        while scheduled_any {
            scheduled_any = false;
            let keys: Vec<Key> = ready.iter().copied().collect();
            for key in keys {
                let wl = &prepared[key.wl];
                if key.step >= min_incomplete[key.wl] + planner.cfg.pipeline_depth {
                    continue; // pipeline window closed for this step
                }
                let cost = &wl.costs[key.op];
                let is_candidate = wl.candidates.contains(OpId::new(key.op));
                let Some(kind) = planner.choose(
                    cost,
                    is_candidate,
                    wl.spec.cpu_progr_only,
                    state.availability(),
                ) else {
                    continue;
                };
                let planned = planner.plan_cost(kind, cost);
                let units = state.acquire(kind, &planned)?;
                acc.add(&planned);
                ready.remove(&key);
                // Record the end at the same femtosecond quantization the
                // event heap uses, so timeline intervals match the actual
                // resource hold times exactly.
                let end_fs = events.push(
                    clock.now() + planned.duration,
                    Done {
                        wl: key.wl,
                        step: key.step,
                        op: key.op,
                        units,
                        uses_cpu: planned.uses_cpu,
                        uses_progr: planned.uses_progr,
                    },
                );
                sink.record(TimelineEntry {
                    workload: key.wl,
                    step: key.step,
                    op: key.op,
                    start: clock.now(),
                    end: Clock::from_fs(end_fs),
                    resource: resource_class(&planned),
                    ff_units: units,
                });
                scheduled_any = true;
            }
        }

        let Some((t_fs, done)) = events.pop() else {
            if completed < total_instances {
                return Err(PimError::internal(format!(
                    "scheduler wedged with {completed} of {total_instances} instances done"
                )));
            }
            break;
        };
        clock.jump_to_fs(t_fs);
        state.release(done.units, done.uses_cpu, done.uses_progr);
        completed += 1;

        let wl = &prepared[done.wl];
        // Intra-step consumers.
        for &c in &wl.consumers[done.op] {
            let r = &mut remaining[done.wl][done.step][c];
            *r -= 1;
            if *r == 0 {
                ready.insert(Key {
                    step: done.step,
                    rank: wl.rank[c],
                    wl: done.wl,
                    op: c,
                });
            }
        }
        // Cross-step successor: the same op in the next step.
        if done.step + 1 < wl.spec.steps {
            let r = &mut remaining[done.wl][done.step + 1][done.op];
            *r -= 1;
            if *r == 0 {
                ready.insert(Key {
                    step: done.step + 1,
                    rank: wl.rank[done.op],
                    wl: done.wl,
                    op: done.op,
                });
            }
        }
        // Step-completion bookkeeping for the pipeline window.
        step_left[done.wl][done.step] -= 1;
        while min_incomplete[done.wl] < wl.spec.steps
            && step_left[done.wl][min_incomplete[done.wl]] == 0
        {
            min_incomplete[done.wl] += 1;
        }
    }
    let barrier_total: Seconds = prepared
        .iter()
        .map(|wl| STEP_BARRIER * wl.spec.steps as f64)
        .sum();
    // The CPU-side runtime makes one placement decision per op instance
    // (register queries through the Table III APIs); this serial work is
    // not hidden by the pipeline.
    let decisions: Seconds = if planner.cfg.mode == SystemMode::Hetero {
        PLACEMENT_DECISION * total_instances as f64
    } else {
        Seconds::ZERO
    };
    acc.sync_raw += barrier_total + decisions;
    let makespan = clock.now() + barrier_total + decisions;
    let steps = prepared.iter().map(|w| w.spec.steps).max().unwrap_or(0);
    Ok(acc.into_report(planner, steps, makespan))
}

/// One standalone device executing a step stream back-to-back — the
/// analytic baselines (GPU, Neurocube) driven through the same event core
/// and report path as the engine configurations.
pub struct DeviceRun<'a> {
    /// Configuration name for the report.
    pub system: &'a str,
    /// The device executing every op.
    pub device: &'a dyn Device,
    /// Per-op cost profiles in execution order.
    pub costs: &'a [CostProfile],
    /// Training steps.
    pub steps: usize,
    /// Extra data-movement time appended to each step (e.g. the GPU's
    /// unhidden PCIe staging and working-set spill).
    pub step_epilogue_dm: Seconds,
    /// Extra energy charged per step (e.g. PCIe transfer energy).
    pub step_epilogue_energy: Joules,
}

/// Runs one device serially over `steps` repetitions of its op stream.
///
/// Per op: `op = compute time`, `dm = memory-bound excess`,
/// `sync = dispatch`, with the device's own estimate deciding each split;
/// the step epilogue is accounted as data movement. Host idle power is
/// always charged — a standalone accelerator leaves the host package
/// powered but out of the compute path.
pub fn run_device_serial(run: &DeviceRun<'_>, sink: &mut dyn TraceSink) -> ExecutionReport {
    let mut clock = Clock::new();
    let mut op_raw = Seconds::ZERO;
    let mut dm_raw = Seconds::ZERO;
    let mut sync_raw = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    for step in 0..run.steps {
        for (op, cost) in run.costs.iter().enumerate() {
            debug_assert!(run.device.accepts(cost), "device rejects op {op}");
            let est = run.device.estimate(cost);
            let busy = est.compute_time.max(est.memory_time);
            let duration = busy + est.dispatch_time;
            op_raw += est.compute_time;
            dm_raw += busy - est.compute_time;
            sync_raw += est.dispatch_time;
            energy += est.energy;
            sink.record(TimelineEntry {
                workload: 0,
                step,
                op,
                start: clock.now(),
                end: clock.now() + duration,
                resource: ResourceClass::Baseline,
                ff_units: 0,
            });
            clock.advance(duration);
        }
        clock.advance(run.step_epilogue_dm);
        dm_raw += run.step_epilogue_dm;
        energy += run.step_epilogue_energy;
    }
    let makespan = clock.now();
    ReportBuilder::new(run.system, run.steps)
        .makespan(makespan)
        .raw_parts(op_raw, dm_raw, sync_raw)
        .device_energy(energy)
        .charge_host_idle()
        .device_busy(run.device.name(), makespan)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pim_common::units::Bytes;
    use pim_hw::cpu::CpuDevice;
    use pim_tensor::cost::OffloadClass;

    #[test]
    fn event_heap_orders_by_time_then_fifo() {
        let mut heap: EventHeap<usize> = EventHeap::new();
        heap.push(Seconds::new(2e-6), 0);
        heap.push(Seconds::new(1e-6), 1);
        heap.push(Seconds::new(1e-6), 2);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn clock_quantization_round_trips() {
        let t = Seconds::new(1.2345e-3);
        let fs = Clock::to_fs(t);
        assert!((Clock::from_fs(fs).seconds() - t.seconds()).abs() < 1e-15);
        let mut clock = Clock::new();
        clock.advance(Seconds::new(1.0));
        clock.jump_to_fs(Clock::to_fs(Seconds::new(2.0)));
        assert_eq!(clock.now(), Seconds::new(2.0));
    }

    #[test]
    fn resource_state_mirrors_the_fig7_registers() {
        let planner = Planner::new(EngineConfig::hetero());
        let mut state = ResourceState::new(&planner);
        assert!(state.registers.all_banks_idle());
        assert!(!state.registers.progr_busy());

        let cost = CostProfile::compute(
            1e9,
            1e9,
            0.0,
            Bytes::new(1e7),
            Bytes::new(1e7),
            OffloadClass::FullyMulAdd,
            128,
        );
        let kind = PlanKind::FixedWhole {
            rc_runtime: true,
            units: 128,
        };
        let planned = planner.plan_cost(kind, &cost);
        let units = state.acquire(kind, &planned).unwrap();
        assert_eq!(units, 128);
        assert_eq!(
            state.registers.idle_bank_count(),
            planner.pool_cfg().total_units - 128
        );
        assert_eq!(
            state.availability().ff_free,
            planner.pool_cfg().total_units - 128
        );

        state.release(units, false, false);
        assert!(state.registers.all_banks_idle());
    }

    #[test]
    fn progr_slots_saturate_the_busy_bit() {
        let planner = Planner::new(EngineConfig::hetero());
        let mut state = ResourceState::new(&planner);
        let cost = CostProfile::compute(
            0.0,
            0.0,
            1e8,
            Bytes::new(1e6),
            Bytes::new(1e6),
            OffloadClass::NonMulAdd,
            0,
        );
        let planned = planner.plan_cost(PlanKind::Progr, &cost);
        for _ in 0..PROGR_KERNEL_SLOTS {
            assert!(state.availability().progr_free);
            state.acquire(PlanKind::Progr, &planned).unwrap();
        }
        assert!(!state.availability().progr_free);
        assert!(state.registers.progr_busy());
        state.release(0, false, true);
        assert!(state.availability().progr_free);
        assert!(!state.registers.progr_busy());
    }

    #[test]
    fn device_serial_run_traces_and_balances() {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let costs = vec![
            CostProfile::compute(
                1e9,
                1e9,
                0.0,
                Bytes::new(1e7),
                Bytes::new(1e7),
                OffloadClass::FullyMulAdd,
                64,
            );
            3
        ];
        let run = DeviceRun {
            system: "test-baseline",
            device: &cpu,
            costs: &costs,
            steps: 2,
            step_epilogue_dm: Seconds::new(1e-3),
            step_epilogue_energy: Joules::new(0.5),
        };
        let mut sink = VecSink::default();
        let report = run_device_serial(&run, &mut sink);
        let timeline = sink.into_entries();
        assert_eq!(timeline.len(), 6);
        assert!(timeline
            .iter()
            .all(|e| e.resource == ResourceClass::Baseline));
        // Contiguous, non-overlapping execution within each step.
        for pair in timeline.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
        assert!(report.is_well_formed());
        // The per-step epilogue is billed as data movement.
        assert!(report.data_movement_time >= Seconds::new(2e-3));
        assert_eq!(report.device_busy[cpu.params().name], report.makespan);
    }
}
