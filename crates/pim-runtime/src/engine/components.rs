//! The component-based discrete-event core.
//!
//! Execution state is split into *components* — per-device completion
//! lanes, the link/sync fault-delivery model, the fixed-function/CPU/
//! programmable resource pool, and the observer — each registered in a
//! [`ComponentSlab`] under a small index key ([`CompKey`]). Every
//! component implements [`Component`]: `next_tick()` exposes the earliest
//! pending event as a `(femtoseconds, sequence)` pair and `advance(to)`
//! retires it. The drivers then run one loop: ask the slab for the
//! component holding the globally earliest tick, advance it, and react to
//! the [`Retired`] value.
//!
//! # Determinism
//!
//! The pre-refactor core used a single event heap keyed by
//! `(time, seq, slot)` with a globally unique `seq`, so simultaneous
//! events popped in push (FIFO) order. The slab preserves that order
//! across *multiple* heaps by construction:
//!
//! * sequence numbers are allocated from one shared counter
//!   ([`ComponentSlab::next_seq`]) in the same program order the old code
//!   pushed events, and
//! * [`ComponentSlab::earliest`] picks the component with the minimum
//!   `(fs, seq)` pair, which — because each per-component heap is itself
//!   a min-heap on `(fs, seq, slot)` — is exactly the event the old single
//!   heap would have popped.
//!
//! `seq` is unique, so the k-way merge over components never tie-breaks on
//! anything machine-dependent; the retired-event order is a pure function
//! of the dispatch order.
//!
//! # Allocation-free steady state
//!
//! All hot-path stores recycle: heap payload slots and in-flight records
//! live in slabs with LIFO free lists (the pattern the fault driver
//! introduced, now shared with the zero-fault path through
//! [`DeviceLanes`]), so a long run allocates only up to its peak
//! in-flight count and then stops touching the allocator.

use super::observe::Observer;
use super::placement::{Availability, PlanKind, PlannedOp, Planner};
use super::SystemMode;
use crate::stats::{ExecutionReport, ReportBuilder};
use pim_common::ids::BankId;
use pim_common::units::{Joules, Seconds};
use pim_common::Result;
use pim_hw::fixed::FixedFunctionPool;
use pim_hw::registers::StatusRegisters;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::faults::AttemptOutcome;

/// The simulation clock.
///
/// Event-driven execution quantizes completion times to integer
/// femtoseconds so heap ordering, timeline intervals, and resource hold
/// times agree exactly; sequential execution just accumulates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Clock {
    now: Seconds,
}

impl Clock {
    pub fn new() -> Self {
        Clock { now: Seconds::ZERO }
    }

    // &self (not Copy `self`): the clock is mutable shared state and
    // must never be silently duplicated by a by-value getter.
    #[allow(clippy::trivially_copy_pass_by_ref)]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advances by a duration (sequential drivers).
    pub fn advance(&mut self, d: Seconds) {
        self.now += d;
    }

    /// Jumps to a quantized event time (event-driven driver).
    pub fn jump_to_fs(&mut self, fs: u128) {
        self.now = Self::from_fs(fs);
    }

    pub fn to_fs(t: Seconds) -> u128 {
        (t.seconds() * 1e15) as u128
    }

    pub fn from_fs(fs: u128) -> Seconds {
        Seconds::new(fs as f64 / 1e15)
    }
}

/// Min-heap of completion events, FIFO-ordered among simultaneous ones.
///
/// Payload slots are recycled through a free list, so long runs keep the
/// payload store bounded by the peak number of in-flight events instead of
/// growing by one slot per push. Ordering is untouched: the heap key is
/// `(time, seq, slot)` and `seq` — allocated by the caller from the
/// component slab's shared counter — is unique, so the recycled slot index
/// never participates in a tie-break.
#[derive(Debug)]
pub(crate) struct EventHeap<T> {
    heap: BinaryHeap<Reverse<(u128, u64, usize)>>,
    payloads: Vec<T>,
    free: Vec<usize>,
}

impl<T: Copy> EventHeap<T> {
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(16),
            payloads: Vec::with_capacity(16),
            free: Vec::with_capacity(16),
        }
    }

    /// Schedules `payload` to complete at `end` under sequence number
    /// `seq`; returns the quantized completion time so callers can mirror
    /// it (e.g. in the timeline).
    pub fn push(&mut self, end: Seconds, payload: T, seq: u64) -> u128 {
        let fs = Clock::to_fs(end);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.payloads[slot] = payload;
                slot
            }
            None => {
                self.payloads.push(payload);
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((fs, seq, idx)));
        fs
    }

    /// The `(time, seq)` key of the earliest pending event.
    pub fn next_tick(&self) -> Option<(u128, u64)> {
        self.heap.peek().map(|Reverse((fs, seq, _))| (*fs, *seq))
    }

    /// Pops the earliest completion.
    pub fn pop(&mut self) -> Option<(u128, T)> {
        self.heap.pop().map(|Reverse((fs, _, idx))| {
            self.free.push(idx);
            (fs, self.payloads[idx])
        })
    }
}

/// Concurrent programmable-PIM kernels: the runtime dedicates a core pair
/// to each in-flight kernel.
pub const PROGR_KERNEL_SLOTS: usize = 2;

/// One dispatched attempt occupying resources until its completion event.
///
/// Shared by the zero-fault and faulted drivers: fault-free dispatches
/// simply carry `attempt == 0`, `outcome == Completed`, and stay `live`
/// until retirement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    pub wl: usize,
    pub step: usize,
    pub op: usize,
    pub kind: PlanKind,
    /// Fate-adjusted planned op (the charge if the attempt runs to its
    /// scheduled end).
    pub charge: PlannedOp,
    pub units: usize,
    pub attempt: u32,
    pub outcome: AttemptOutcome,
    pub start: Seconds,
    pub inflight_at_dispatch: usize,
    pub candidate: bool,
    /// Cleared when a strike kills the attempt before its event pops.
    pub live: bool,
}

/// What a component hands back when it advances past its earliest event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Retired {
    /// An in-flight op attempt reached its scheduled end.
    Op(InFlight),
    /// A retry backoff expired; the instance becomes ready again.
    Retry { wl: usize, step: usize, op: usize },
    /// Permanent strike `i` of the fault context lands.
    Strike(usize),
    /// The event belonged to an attempt a strike already killed and
    /// accounted; only its slot is reclaimed.
    Stale,
    /// The component had nothing pending (passive components only).
    Idle,
}

/// The per-device completion lanes: every dispatched attempt parks here
/// until its completion event fires.
///
/// In-flight records live in a slab with a LIFO free list; a killed slot
/// is recycled only when its stale event drains, so a pending event never
/// aliases a reused slot.
#[derive(Debug)]
pub(crate) struct DeviceLanes {
    events: EventHeap<usize>,
    slab: Vec<InFlight>,
    free_slots: Vec<usize>,
}

impl DeviceLanes {
    pub fn new() -> Self {
        DeviceLanes {
            events: EventHeap::new(),
            slab: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Parks `rec` until `end`; returns the quantized completion time.
    pub fn dispatch(&mut self, end: Seconds, rec: InFlight, seq: u64) -> u128 {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slab[s] = rec;
                s
            }
            None => {
                self.slab.push(rec);
                self.slab.len() - 1
            }
        };
        self.events.push(end, slot, seq)
    }

    /// The record parked in `slot`.
    pub fn record(&self, slot: usize) -> InFlight {
        self.slab[slot]
    }

    /// Marks the attempt in `slot` dead; its event will drain as
    /// [`Retired::Stale`].
    pub fn kill(&mut self, slot: usize) {
        self.slab[slot].live = false;
    }

    /// Whether any live in-flight attempt matches `pred`.
    pub fn any_live(&self, pred: impl Fn(&InFlight) -> bool) -> bool {
        self.slab.iter().any(|r| r.live && pred(r))
    }

    /// The slot of the live attempt matching `pred` that dispatched
    /// earliest, tie-broken by `(workload, step, op, slot)` so victim
    /// selection is deterministic.
    pub fn victim(&self, pred: impl Fn(&InFlight) -> bool) -> Option<usize> {
        self.slab
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && pred(r))
            .min_by_key(|&(j, r)| (Clock::to_fs(r.start), r.wl, r.step, r.op, j))
            .map(|(j, _)| j)
    }
}

impl Component for DeviceLanes {
    fn next_tick(&self) -> Option<(u128, u64)> {
        self.events.next_tick()
    }

    fn advance(&mut self, _to: (u128, u64)) -> Retired {
        let Some((_fs, slot)) = self.events.pop() else {
            return Retired::Idle;
        };
        let rec = self.slab[slot];
        self.free_slots.push(slot);
        if !rec.live {
            return Retired::Stale;
        }
        self.slab[slot].live = false;
        Retired::Op(rec)
    }
}

/// Events the link/sync model delivers.
#[derive(Debug, Clone, Copy)]
enum SyncEv {
    /// A retry's backoff expires; the instance becomes ready again.
    Retry { wl: usize, step: usize, op: usize },
    /// Permanent strike `i` of the fault context lands.
    Strike(usize),
}

/// The link/sync model: delivers retry-backoff expiries and permanent
/// strikes into the event core. Zero-fault runs register one but never
/// schedule on it, so it contributes no ticks.
#[derive(Debug)]
pub(crate) struct SyncLink {
    events: EventHeap<SyncEv>,
}

impl SyncLink {
    pub fn new() -> Self {
        SyncLink {
            events: EventHeap::new(),
        }
    }

    /// Schedules the end of a retry backoff for `(wl, step, op)`.
    pub fn schedule_retry(&mut self, at: Seconds, wl: usize, step: usize, op: usize, seq: u64) {
        self.events.push(at, SyncEv::Retry { wl, step, op }, seq);
    }

    /// Schedules permanent strike `index` of the fault context.
    pub fn schedule_strike(&mut self, at: Seconds, index: usize, seq: u64) {
        self.events.push(at, SyncEv::Strike(index), seq);
    }
}

impl Component for SyncLink {
    fn next_tick(&self) -> Option<(u128, u64)> {
        self.events.next_tick()
    }

    fn advance(&mut self, _to: (u128, u64)) -> Retired {
        match self.events.pop() {
            Some((_, SyncEv::Retry { wl, step, op })) => Retired::Retry { wl, step, op },
            Some((_, SyncEv::Strike(i))) => Retired::Strike(i),
            None => Retired::Idle,
        }
    }
}

/// Exclusive-resource occupancy in flat structure-of-arrays form: one
/// counter per resource class (CPU slots, programmable-PIM kernel slots,
/// fixed-function units via the pool), mirrored into the Fig. 7 busy/idle
/// register file the software scheduler queries.
///
/// A passive [`Component`]: it never originates events, it just gates what
/// the dispatch pass may place.
#[derive(Debug)]
pub(crate) struct ResourceSoA {
    /// Free host CPU slots (the host contributes one).
    cpu_slots_free: u32,
    /// Free programmable-PIM kernel slots.
    progr_slots_free: u32,
    pool: FixedFunctionPool,
    registers: StatusRegisters,
    /// Busy-unit count currently reflected in the bank registers, so each
    /// mirror only rewrites the registers that changed since the last
    /// acquire/release instead of scanning all of them.
    mirrored_busy: usize,
    /// Units permanently lost to fail-stop faults. Quarantine holds them
    /// through a never-released pool grant, so the Fig. 7 registers show
    /// them busy without any special-casing.
    quarantined_ff: usize,
    /// The programmable PIM has not been permanently quarantined.
    progr_alive: bool,
}

impl ResourceSoA {
    pub fn new(planner: &Planner) -> Self {
        let pool = FixedFunctionPool::new(planner.pool_cfg().clone());
        let registers = StatusRegisters::new(pool.total_units());
        ResourceSoA {
            cpu_slots_free: 1,
            progr_slots_free: PROGR_KERNEL_SLOTS as u32,
            pool,
            registers,
            mirrored_busy: 0,
            quarantined_ff: 0,
            progr_alive: true,
        }
    }

    /// Free resources right now, as the placement policy sees them — read
    /// from the Fig. 7 register file, exactly like the software scheduler
    /// does through the Table III query APIs.
    pub fn availability(&self) -> Availability {
        Availability {
            cpu_free: self.cpu_slots_free > 0,
            progr_free: !self.registers.progr_busy(),
            ff_free: self.registers.idle_bank_count(),
            ff_alive: self.pool.total_units() - self.quarantined_ff,
            progr_alive: self.progr_alive,
        }
    }

    /// Fixed-function units idle right now.
    pub fn free_ff(&self) -> usize {
        self.pool.free_units()
    }

    /// Units still alive (free or busy, but not quarantined).
    pub fn alive_ff(&self) -> usize {
        self.pool.total_units() - self.quarantined_ff
    }

    /// Permanently removes `units` idle fixed-function units. The grant is
    /// never released, so the Fig. 7 registers report them busy forever.
    ///
    /// # Errors
    ///
    /// Propagates a pool-grant failure (callers kill enough in-flight work
    /// first to make the units idle).
    pub fn quarantine_ff(&mut self, units: usize) -> Result<()> {
        if units == 0 {
            return Ok(());
        }
        self.pool.grant(units)?;
        self.quarantined_ff += units;
        self.mirror_registers();
        Ok(())
    }

    /// Permanently removes the programmable PIM (callers kill in-flight
    /// kernels first, so every slot is free here).
    pub fn quarantine_progr(&mut self) {
        self.progr_alive = false;
        self.progr_slots_free = 0;
        self.mirror_registers();
    }

    /// Reserves the resources a chosen placement needs; returns the
    /// fixed-function units held (0 for CPU/programmable placements).
    ///
    /// # Errors
    ///
    /// Propagates a pool-grant failure (a scheduler bug: [`Planner::choose`]
    /// only proposes grants that fit).
    pub fn acquire(&mut self, kind: PlanKind, planned: &PlannedOp) -> Result<usize> {
        let units = match kind {
            PlanKind::FixedWhole { units, .. }
            | PlanKind::HostSplit { units }
            | PlanKind::Recursive { units } => {
                self.pool.grant(units)?;
                units
            }
            _ => 0,
        };
        if planned.uses_cpu {
            self.cpu_slots_free -= 1;
        }
        if planned.uses_progr {
            self.progr_slots_free -= 1;
        }
        self.mirror_registers();
        Ok(units)
    }

    /// Returns a completed op's resources.
    pub fn release(&mut self, units: usize, uses_cpu: bool, uses_progr: bool) {
        if units > 0 {
            self.pool.release(units);
        }
        if uses_cpu {
            self.cpu_slots_free += 1;
        }
        if uses_progr {
            self.progr_slots_free += 1;
        }
        self.mirror_registers();
    }

    /// Busy units fill bank registers from index 0 upward; the programmable
    /// PIM's single bit is busy when no kernel slot is free. Only the
    /// registers whose bit actually changed are rewritten.
    fn mirror_registers(&mut self) {
        let busy = self.pool.total_units() - self.pool.free_units();
        for i in self.mirrored_busy.min(busy)..self.mirrored_busy.max(busy) {
            let _ = self.registers.set_bank_busy(BankId::new(i), i < busy);
        }
        self.mirrored_busy = busy;
        self.registers.set_progr_busy(self.progr_slots_free == 0);
    }

    #[cfg(test)]
    pub(crate) fn registers(&self) -> &StatusRegisters {
        &self.registers
    }
}

impl Component for ResourceSoA {
    fn next_tick(&self) -> Option<(u128, u64)> {
        None
    }

    fn advance(&mut self, _to: (u128, u64)) -> Retired {
        Retired::Idle
    }
}

impl Component for Observer<'_> {
    fn next_tick(&self) -> Option<(u128, u64)> {
        None
    }

    fn advance(&mut self, _to: (u128, u64)) -> Retired {
        Retired::Idle
    }
}

/// One piece of execution state in the event core.
///
/// `next_tick` exposes the component's earliest pending event as a
/// `(femtoseconds, seq)` key; `advance(to)` retires exactly that event.
/// Passive components (resources, observer) report `None`/[`Retired::Idle`]
/// and only react to explicit driver calls.
pub(crate) trait Component {
    /// The `(time, seq)` key of this component's earliest pending event,
    /// or `None` when it has nothing scheduled.
    fn next_tick(&self) -> Option<(u128, u64)>;

    /// Retires the event at `to` (the key `next_tick` just returned).
    fn advance(&mut self, to: (u128, u64)) -> Retired;
}

/// Index key of a component registered in a [`ComponentSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompKey(usize);

/// A registered component. The observer is borrowed rather than owned —
/// it outlives the run (the engine flushes it after the driver returns).
pub(crate) enum Comp<'a, 'o> {
    Lanes(DeviceLanes),
    Sync(SyncLink),
    Resources(ResourceSoA),
    Observer(&'a mut Observer<'o>),
}

impl Component for Comp<'_, '_> {
    fn next_tick(&self) -> Option<(u128, u64)> {
        match self {
            Comp::Lanes(c) => c.next_tick(),
            Comp::Sync(c) => c.next_tick(),
            Comp::Resources(c) => c.next_tick(),
            Comp::Observer(c) => c.next_tick(),
        }
    }

    fn advance(&mut self, to: (u128, u64)) -> Retired {
        match self {
            Comp::Lanes(c) => c.advance(to),
            Comp::Sync(c) => c.advance(to),
            Comp::Resources(c) => c.advance(to),
            Comp::Observer(c) => c.advance(to),
        }
    }
}

/// The component registry a driver runs over, plus the shared sequence
/// counter that makes the cross-component event order deterministic (see
/// the module docs).
pub(crate) struct ComponentSlab<'a, 'o> {
    comps: Vec<Comp<'a, 'o>>,
    seq: u64,
    tie: crate::fuzz::TieBreak,
}

impl<'a, 'o> ComponentSlab<'a, 'o> {
    pub fn new(tie: crate::fuzz::TieBreak) -> Self {
        ComponentSlab {
            comps: Vec::with_capacity(4),
            seq: 0,
            tie,
        }
    }

    /// Registers a component; the returned key indexes it forever.
    pub fn register(&mut self, comp: Comp<'a, 'o>) -> CompKey {
        self.comps.push(comp);
        CompKey(self.comps.len() - 1)
    }

    /// Allocates the next globally unique event sequence number. Under
    /// [`crate::fuzz::TieBreak::Stable`] this is the allocation counter
    /// itself (program order); the seeded modes remap it through a
    /// bijective xorshift* permutation, which keeps every key unique —
    /// the determinism invariant of the `(time, seq)` merge — while
    /// permuting the pop order among same-femtosecond events.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.tie.event_key(self.seq);
        self.seq += 1;
        s
    }

    /// The component holding the globally earliest pending event, by
    /// `(time, seq)`; `None` when every component is idle.
    pub fn earliest(&self) -> Option<CompKey> {
        self.comps
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.next_tick().map(|tick| (tick, CompKey(i))))
            .min_by_key(|&(tick, _)| tick)
            .map(|(_, key)| key)
    }

    /// Advances `key` past its earliest event; `None` when it is idle.
    pub fn advance(&mut self, key: CompKey) -> Option<(u128, Retired)> {
        let comp = &mut self.comps[key.0];
        let tick = comp.next_tick()?;
        Some((tick.0, comp.advance(tick)))
    }

    pub fn lanes(&self, key: CompKey) -> &DeviceLanes {
        match &self.comps[key.0] {
            Comp::Lanes(c) => c,
            _ => unreachable!("key does not index a DeviceLanes component"),
        }
    }

    pub fn lanes_mut(&mut self, key: CompKey) -> &mut DeviceLanes {
        match &mut self.comps[key.0] {
            Comp::Lanes(c) => c,
            _ => unreachable!("key does not index a DeviceLanes component"),
        }
    }

    pub fn sync_mut(&mut self, key: CompKey) -> &mut SyncLink {
        match &mut self.comps[key.0] {
            Comp::Sync(c) => c,
            _ => unreachable!("key does not index a SyncLink component"),
        }
    }

    pub fn resources(&self, key: CompKey) -> &ResourceSoA {
        match &self.comps[key.0] {
            Comp::Resources(c) => c,
            _ => unreachable!("key does not index a ResourceSoA component"),
        }
    }

    pub fn resources_mut(&mut self, key: CompKey) -> &mut ResourceSoA {
        match &mut self.comps[key.0] {
            Comp::Resources(c) => c,
            _ => unreachable!("key does not index a ResourceSoA component"),
        }
    }

    pub fn observer(&mut self, key: CompKey) -> &mut Observer<'o> {
        match &mut self.comps[key.0] {
            Comp::Observer(c) => c,
            _ => unreachable!("key does not index the Observer component"),
        }
    }
}

/// Deterministic merge of per-partition timelines into one global
/// timeline.
///
/// Each partition ran one workload in isolation (tagged locally as
/// workload 0); entry `parts[p]` is retagged with workload index `p` and
/// the streams are merged by quantized start time, tie-broken by
/// partition index. Per-partition entries arrive in commit order with
/// non-decreasing starts, and the sort is stable, so same-timestamp
/// entries keep their within-partition commit order — the merged timeline
/// is a pure function of the per-partition timelines, independent of how
/// many threads produced them.
pub(crate) fn merge_partition_timelines(
    parts: Vec<Vec<super::observe::TimelineEntry>>,
) -> Vec<super::observe::TimelineEntry> {
    let mut merged: Vec<super::observe::TimelineEntry> =
        Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for (p, part) in parts.into_iter().enumerate() {
        merged.extend(part.into_iter().map(|mut e| {
            e.workload = p;
            e
        }));
    }
    merged.sort_by_key(|e| (Clock::to_fs(e.start), e.workload));
    merged
}

/// Statistic accumulator shared by every execution driver.
#[derive(Debug, Default)]
pub(crate) struct Accumulator {
    op_raw: Seconds,
    dm_raw: Seconds,
    pub sync_raw: Seconds,
    energy: Joules,
    cpu_busy: Seconds,
    progr_busy: Seconds,
    ff_unit_seconds: f64,
}

impl Accumulator {
    pub fn add(&mut self, planned: &PlannedOp) {
        self.op_raw += planned.op_part;
        self.dm_raw += planned.dm_part;
        self.sync_raw += planned.sync_part;
        self.energy += planned.energy;
        if planned.uses_cpu {
            self.cpu_busy += planned.duration;
        }
        if planned.uses_progr {
            self.progr_busy += planned.duration;
        }
        self.ff_unit_seconds += planned.ff_units as f64 * planned.ff_busy.seconds();
    }

    pub fn into_report(
        self,
        planner: &Planner,
        steps: usize,
        makespan: Seconds,
    ) -> ExecutionReport {
        let cfg = &planner.cfg;
        let ff_utilization = if makespan.seconds() > 0.0 && cfg.mode != SystemMode::CpuOnly {
            (self.ff_unit_seconds / (cfg.ff_units as f64 * makespan.seconds())).min(1.0)
        } else {
            0.0
        };
        let mut builder = ReportBuilder::new(cfg.name.clone(), steps)
            .makespan(makespan)
            .raw_parts(self.op_raw, self.dm_raw, self.sync_raw)
            .device_energy(self.energy)
            .ff_utilization(ff_utilization)
            .device_busy("CPU", self.cpu_busy)
            .device_busy("Progr PIM", self.progr_busy)
            .device_busy(
                "Fixed PIM",
                Seconds::new(self.ff_unit_seconds / cfg.ff_units.max(1) as f64),
            );
        // PIM configurations keep the host package powered (it hosts the
        // TensorFlow runtime and the OpenCL host program) even while PIMs
        // compute; CPU-only runs already bill the CPU per op.
        if cfg.mode != SystemMode::CpuOnly {
            builder = builder.charge_host_idle();
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SystemPreset};
    use pim_common::units::Bytes;
    use pim_tensor::cost::{CostProfile, OffloadClass};

    #[test]
    fn event_heap_orders_by_time_then_fifo() {
        let mut heap: EventHeap<usize> = EventHeap::new();
        heap.push(Seconds::new(2e-6), 0, 0);
        heap.push(Seconds::new(1e-6), 1, 1);
        heap.push(Seconds::new(1e-6), 2, 2);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn clock_quantization_round_trips() {
        let t = Seconds::new(1.2345e-3);
        let fs = Clock::to_fs(t);
        assert!((Clock::from_fs(fs).seconds() - t.seconds()).abs() < 1e-15);
        let mut clock = Clock::new();
        clock.advance(Seconds::new(1.0));
        clock.jump_to_fs(Clock::to_fs(Seconds::new(2.0)));
        assert_eq!(clock.now(), Seconds::new(2.0));
    }

    #[test]
    fn resource_soa_mirrors_the_fig7_registers() {
        let planner = Planner::new(EngineConfig::preset(SystemPreset::Hetero));
        let mut state = ResourceSoA::new(&planner);
        assert!(state.registers().all_banks_idle());
        assert!(!state.registers().progr_busy());

        let cost = CostProfile::compute(
            1e9,
            1e9,
            0.0,
            Bytes::new(1e7),
            Bytes::new(1e7),
            OffloadClass::FullyMulAdd,
            128,
        );
        let kind = PlanKind::FixedWhole {
            rc_runtime: true,
            units: 128,
        };
        let planned = planner.plan_cost(kind, &cost);
        let units = state.acquire(kind, &planned).unwrap();
        assert_eq!(units, 128);
        assert_eq!(
            state.registers().idle_bank_count(),
            planner.pool_cfg().total_units - 128
        );
        assert_eq!(
            state.availability().ff_free,
            planner.pool_cfg().total_units - 128
        );

        state.release(units, false, false);
        assert!(state.registers().all_banks_idle());
    }

    #[test]
    fn progr_slots_saturate_the_busy_bit() {
        let planner = Planner::new(EngineConfig::preset(SystemPreset::Hetero));
        let mut state = ResourceSoA::new(&planner);
        let cost = CostProfile::compute(
            0.0,
            0.0,
            1e8,
            Bytes::new(1e6),
            Bytes::new(1e6),
            OffloadClass::NonMulAdd,
            0,
        );
        let planned = planner.plan_cost(PlanKind::Progr, &cost);
        for _ in 0..PROGR_KERNEL_SLOTS {
            assert!(state.availability().progr_free);
            state.acquire(PlanKind::Progr, &planned).unwrap();
        }
        assert!(!state.availability().progr_free);
        assert!(state.registers().progr_busy());
        state.release(0, false, true);
        assert!(state.availability().progr_free);
        assert!(!state.registers().progr_busy());
    }

    fn stub_record(start: Seconds) -> InFlight {
        InFlight {
            wl: 0,
            step: 0,
            op: 0,
            kind: PlanKind::Cpu,
            charge: Planner::new(EngineConfig::preset(SystemPreset::CpuOnly)).plan_cost(
                PlanKind::Cpu,
                &CostProfile::compute(
                    1e6,
                    0.0,
                    0.0,
                    Bytes::new(1e3),
                    Bytes::new(1e3),
                    OffloadClass::NonMulAdd,
                    0,
                ),
            ),
            units: 0,
            attempt: 0,
            outcome: AttemptOutcome::Completed,
            start,
            inflight_at_dispatch: 1,
            candidate: false,
            live: true,
        }
    }

    #[test]
    fn slab_merges_components_by_time_then_seq() {
        // Two event-bearing components with interleaved, partly
        // simultaneous events: the slab must retire them in global
        // (time, seq) order, i.e. FIFO among simultaneous events even
        // across components.
        let mut slab = ComponentSlab::new(crate::fuzz::TieBreak::Stable);
        let lanes = slab.register(Comp::Lanes(DeviceLanes::new()));
        let sync = slab.register(Comp::Sync(SyncLink::new()));

        let t1 = Seconds::new(1e-6);
        let t2 = Seconds::new(2e-6);
        let seq = slab.next_seq();
        slab.lanes_mut(lanes)
            .dispatch(t2, stub_record(Seconds::ZERO), seq); // seq 0 @ t2
        let seq = slab.next_seq();
        slab.sync_mut(sync).schedule_retry(t1, 0, 0, 7, seq); // seq 1 @ t1
        let seq = slab.next_seq();
        slab.lanes_mut(lanes)
            .dispatch(t1, stub_record(Seconds::ZERO), seq); // seq 2 @ t1
        let seq = slab.next_seq();
        slab.sync_mut(sync).schedule_strike(t1, 3, seq); // seq 3 @ t1

        let mut order = Vec::new();
        while let Some(key) = slab.earliest() {
            let (_, retired) = slab.advance(key).unwrap();
            order.push(match retired {
                Retired::Retry { op, .. } => format!("retry{op}"),
                Retired::Strike(i) => format!("strike{i}"),
                Retired::Op(_) => "op".to_string(),
                other => panic!("unexpected retirement {other:?}"),
            });
        }
        assert_eq!(order, vec!["retry7", "op", "strike3", "op"]);
    }

    #[test]
    fn partition_merge_orders_same_timestamp_entries_stably() {
        use super::super::observe::{ResourceClass, TimelineEntry};
        let entry = |start: f64, op: usize| TimelineEntry {
            workload: 0,
            step: 0,
            op,
            start: Seconds::new(start),
            end: Seconds::new(start + 1e-6),
            resource: ResourceClass::Cpu,
            ff_units: 0,
            attempt: 0,
            outcome: AttemptOutcome::Completed,
        };
        // Both partitions emit an entry at t=1e-6 — the tie must break by
        // partition index, and within a partition commit order must hold.
        let part0 = vec![entry(0.0, 0), entry(1e-6, 1), entry(1e-6, 2)];
        let part1 = vec![entry(1e-6, 0), entry(2e-6, 1)];
        let merged = merge_partition_timelines(vec![part0, part1]);
        let order: Vec<(usize, usize)> = merged.iter().map(|e| (e.workload, e.op)).collect();
        assert_eq!(
            order,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)],
            "same-timestamp entries must order by (partition, commit order)"
        );
        // Retagging: every entry carries its partition index.
        assert!(merged.iter().enumerate().all(|(i, e)| e.workload < 2
            && merged[..i]
                .iter()
                .all(|p| Clock::to_fs(p.start) < Clock::to_fs(e.start)
                    || (Clock::to_fs(p.start) == Clock::to_fs(e.start)
                        && p.workload <= e.workload))));
    }

    #[test]
    fn stale_lane_events_reclaim_their_slot() {
        let mut slab = ComponentSlab::new(crate::fuzz::TieBreak::Stable);
        let lanes = slab.register(Comp::Lanes(DeviceLanes::new()));
        let seq = slab.next_seq();
        slab.lanes_mut(lanes)
            .dispatch(Seconds::new(1e-6), stub_record(Seconds::ZERO), seq);
        slab.lanes_mut(lanes).kill(0);
        let (_, retired) = slab.advance(slab.earliest().unwrap()).unwrap();
        assert!(matches!(retired, Retired::Stale));
        // The freed slot is recycled by the next dispatch.
        let seq = slab.next_seq();
        slab.lanes_mut(lanes)
            .dispatch(Seconds::new(2e-6), stub_record(Seconds::new(1e-6)), seq);
        let (_, retired) = slab.advance(slab.earliest().unwrap()).unwrap();
        assert!(matches!(retired, Retired::Op(_)));
        assert!(slab.earliest().is_none());
    }
}
