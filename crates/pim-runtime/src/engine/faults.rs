//! The engine's recovery policy over the [`pim_hw::faults`] fault model.
//!
//! `pim_hw::faults` describes *what goes wrong* as pure data; this module
//! owns *how the runtime reacts*:
//!
//! * **transients** — bounded retry with deterministic exponential backoff
//!   ([`MAX_ATTEMPTS`], [`backoff_after`]); the final allowed attempt
//!   always succeeds, so forward progress is guaranteed,
//! * **link timeouts** — the host waits out [`LINK_TIMEOUT`] past the
//!   expected completion, then re-dispatches immediately,
//! * **permanent faults** — in-flight work on the lost resource is killed
//!   (charged for the time it actually ran) and re-dispatched; the
//!   placement planner re-ranks survivors along the paper's
//!   fixed → programmable → host chain,
//! * **stragglers** — wall-clock parts stretch by the window's multiplier;
//!   energy is unchanged (the device computes the same work, just slower).
//!
//! Every decision is a pure function of the plan and the op coordinates,
//! so the same seed yields byte-identical reports, timelines, and traces.
//!
//! In the component event core (`engine::components`), the *deferred*
//! fault events this policy produces — backoff retries and scheduled
//! permanent strikes — live on the `SyncLink` component's heap and retire
//! through the same shared `(time, seq)` next-tick merge as device-lane
//! completions, so fault recovery cannot perturb event order relative to
//! the old single-heap core.

use super::placement::PlannedOp;
use pim_common::units::Seconds;
use pim_hw::faults::{FaultLane, FaultPlan, FaultTarget, PermanentFault};
use serde::Serialize;

/// Upper bound on attempts per op instance. Attempts `0..MAX_ATTEMPTS-1`
/// may fault; the last one always completes (the host can always run the
/// op itself), bounding retry storms deterministically.
pub const MAX_ATTEMPTS: u32 = 4;

/// Backoff charged after the first failed attempt; doubles per attempt.
pub const BACKOFF_BASE: Seconds = Seconds::new(50e-6);

/// How long the host waits past an op's expected completion before
/// declaring the host↔PIM completion message lost and re-dispatching.
pub const LINK_TIMEOUT: Seconds = Seconds::new(200e-6);

/// Deterministic exponential backoff after failed attempt `attempt`.
pub fn backoff_after(attempt: u32) -> Seconds {
    BACKOFF_BASE * (1u64 << attempt.min(16)) as f64
}

/// How one recorded attempt of an op instance ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AttemptOutcome {
    /// The attempt ran to completion (the only outcome in fault-free runs).
    Completed,
    /// A transient fault aborted the attempt mid-flight; it is retried
    /// after exponential backoff.
    Transient,
    /// The completion message was lost; the host re-dispatched after
    /// [`LINK_TIMEOUT`].
    TimedOut,
    /// A permanent fault quarantined the resource under the op; the
    /// instance was re-dispatched on the survivors.
    Killed,
}

/// The fault lane an entry's resources live on, if any — pure-CPU
/// placements never fault (the host is the reliability anchor).
pub fn lane_for(ff_units: usize, uses_progr: bool) -> Option<FaultLane> {
    if ff_units > 0 {
        Some(FaultLane::Fixed)
    } else if uses_progr {
        Some(FaultLane::Progr)
    } else {
        None
    }
}

/// What the plan decrees for one attempt, decided at dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Fate {
    Complete,
    /// Fails after this fraction of the attempt's duration.
    Transient(f64),
    TimedOut,
}

/// Decides an attempt's fate. The last allowed attempt always completes.
pub(crate) fn decide(
    plan: &FaultPlan,
    lane: Option<FaultLane>,
    wl: usize,
    step: usize,
    op: usize,
    attempt: u32,
) -> Fate {
    let Some(lane) = lane else {
        return Fate::Complete;
    };
    if attempt + 1 >= MAX_ATTEMPTS {
        return Fate::Complete;
    }
    if plan.transient_fails(lane, wl, step, op, attempt) {
        return Fate::Transient(plan.fail_point(wl, step, op, attempt));
    }
    if plan.times_out(lane, wl, step, op, attempt) {
        return Fate::TimedOut;
    }
    Fate::Complete
}

/// Scales every part of a planned op — time *and* energy — for partial
/// charges of aborted attempts (the device burned power only while it ran).
pub(crate) fn scale_planned(p: &PlannedOp, f: f64) -> PlannedOp {
    PlannedOp {
        duration: p.duration * f,
        op_part: p.op_part * f,
        dm_part: p.dm_part * f,
        sync_part: p.sync_part * f,
        energy: p.energy * f,
        ff_busy: p.ff_busy * f,
        ..*p
    }
}

/// Stretches only the wall-clock parts by a straggler multiplier; the
/// device performs the same work, so energy is unchanged.
pub(crate) fn stretch_planned(p: &PlannedOp, f: f64) -> PlannedOp {
    PlannedOp {
        duration: p.duration * f,
        op_part: p.op_part * f,
        dm_part: p.dm_part * f,
        sync_part: p.sync_part * f,
        ff_busy: p.ff_busy * f,
        ..*p
    }
}

/// Extends a timed-out attempt by the detection window: the resources stay
/// held (the host cannot reclaim what it cannot reach) and the wait is
/// synchronization time.
pub(crate) fn extend_timeout(p: &PlannedOp) -> PlannedOp {
    PlannedOp {
        duration: p.duration + LINK_TIMEOUT,
        sync_part: p.sync_part + LINK_TIMEOUT,
        ..*p
    }
}

/// The fault state one driver run executes against: the effective plan
/// plus its strike schedule split into before-run and mid-run parts.
pub(crate) struct FaultContext {
    pub plan: FaultPlan,
    /// Fixed-function units quarantined before the run starts (clamped to
    /// the pool by the caller).
    pub initial_ff: usize,
    /// The programmable PIM is quarantined before the run starts.
    pub initial_progr_dead: bool,
    /// Mid-run fail-stop faults (`at > 0`), in strike order.
    pub strikes: Vec<PermanentFault>,
}

impl FaultContext {
    pub fn new(plan: &FaultPlan, ff_units: usize) -> Self {
        FaultContext {
            initial_ff: plan.initial_ff_quarantine().min(ff_units),
            initial_progr_dead: plan.progr_quarantined_initially(),
            strikes: plan
                .permanents
                .iter()
                .filter(|p| p.at > Seconds::ZERO)
                .copied()
                .collect(),
            plan: plan.clone(),
        }
    }

    /// Does this strike take down the resources a running op holds?
    pub fn strike_kills(
        target: FaultTarget,
        ff_units: usize,
        uses_progr: bool,
        idle_ff: usize,
    ) -> bool {
        match target {
            FaultTarget::FixedUnits(n) => ff_units > 0 && n > idle_ff,
            FaultTarget::ProgrPim => uses_progr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        assert_eq!(backoff_after(0), BACKOFF_BASE);
        assert_eq!(backoff_after(1), BACKOFF_BASE * 2.0);
        assert_eq!(backoff_after(3), BACKOFF_BASE * 8.0);
    }

    #[test]
    fn last_attempt_always_completes() {
        // A plan that fails everything still cannot starve an op: the
        // final attempt completes regardless of the draw.
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::none()
        };
        for attempt in 0..MAX_ATTEMPTS - 1 {
            assert!(matches!(
                decide(&plan, Some(FaultLane::Fixed), 0, 0, 0, attempt),
                Fate::Transient(_)
            ));
        }
        assert!(matches!(
            decide(&plan, Some(FaultLane::Fixed), 0, 0, 0, MAX_ATTEMPTS - 1),
            Fate::Complete
        ));
        // Pure-CPU placements never fault.
        assert!(matches!(decide(&plan, None, 0, 0, 0, 0), Fate::Complete));
    }

    #[test]
    fn fault_context_splits_initial_from_mid_run() {
        let plan = FaultPlan::quarantine_ff_at_start(500)
            .with_permanent(Seconds::new(1e-3), FaultTarget::ProgrPim);
        let ctx = FaultContext::new(&plan, 444);
        assert_eq!(ctx.initial_ff, 444, "initial quarantine clamps to the pool");
        assert!(!ctx.initial_progr_dead);
        assert_eq!(ctx.strikes.len(), 1);
        assert_eq!(ctx.strikes[0].target, FaultTarget::ProgrPim);
    }

    #[test]
    fn strike_kill_rule_spares_ops_covered_by_idle_units() {
        // 100 units lost, 150 idle: running work survives.
        assert!(!FaultContext::strike_kills(
            FaultTarget::FixedUnits(100),
            64,
            false,
            150
        ));
        // 100 lost, 50 idle: someone holding units must die.
        assert!(FaultContext::strike_kills(
            FaultTarget::FixedUnits(100),
            64,
            false,
            50
        ));
        assert!(FaultContext::strike_kills(
            FaultTarget::ProgrPim,
            0,
            true,
            444
        ));
        assert!(!FaultContext::strike_kills(
            FaultTarget::ProgrPim,
            64,
            false,
            0
        ));
    }
}
