//! Placement policy: the §III-C scheduling principles over the [`Device`]
//! abstraction.
//!
//! The [`Planner`] owns the device models of one system configuration and
//! answers two questions for the event core:
//!
//! * [`Planner::choose`] — *where* an op runs given current availability
//!   (the three scheduling principles, plus the RC and OP toggles), and
//! * [`Planner::plan_cost`] — *what it costs* there: duration, op/dm/sync
//!   decomposition, energy, and the resources it holds.
//!
//! Device timing always flows through [`Device::estimate`]; the one
//! exception is the fixed-function pool's partial-grant path
//! ([`FixedFunctionPool::estimate_ma`]), which needs the granted unit
//! count.

use super::events::ResourceClass;
use super::{EngineConfig, ProgrBackend, SystemMode};
use crate::stats::normalized_parts;
use crate::sync::{
    kernel_calls, HOST_CALL, HOST_FF_SYNC, HOST_PROGR_SYNC, PIM_CALL, PIM_INTERNAL_SYNC,
};
use pim_common::fingerprint::debug_hash;
use pim_common::units::{Joules, Seconds};
use pim_hw::arm::{ProgrammablePim, ProgrammablePool};
use pim_hw::cpu::CpuDevice;
use pim_hw::device::Device;
use pim_hw::fixed::{FixedFunctionPool, FixedPoolConfig};
use pim_hw::params::ComputeEstimate;
use pim_isa::interp::Machine;
use pim_isa::lower::{lower_kernel, lower_recursive};
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::KernelSource;
use pim_tensor::cost::{CostProfile, OffloadClass};
use std::collections::HashMap;
use std::sync::Mutex;

/// CPU-side runtime cost of one scheduling decision (querying the busy
/// registers, picking a device, enqueueing) — the price of the dynamic
/// scheduler itself, paid only by the heterogeneous configuration.
pub(crate) const PLACEMENT_DECISION: Seconds = Seconds::new(25e-6);

/// Where an operation is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanKind {
    Cpu,
    ProgrPool,
    Progr,
    FixedWhole { rc_runtime: bool, units: usize },
    HostSplit { units: usize },
    Recursive { units: usize },
}

/// Fully costed placement of one op instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlannedOp {
    pub duration: Seconds,
    pub op_part: Seconds,
    pub dm_part: Seconds,
    pub sync_part: Seconds,
    pub energy: Joules,
    pub ff_units: usize,
    /// Time the granted fixed-function units actually compute (utilization
    /// accounting counts useful busy time, not reservation time).
    pub ff_busy: Seconds,
    pub uses_cpu: bool,
    pub uses_progr: bool,
}

/// Human-readable description of a placement — the vocabulary shared by
/// [`super::Engine::plan_preview`] rows and the trace spans' `placement`
/// argument.
pub(crate) fn describe(kind: PlanKind) -> String {
    match kind {
        PlanKind::Cpu => "CPU".to_string(),
        PlanKind::ProgrPool => "Progr PIM pool".to_string(),
        PlanKind::Progr => "Progr PIM".to_string(),
        PlanKind::FixedWhole { rc_runtime, units } => {
            format!(
                "Fixed PIM ({}, {units} units)",
                if rc_runtime { "rc" } else { "host" }
            )
        }
        PlanKind::HostSplit { units } => format!("CPU + Fixed PIM ({units} units)"),
        PlanKind::Recursive { units } => {
            format!("Recursive: Progr PIM + Fixed PIM ({units} units)")
        }
    }
}

/// Which exclusive resource class a planned op occupies.
pub(crate) fn resource_class(planned: &PlannedOp) -> ResourceClass {
    match (planned.uses_cpu, planned.uses_progr, planned.ff_units > 0) {
        (true, _, true) => ResourceClass::CpuAndFixed,
        (true, _, false) => ResourceClass::Cpu,
        (false, true, true) => ResourceClass::ProgrAndFixed,
        (false, true, false) => ResourceClass::Progr,
        _ => ResourceClass::Fixed,
    }
}

/// Snapshot of free resources at a scheduling decision.
///
/// `ff_alive`/`progr_alive` separate *busy* from *gone*: a busy resource
/// is worth waiting for, a quarantined one never comes back, and the
/// graceful-degradation branches of [`Planner::choose`] fire only on the
/// latter — so fault-free decisions are untouched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Availability {
    pub cpu_free: bool,
    pub progr_free: bool,
    pub ff_free: usize,
    /// Fixed-function units not permanently quarantined (free or busy).
    pub ff_alive: usize,
    /// The programmable PIM has not been permanently quarantined.
    pub progr_alive: bool,
}

impl Availability {
    /// Everything free (uncontended previews and serialized execution).
    pub fn all_free(ff_units: usize) -> Self {
        Availability {
            cpu_free: true,
            progr_free: true,
            ff_free: ff_units,
            ff_alive: ff_units,
            progr_alive: true,
        }
    }
}

/// Splits a cost profile into its multiply/add core and the remainder.
fn split_cost(cost: &CostProfile) -> (CostProfile, CostProfile) {
    let total = cost.total_flops().max(1.0);
    let ma_frac = cost.ma_flops() / total;
    let ma = CostProfile {
        muls: cost.muls,
        adds: cost.adds,
        other_flops: 0.0,
        control_ops: cost.control_ops * ma_frac,
        bytes_read: cost.bytes_read * ma_frac,
        bytes_written: cost.bytes_written * ma_frac,
        pattern: cost.pattern,
        ff_parallelism: cost.ff_parallelism,
        class: OffloadClass::FullyMulAdd,
    };
    let rest = CostProfile {
        muls: 0.0,
        adds: 0.0,
        other_flops: cost.other_flops,
        control_ops: cost.control_ops * (1.0 - ma_frac),
        bytes_read: cost.bytes_read * (1.0 - ma_frac),
        bytes_written: cost.bytes_written * (1.0 - ma_frac),
        pattern: cost.pattern,
        ff_parallelism: 0,
        class: OffloadClass::NonMulAdd,
    };
    (ma, rest)
}

/// ISA-backed programmable-PIM costing (DESIGN.md §4.12): each kernel the
/// planner would place on the ARM core is lowered to a `pim_isa` program
/// and interpreted; issue cycles and `ld`/`st` traffic replace the
/// closed-form compute/memory terms. Results are memoized per cost
/// profile — the engine re-plans the same op every step — and lowering
/// failures (non-integral mul/add counts from synthetic costs) fall back
/// to the analytic estimate so planning stays infallible.
struct IsaEstimator {
    /// Machine model of the full ARM processor.
    machine: Machine,
    /// Machine model of the scheduled-mode core pair.
    machine_pair: Machine,
    memo: Mutex<HashMap<u64, ComputeEstimate>>,
}

impl IsaEstimator {
    fn new(progr: &ProgrammablePim, progr_pair: &ProgrammablePim) -> Self {
        IsaEstimator {
            machine: Self::machine_for(progr),
            machine_pair: Self::machine_for(progr_pair),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Derives the machine model, with `call_fixed` issue cycles pinned to
    /// the runtime's `PIM_CALL` latency at the device's actual clock (so
    /// frequency-scaled stacks keep the same wall-clock call cost).
    fn machine_for(pim: &ProgrammablePim) -> Machine {
        let machine = Machine::for_arm(pim);
        let cycles = (PIM_CALL.seconds() * machine.clock_hz).round() as u64;
        machine.with_call_issue_cycles(cycles)
    }

    fn machine(&self, pair: bool) -> &Machine {
        if pair {
            &self.machine_pair
        } else {
            &self.machine
        }
    }

    fn memoized(
        &self,
        key: u64,
        compute: impl FnOnce() -> Option<ComputeEstimate>,
    ) -> Option<ComputeEstimate> {
        if let Some(est) = self.memo.lock().expect("isa memo poisoned").get(&key) {
            return Some(*est);
        }
        let est = compute()?;
        self.memo
            .lock()
            .expect("isa memo poisoned")
            .insert(key, est);
        Some(est)
    }

    /// Whole-kernel estimate for a [`PlanKind::Progr`] placement: the op's
    /// kernel runs in-line on the ARM core, mul/add regions included.
    fn estimate_whole(
        &self,
        pim: &ProgrammablePim,
        pair: bool,
        cost: &CostProfile,
    ) -> Option<ComputeEstimate> {
        self.memoized(debug_hash(&("whole", pair, cost)), || {
            let kernel = KernelSource::from_cost("op", cost);
            let program = lower_kernel(&kernel, cost).ok()?;
            let machine = self.machine(pair);
            let summary = machine.run(&program).ok()?;
            Some(pim_isa::estimate_interpreted(
                &summary,
                machine,
                pim.params(),
                cost.pattern,
            ))
        })
    }

    /// ARM-side estimate for a [`PlanKind::Recursive`] placement: binary
    /// #4 (extracted regions as `call_fixed` sites) interpreted with the
    /// non-extracted share of the traffic; call-issue cycles land in the
    /// compute term, so the caller must not add `PIM_CALL` again.
    fn estimate_recursive(
        &self,
        pim: &ProgrammablePim,
        pair: bool,
        cost: &CostProfile,
        rest: &CostProfile,
    ) -> Option<ComputeEstimate> {
        self.memoized(debug_hash(&("recursive", pair, cost)), || {
            let set = BinarySet::generate(KernelSource::from_cost("op", cost)).ok()?;
            let program = lower_recursive(&set, rest).ok()?;
            let machine = self.machine(pair);
            let summary = machine.run(&program).ok()?;
            Some(pim_isa::estimate_interpreted(
                &summary,
                machine,
                pim.params(),
                cost.pattern,
            ))
        })
    }
}

/// The placement policy plus the device models it schedules onto.
pub(crate) struct Planner {
    pub cfg: EngineConfig,
    cpu: CpuDevice,
    progr: ProgrammablePim,
    /// Core pair used per kernel in scheduled mode: the programmable-PIM
    /// runtime dedicates two cores to each in-flight kernel so two
    /// recursive kernels can proceed concurrently.
    progr_pair: ProgrammablePim,
    progr_pool: ProgrammablePool,
    pool_cfg: FixedPoolConfig,
    /// Idle pool reused for timing estimates ([`FixedFunctionPool::estimate_ma`]
    /// reads only the configuration, never allocation state) — built once so
    /// the hot path does not reconstruct a pool per planned op.
    est_pool: FixedFunctionPool,
    /// Present when `cfg.progr_backend` is [`ProgrBackend::Isa`].
    isa: Option<IsaEstimator>,
}

impl Planner {
    /// Builds the device complement for a configuration. The host CPU is
    /// whatever the configuration carries (`EngineConfig::host`), not a
    /// hardcoded part.
    pub fn new(cfg: EngineConfig) -> Self {
        let cpu = cfg.host.clone();
        let progr = ProgrammablePim::cortex_a9(&cfg.stack, cfg.arm_cores);
        let progr_pair = ProgrammablePim::cortex_a9(&cfg.stack, cfg.arm_cores.div_ceil(2).max(1));
        let progr_pool = ProgrammablePool::unlimited(&cfg.stack);
        let pool_cfg = FixedPoolConfig::with_units(&cfg.stack, cfg.ff_units);
        let est_pool = FixedFunctionPool::new(pool_cfg.clone());
        let isa = (cfg.progr_backend == ProgrBackend::Isa)
            .then(|| IsaEstimator::new(&progr, &progr_pair));
        Planner {
            cfg,
            cpu,
            progr,
            progr_pair,
            progr_pool,
            pool_cfg,
            est_pool,
            isa,
        }
    }

    /// The host CPU device (profiling runs against it).
    pub fn cpu(&self) -> &CpuDevice {
        &self.cpu
    }

    /// The fixed-function pool configuration of this complement.
    pub fn pool_cfg(&self) -> &FixedPoolConfig {
        &self.pool_cfg
    }

    /// The ARM device serving one kernel: the whole processor when
    /// execution is serialized, a core pair when the scheduler runs two
    /// kernels concurrently.
    fn arm_device(&self) -> &ProgrammablePim {
        if self.cfg.operation_pipeline {
            &self.progr_pair
        } else {
            &self.progr
        }
    }

    /// Timing/energy of a whole kernel on the ARM core: interpreted when
    /// the ISA backend is selected (and the kernel lowers), analytic
    /// otherwise.
    fn progr_estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        let pair = self.cfg.operation_pipeline;
        if let Some(isa) = &self.isa {
            if let Some(est) = isa.estimate_whole(self.arm_device(), pair, cost) {
                return est;
            }
        }
        self.arm_device().estimate(cost)
    }

    /// ARM-side estimate and busy time for the recursive scheme. The
    /// analytic path charges `PIM_CALL` per kernel call on top of the
    /// device busy time; the ISA path interprets binary #4, whose
    /// `call_fixed` issue cycles already carry that cost.
    fn recursive_arm_estimate(
        &self,
        cost: &CostProfile,
        ma: &CostProfile,
        rest: &CostProfile,
    ) -> (ComputeEstimate, Seconds) {
        let pair = self.cfg.operation_pipeline;
        if let Some(isa) = &self.isa {
            if let Some(est) = isa.estimate_recursive(self.arm_device(), pair, cost, rest) {
                return (est, est.compute_time.max(est.memory_time));
            }
        }
        let est = self.arm_device().estimate(rest);
        let busy =
            est.compute_time.max(est.memory_time) + PIM_CALL * kernel_calls(ma.ma_flops()) as f64;
        (est, busy)
    }

    /// Host-side kernel calls are cheaper on the hetero hardware even
    /// without recursive kernels: the programmable PIM drives completion
    /// synchronization, avoiding frequent interrupts to the CPU (§III-B).
    fn host_call_factor(&self) -> f64 {
        if self.cfg.mode == SystemMode::Hetero {
            0.75
        } else {
            1.0
        }
    }

    /// Costs a placement fully: duration, breakdown, energy, holds.
    pub fn plan_cost(&self, kind: PlanKind, cost: &CostProfile) -> PlannedOp {
        match kind {
            PlanKind::Cpu => {
                let est = self.cpu.estimate(cost);
                let busy = est.compute_time.max(est.memory_time);
                let (op, dm, sync) = normalized_parts(
                    busy + est.dispatch_time,
                    est.compute_time,
                    busy - est.compute_time,
                    est.dispatch_time,
                );
                PlannedOp {
                    duration: busy + est.dispatch_time,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy,
                    ff_units: 0,
                    ff_busy: Seconds::ZERO,
                    uses_cpu: true,
                    uses_progr: false,
                }
            }
            PlanKind::ProgrPool | PlanKind::Progr => {
                let est = if kind == PlanKind::ProgrPool {
                    self.progr_pool.estimate(cost)
                } else {
                    self.progr_estimate(cost)
                };
                let busy = est.compute_time.max(est.memory_time);
                let sync_raw = est.dispatch_time + HOST_PROGR_SYNC;
                let duration = busy + sync_raw;
                let (op, dm, sync) = normalized_parts(
                    duration,
                    est.compute_time,
                    busy - est.compute_time,
                    sync_raw,
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy,
                    ff_units: 0,
                    ff_busy: Seconds::ZERO,
                    uses_cpu: false,
                    uses_progr: true,
                }
            }
            PlanKind::FixedWhole { rc_runtime, units } => {
                let est = self.est_pool.estimate_ma(cost, units, !rc_runtime);
                let busy = est.compute_time.max(est.memory_time);
                let calls = kernel_calls(cost.ma_flops()) as f64;
                let (duration, sync_raw, host_energy) = if rc_runtime {
                    let call_time = PIM_CALL * calls;
                    let duration = busy.max(call_time) + PIM_INTERNAL_SYNC;
                    (duration, duration - busy, Joules::ZERO)
                } else {
                    let call_time = HOST_CALL * self.host_call_factor() * calls + HOST_FF_SYNC;
                    // The host orchestrates synchronously: its cycles are
                    // burned, and the op extends by the full call time.
                    let duration = busy + call_time;
                    (duration, call_time, self.cpu.dynamic_power() * call_time)
                };
                let (op, dm, sync) = normalized_parts(
                    duration,
                    est.compute_time,
                    busy - est.compute_time,
                    sync_raw,
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: est.energy + host_energy,
                    ff_units: units,
                    ff_busy: busy,
                    uses_cpu: false,
                    // Dispatch through the progr runtime only enqueues the
                    // kernel; it does not occupy an ARM core pair.
                    uses_progr: false,
                }
            }
            PlanKind::HostSplit { units } => {
                let (ma, rest) = split_cost(cost);
                let ff = self.est_pool.estimate_ma(&ma, units, true);
                let host = self.cpu.estimate(&rest);
                let ff_busy = ff.compute_time.max(ff.memory_time);
                let host_busy = host.compute_time.max(host.memory_time);
                let call_time =
                    HOST_CALL * self.host_call_factor() * kernel_calls(ma.ma_flops()) as f64
                        + HOST_FF_SYNC;
                let duration = ff_busy + host_busy + call_time;
                let (op, dm, sync) = normalized_parts(
                    duration,
                    ff.compute_time + host.compute_time,
                    (ff_busy - ff.compute_time) + (host_busy - host.compute_time),
                    call_time,
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: ff.energy + host.energy + self.cpu.dynamic_power() * call_time,
                    ff_units: units,
                    ff_busy,
                    uses_cpu: true,
                    uses_progr: false,
                }
            }
            PlanKind::Recursive { units } => {
                let (ma, rest) = split_cost(cost);
                let ff = self.est_pool.estimate_ma(&ma, units, false);
                let (arm, arm_busy) = self.recursive_arm_estimate(cost, &ma, &rest);
                let ff_busy = ff.compute_time.max(ff.memory_time);
                // Phases and fixed-function sub-kernels overlap inside the
                // single recursive kernel (Fig. 6).
                let duration = ff_busy.max(arm_busy) + PIM_INTERNAL_SYNC;
                let (op, dm, sync) = normalized_parts(
                    duration,
                    ff.compute_time + arm.compute_time,
                    (ff_busy - ff.compute_time)
                        + (arm.compute_time.max(arm.memory_time) - arm.compute_time),
                    duration - ff_busy.max(arm_busy),
                );
                PlannedOp {
                    duration,
                    op_part: op,
                    dm_part: dm,
                    sync_part: sync,
                    energy: ff.energy + arm.energy,
                    ff_units: units,
                    ff_busy,
                    uses_cpu: false,
                    uses_progr: true,
                }
            }
        }
    }

    /// Grant size for a fixed-function request under dynamic availability.
    fn ff_grant(parallelism: usize, free: usize) -> Option<usize> {
        let want = parallelism.max(1);
        let floor = want.min(64);
        if free >= floor {
            Some(want.min(free))
        } else {
            None
        }
    }

    /// Chooses a placement under the three scheduling principles, given
    /// current availability. `None` means "wait for resources".
    pub fn choose(
        &self,
        cost: &CostProfile,
        is_candidate: bool,
        restricted: bool,
        avail: Availability,
    ) -> Option<PlanKind> {
        let Availability {
            cpu_free,
            progr_free,
            ff_free,
            ff_alive,
            progr_alive,
        } = avail;
        if restricted {
            // Mixed-workload non-CNN rule: CPU or programmable PIM only.
            if cpu_free {
                return Some(PlanKind::Cpu);
            }
            if progr_free {
                return Some(PlanKind::Progr);
            }
            return None;
        }
        match self.cfg.mode {
            SystemMode::CpuOnly => cpu_free.then_some(PlanKind::Cpu),
            SystemMode::ProgrOnly => {
                if progr_free {
                    return Some(PlanKind::ProgrPool);
                }
                if !progr_alive {
                    // Degradation: the programmable complement is gone;
                    // the host is all that remains.
                    return cpu_free.then_some(PlanKind::Cpu);
                }
                None
            }
            SystemMode::FixedHost => match cost.class {
                OffloadClass::FullyMulAdd => {
                    if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                        if cpu_free {
                            // Host-driven dispatch occupies the CPU.
                            return Some(PlanKind::FixedWhole {
                                rc_runtime: false,
                                units,
                            });
                        }
                    }
                    cpu_free.then_some(PlanKind::Cpu)
                }
                OffloadClass::PartiallyMulAdd { .. } => {
                    if cpu_free {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            return Some(PlanKind::HostSplit { units });
                        }
                        return Some(PlanKind::Cpu);
                    }
                    None
                }
                _ => cpu_free.then_some(PlanKind::Cpu),
            },
            SystemMode::Hetero => {
                // Principle 3 (dependencies) is enforced by the event loop;
                // principles 1 and 2 order the preferences here.
                // Non-mul/add and data-movement ops belong to the
                // programmable PIM whenever it is idle, candidate or not
                // (principle 2: prefer PIMs over CPU).
                if matches!(
                    cost.class,
                    OffloadClass::NonMulAdd | OffloadClass::DataMovement
                ) {
                    if progr_free {
                        return Some(PlanKind::Progr);
                    }
                    return cpu_free.then_some(PlanKind::Cpu);
                }
                if !is_candidate {
                    // Class-1 ops (compute-intensive, not memory-intensive)
                    // "do not have to be offloaded to PIMs, but we can
                    // offload them when there are idling hardware units"
                    // (§II-A).
                    if cost.class == OffloadClass::FullyMulAdd {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            if self.cfg.recursive_kernels {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: true,
                                    units,
                                });
                            }
                            if cpu_free {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: false,
                                    units,
                                });
                            }
                        }
                    }
                    return cpu_free.then_some(PlanKind::Cpu);
                }
                // Heavy candidate ops with a fixed-function core wait for
                // the pool rather than falling back to the slow CPU: under
                // the operation pipeline another step's work keeps the CPU
                // and programmable PIM fed meanwhile. A *quarantined*
                // complement is different — it never comes back, so the
                // degradation branches re-rank the survivors along the
                // fixed → programmable → host chain instead of waiting.
                match cost.class {
                    OffloadClass::FullyMulAdd => {
                        if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                            if self.cfg.recursive_kernels {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: true,
                                    units,
                                });
                            }
                            if cpu_free {
                                return Some(PlanKind::FixedWhole {
                                    rc_runtime: false,
                                    units,
                                });
                            }
                        }
                        if Self::ff_grant(cost.ff_parallelism, ff_alive).is_none() {
                            // The pool can never serve this op again.
                            if progr_alive && progr_free {
                                return Some(PlanKind::Progr);
                            }
                            return cpu_free.then_some(PlanKind::Cpu);
                        }
                        if self.cfg.operation_pipeline {
                            None // wait for pool capacity
                        } else {
                            cpu_free.then_some(PlanKind::Cpu)
                        }
                    }
                    OffloadClass::PartiallyMulAdd { .. } => {
                        if self.cfg.recursive_kernels {
                            if progr_free {
                                if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                                    return Some(PlanKind::Recursive { units });
                                }
                            }
                        } else if cpu_free {
                            if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                                return Some(PlanKind::HostSplit { units });
                            }
                        }
                        let pool_dead = Self::ff_grant(cost.ff_parallelism, ff_alive).is_none();
                        if self.cfg.recursive_kernels && !progr_alive && !pool_dead {
                            // The recursive driver is gone but the pool
                            // survives: host-driven split still uses it.
                            if cpu_free {
                                if let Some(units) = Self::ff_grant(cost.ff_parallelism, ff_free) {
                                    return Some(PlanKind::HostSplit { units });
                                }
                                return Some(PlanKind::Cpu);
                            }
                            return None;
                        }
                        if pool_dead {
                            // The pool can never serve the split again.
                            if progr_alive && progr_free {
                                return Some(PlanKind::Progr);
                            }
                            return cpu_free.then_some(PlanKind::Cpu);
                        }
                        if self.cfg.operation_pipeline {
                            None // wait for the programmable PIM + pool
                        } else {
                            cpu_free.then_some(PlanKind::Cpu)
                        }
                    }
                    OffloadClass::NonMulAdd | OffloadClass::DataMovement => {
                        if progr_free {
                            return Some(PlanKind::Progr);
                        }
                        cpu_free.then_some(PlanKind::Cpu)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SystemPreset;
    use pim_common::units::Bytes;

    fn planner(cfg: EngineConfig) -> Planner {
        Planner::new(cfg)
    }

    fn cost(class: OffloadClass, parallelism: usize) -> CostProfile {
        CostProfile::compute(
            1e9,
            1e9,
            if matches!(class, OffloadClass::FullyMulAdd) {
                0.0
            } else {
                1e8
            },
            Bytes::new(1e7),
            Bytes::new(1e7),
            class,
            parallelism,
        )
    }

    #[test]
    fn split_cost_partitions_work_and_bytes() {
        let c = cost(OffloadClass::PartiallyMulAdd { ma_fraction: 0.9 }, 64);
        let (ma, rest) = split_cost(&c);
        assert_eq!(ma.class, OffloadClass::FullyMulAdd);
        assert_eq!(rest.class, OffloadClass::NonMulAdd);
        assert_eq!(ma.ma_flops(), c.ma_flops());
        assert_eq!(rest.other_flops, c.other_flops);
        let total = c.bytes_read + c.bytes_written;
        let split_total = ma.bytes_read + ma.bytes_written + rest.bytes_read + rest.bytes_written;
        assert!((split_total.bytes() - total.bytes()).abs() < 1.0);
    }

    #[test]
    fn ff_grant_honors_floor_and_capacity() {
        // Plenty free: get exactly what is wanted.
        assert_eq!(Planner::ff_grant(100, 444), Some(100));
        // Partially free above the 64-unit floor: get the remainder.
        assert_eq!(Planner::ff_grant(100, 80), Some(80));
        // Below the floor: wait.
        assert_eq!(Planner::ff_grant(100, 63), None);
        // Small requests floor at their own size.
        assert_eq!(Planner::ff_grant(8, 8), Some(8));
        assert_eq!(Planner::ff_grant(0, 1), Some(1));
    }

    #[test]
    fn choose_follows_the_mode_restrictions() {
        let all = Availability::all_free(444);
        let ma = cost(OffloadClass::FullyMulAdd, 128);
        let cpu_only = planner(EngineConfig::preset(SystemPreset::CpuOnly));
        assert_eq!(cpu_only.choose(&ma, true, false, all), Some(PlanKind::Cpu));
        let progr = planner(EngineConfig::preset(SystemPreset::ProgrOnly));
        assert_eq!(
            progr.choose(&ma, true, false, all),
            Some(PlanKind::ProgrPool)
        );
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        assert_eq!(
            hetero.choose(&ma, true, false, all),
            Some(PlanKind::FixedWhole {
                rc_runtime: true,
                units: 128
            })
        );
    }

    #[test]
    fn restricted_workloads_stay_off_the_fixed_pool() {
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        let ma = cost(OffloadClass::FullyMulAdd, 128);
        assert_eq!(
            hetero.choose(&ma, true, true, Availability::all_free(444)),
            Some(PlanKind::Cpu)
        );
        let no_cpu = Availability {
            cpu_free: false,
            ..Availability::all_free(444)
        };
        assert_eq!(
            hetero.choose(&ma, true, true, no_cpu),
            Some(PlanKind::Progr)
        );
        let nothing = Availability {
            cpu_free: false,
            progr_free: false,
            ..Availability::all_free(444)
        };
        assert_eq!(hetero.choose(&ma, true, true, nothing), None);
    }

    #[test]
    fn hetero_candidates_wait_for_the_pool_under_op() {
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        let ma = cost(OffloadClass::FullyMulAdd, 128);
        let pool_busy = Availability {
            ff_free: 0,
            ..Availability::all_free(444)
        };
        // Under the operation pipeline a heavy candidate waits instead of
        // falling back to the CPU.
        assert_eq!(hetero.choose(&ma, true, false, pool_busy), None);
        let mut serial_cfg = EngineConfig::preset(SystemPreset::Hetero);
        serial_cfg.operation_pipeline = false;
        let serial = planner(serial_cfg);
        assert_eq!(
            serial.choose(&ma, true, false, pool_busy),
            Some(PlanKind::Cpu)
        );
    }

    #[test]
    fn quarantined_pool_degrades_along_the_survivor_chain() {
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        let ma = cost(OffloadClass::FullyMulAdd, 128);
        // Pool quarantined (not merely busy): a candidate falls to the
        // programmable PIM instead of waiting forever.
        let pool_dead = Availability {
            ff_free: 0,
            ff_alive: 0,
            ..Availability::all_free(444)
        };
        assert_eq!(
            hetero.choose(&ma, true, false, pool_dead),
            Some(PlanKind::Progr)
        );
        // Pool and programmable PIM both quarantined: host takes over.
        let only_cpu = Availability {
            ff_free: 0,
            ff_alive: 0,
            progr_free: false,
            progr_alive: false,
            ..Availability::all_free(444)
        };
        assert_eq!(
            hetero.choose(&ma, true, false, only_cpu),
            Some(PlanKind::Cpu)
        );
        // A recursive split whose driver died still exploits the pool
        // through the host.
        let split = cost(OffloadClass::PartiallyMulAdd { ma_fraction: 0.9 }, 128);
        let progr_dead = Availability {
            progr_free: false,
            progr_alive: false,
            ..Availability::all_free(444)
        };
        assert_eq!(
            hetero.choose(&split, true, false, progr_dead),
            Some(PlanKind::HostSplit { units: 128 })
        );
    }

    #[test]
    fn quarantined_progr_only_falls_back_to_the_host() {
        let progr = planner(EngineConfig::preset(SystemPreset::ProgrOnly));
        let ma = cost(OffloadClass::FullyMulAdd, 128);
        let dead = Availability {
            progr_free: false,
            progr_alive: false,
            ..Availability::all_free(444)
        };
        assert_eq!(progr.choose(&ma, true, false, dead), Some(PlanKind::Cpu));
        // Merely busy still waits for a slot.
        let busy = Availability {
            progr_free: false,
            ..Availability::all_free(444)
        };
        assert_eq!(progr.choose(&ma, true, false, busy), None);
    }

    #[test]
    fn plan_cost_breakdown_partitions_the_duration() {
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        for kind in [
            PlanKind::Cpu,
            PlanKind::Progr,
            PlanKind::ProgrPool,
            PlanKind::FixedWhole {
                rc_runtime: true,
                units: 128,
            },
            PlanKind::FixedWhole {
                rc_runtime: false,
                units: 128,
            },
            PlanKind::HostSplit { units: 128 },
            PlanKind::Recursive { units: 128 },
        ] {
            let c = cost(OffloadClass::PartiallyMulAdd { ma_fraction: 0.9 }, 128);
            let p = hetero.plan_cost(kind, &c);
            let parts = p.op_part + p.dm_part + p.sync_part;
            assert!(
                (parts.seconds() - p.duration.seconds()).abs() <= 1e-9 * p.duration.seconds(),
                "{kind:?}: {} vs {}",
                parts.seconds(),
                p.duration.seconds()
            );
            assert!(p.energy.joules() > 0.0, "{kind:?} has zero energy");
        }
    }

    #[test]
    fn recursive_kernel_holds_progr_but_not_cpu() {
        let hetero = planner(EngineConfig::preset(SystemPreset::Hetero));
        let c = cost(OffloadClass::PartiallyMulAdd { ma_fraction: 0.9 }, 128);
        let p = hetero.plan_cost(PlanKind::Recursive { units: 128 }, &c);
        assert!(p.uses_progr);
        assert!(!p.uses_cpu);
        assert_eq!(p.ff_units, 128);
        assert_eq!(resource_class(&p), ResourceClass::ProgrAndFixed);
        let host = hetero.plan_cost(PlanKind::HostSplit { units: 128 }, &c);
        assert!(host.uses_cpu);
        assert_eq!(resource_class(&host), ResourceClass::CpuAndFixed);
    }
}
