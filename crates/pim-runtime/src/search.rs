//! Beam search over the schedule-order space: how much makespan does
//! the paper's greedy heuristic leave on the table?
//!
//! [`crate::fuzz::TieBreak::Priority`] turns the dispatch priority
//! inside open pipeline windows into a seeded degree of freedom — every
//! order is legal (dependencies, windows, and the Fig. 7 registers are
//! still enforced by the drivers), but the schedule, and hence the
//! makespan, changes. [`beam_search`] explores that space with a beam:
//! each round evaluates a frontier of candidate orders in parallel,
//! keeps the `beam_width` best, and derives the next frontier from
//! them. Seeds have no neighborhood structure (the per-decision hashes
//! avalanche), so the beam behaves as stochastic search with elitist
//! restarts — the point is the *bound*, not the trajectory: the
//! best-found makespan versus the stable heuristic is reported as the
//! "oracle gap" (`repro search` prints it per model), and every
//! best-found timeline must still pass the `pim-verify` legality
//! replay.

use crate::engine::{Engine, RunOptions, TimelineEntry, WorkloadSpec};
use crate::fuzz::{splitmix, TieBreak};
use pim_common::units::Seconds;
use pim_common::{PimError, Result};

/// Knobs for one [`beam_search`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Orders retained between rounds.
    pub beam_width: usize,
    /// Search rounds after the initial frontier.
    pub rounds: usize,
    /// Child orders derived per retained order each round.
    pub branching: usize,
    /// Base seed for the initial frontier.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            beam_width: 4,
            rounds: 3,
            branching: 8,
            seed: 1,
        }
    }
}

/// The result of one beam search over a workload set.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Makespan of the stable (paper-heuristic) order.
    pub stable_makespan: Seconds,
    /// Best makespan found anywhere in the search.
    pub best_makespan: Seconds,
    /// The order that produced it ([`TieBreak::Stable`] when nothing
    /// beat the heuristic).
    pub best_order: TieBreak,
    /// Distinct orders evaluated (excluding the stable baseline).
    pub evaluated: usize,
    /// Timeline of the best order, for legality replay.
    pub best_timeline: Vec<TimelineEntry>,
}

impl SearchOutcome {
    /// The oracle gap: fraction of the stable makespan the best-found
    /// schedule saves (0 when the heuristic was never beaten).
    #[must_use]
    pub fn gap(&self) -> f64 {
        let stable = self.stable_makespan.seconds();
        if stable <= 0.0 {
            return 0.0;
        }
        ((stable - self.best_makespan.seconds()) / stable).max(0.0)
    }
}

/// Beam search over [`TieBreak::Priority`] seeds (see the module docs).
///
/// # Errors
///
/// Propagates engine failures from any evaluated order.
pub fn beam_search(
    engine: &Engine,
    workloads: &[WorkloadSpec<'_>],
    cfg: &SearchConfig,
) -> Result<SearchOutcome> {
    let stable = engine
        .run_with(workloads, &RunOptions::default())?
        .into_report();
    let stable_makespan = stable.makespan;

    let mut seen = std::collections::HashSet::new();
    let mut pool: Vec<(u64, u64)> = Vec::new(); // (makespan fs, seed)
    let mut frontier: Vec<u64> = crate::fuzz::derive_seeds(cfg.seed, cfg.branching.max(1));
    frontier.retain(|&s| seen.insert(s));
    let mut evaluated = 0usize;

    for round in 0..=cfg.rounds {
        if frontier.is_empty() {
            break;
        }
        let results: Vec<Result<(u64, u64)>> = crate::par::par_map(&frontier, |&seed| {
            let opts = RunOptions {
                tie: TieBreak::Priority(seed),
                ..RunOptions::default()
            };
            let report = engine.run_with(workloads, &opts)?.into_report();
            // Quantize exactly like the event clock so ordering is
            // platform-stable.
            Ok(((report.makespan.seconds() * 1e15) as u64, seed))
        });
        for r in results {
            pool.push(r?);
            evaluated += 1;
        }
        pool.sort_unstable();
        pool.truncate(cfg.beam_width.max(1));
        // Next frontier: children of the retained orders. Seeds carry no
        // locality, so children are fresh draws chained off each parent.
        frontier = pool
            .iter()
            .flat_map(|&(_, parent)| {
                (0..cfg.branching)
                    .map(move |k| splitmix(parent ^ splitmix((round as u64) << 32 | k as u64)))
            })
            .filter(|&s| !seen.contains(&s))
            .collect();
        frontier.dedup();
        frontier.retain(|&s| seen.insert(s));
    }

    let best = pool.first().copied();
    let (best_order, best_makespan) = match best {
        Some((fs, seed)) if Seconds::new(fs as f64 / 1e15) < stable_makespan => {
            (TieBreak::Priority(seed), None)
        }
        _ => (TieBreak::Stable, Some(stable_makespan)),
    };
    // Re-run the winner with a timeline for the legality replay (and to
    // read its exact, unquantized makespan).
    let opts = RunOptions {
        timeline: true,
        tie: best_order,
        ..RunOptions::default()
    };
    let mut out = engine.run_with(workloads, &opts)?;
    let best_timeline = out
        .timeline
        .take()
        .ok_or_else(|| PimError::internal("timeline requested but not produced"))?;
    Ok(SearchOutcome {
        stable_makespan,
        best_makespan: best_makespan.unwrap_or(out.report().makespan),
        best_order,
        evaluated,
        best_timeline,
    })
}
