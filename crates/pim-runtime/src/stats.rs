//! Execution reports: the observables every figure of the evaluation reads.

use pim_common::units::{edp, Joules, Seconds, Watts};
use serde::Serialize;
use std::collections::BTreeMap;

/// Baseline full-system power outside the compute devices (uncore, VRM,
/// fans, DRAM refresh) charged over the whole makespan of every
/// configuration — the paper evaluates full-system power (§V-B).
pub const BASE_SYSTEM_POWER: Watts = Watts::new(30.0);

/// Result of simulating a training run on one system configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ExecutionReport {
    /// Configuration name ("CPU", "GPU", "Progr PIM", "Fixed PIM",
    /// "Hetero PIM", ...).
    pub system: String,
    /// Training steps simulated.
    pub steps: usize,
    /// End-to-end simulated time.
    pub makespan: Seconds,
    /// Breakdown: pure computation share of the makespan.
    pub op_time: Seconds,
    /// Breakdown: data-movement-bound share of the makespan.
    pub data_movement_time: Seconds,
    /// Breakdown: synchronization/dispatch share of the makespan.
    pub sync_time: Seconds,
    /// Dynamic energy including the base system power.
    pub dynamic_energy: Joules,
    /// Average utilization of the fixed-function pool over the makespan
    /// (0 when the configuration has none).
    pub ff_utilization: f64,
    /// Busy time per device.
    pub device_busy: BTreeMap<String, Seconds>,
}

impl ExecutionReport {
    /// Average time per training step.
    pub fn per_step_time(&self) -> Seconds {
        if self.steps == 0 {
            Seconds::ZERO
        } else {
            self.makespan / self.steps as f64
        }
    }

    /// Average full-system power over the run.
    pub fn average_power(&self) -> Watts {
        if self.makespan.seconds() > 0.0 {
            self.dynamic_energy / self.makespan
        } else {
            Watts::ZERO
        }
    }

    /// Energy-delay product (§VI-G's efficiency metric), per step.
    pub fn edp_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        edp(
            self.dynamic_energy / self.steps as f64,
            self.per_step_time(),
        )
    }

    /// Total time of this report relative to another (speedup of `other`
    /// over `self` when > 1).
    pub fn slowdown_vs(&self, other: &ExecutionReport) -> f64 {
        self.makespan / other.makespan
    }

    /// Breakdown fractions `(op, data movement, sync)` summing to 1.
    pub fn breakdown_fractions(&self) -> (f64, f64, f64) {
        let total =
            self.op_time + self.data_movement_time + self.sync_time;
        if total.seconds() == 0.0 {
            return (1.0, 0.0, 0.0);
        }
        (
            self.op_time / total,
            self.data_movement_time / total,
            self.sync_time / total,
        )
    }

    /// True when every invariant a report must satisfy holds (used by
    /// property tests): non-negative quantities, utilization in `[0, 1]`,
    /// breakdown parts summing to the makespan within tolerance.
    pub fn is_well_formed(&self) -> bool {
        let parts = self.op_time + self.data_movement_time + self.sync_time;
        self.makespan.is_valid()
            && self.dynamic_energy.is_valid()
            && self.op_time.is_valid()
            && self.data_movement_time.is_valid()
            && self.sync_time.is_valid()
            && (0.0..=1.0 + 1e-9).contains(&self.ff_utilization)
            && (parts.seconds() - self.makespan.seconds()).abs()
                <= 1e-6 * self.makespan.seconds().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            system: "test".into(),
            steps: 4,
            makespan: Seconds::new(8.0),
            op_time: Seconds::new(5.0),
            data_movement_time: Seconds::new(2.0),
            sync_time: Seconds::new(1.0),
            dynamic_energy: Joules::new(400.0),
            ff_utilization: 0.75,
            device_busy: BTreeMap::new(),
        }
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = report();
        assert_eq!(r.per_step_time(), Seconds::new(2.0));
        assert_eq!(r.average_power(), Watts::new(50.0));
        assert_eq!(r.edp_per_step(), 100.0 * 2.0);
        assert!(r.is_well_formed());
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let (a, b, c) = report().breakdown_fractions();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!((a - 0.625).abs() < 1e-12);
    }

    #[test]
    fn ill_formed_reports_are_caught() {
        let mut r = report();
        r.op_time = Seconds::new(100.0);
        assert!(!r.is_well_formed());
    }
}
