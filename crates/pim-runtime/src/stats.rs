//! Execution reports: the observables every figure of the evaluation reads.

use pim_common::trace::Counters;
use pim_common::units::{edp, Joules, Seconds, Watts};
use pim_common::Diagnostics;
use serde::Serialize;
use std::collections::BTreeMap;

/// Baseline full-system power outside the compute devices (uncore, VRM,
/// fans, DRAM refresh) charged over the whole makespan of every
/// configuration — the paper evaluates full-system power (§V-B).
pub const BASE_SYSTEM_POWER: Watts = Watts::new(30.0);

/// Idle power of the host package while an accelerator executes (uncore +
/// cores in shallow sleep, still running the framework runtime). Charged by
/// every configuration that keeps the host out of the compute path —
/// CPU-only runs bill the CPU per op instead.
pub const HOST_IDLE_POWER: Watts = Watts::new(40.0);

/// Normalizes raw breakdown sums so `op + dm + sync == makespan` exactly.
///
/// Raw per-op part sums generally overcount the makespan whenever execution
/// overlaps ops; rescaling preserves their ratios while making the
/// breakdown partition the measured wall-clock.
pub fn normalized_parts(
    makespan: Seconds,
    op_raw: Seconds,
    dm_raw: Seconds,
    sync_raw: Seconds,
) -> (Seconds, Seconds, Seconds) {
    let total = (op_raw + dm_raw + sync_raw).seconds();
    if total <= 0.0 {
        return (makespan, Seconds::ZERO, Seconds::ZERO);
    }
    let scale = makespan.seconds() / total;
    let op = op_raw * scale;
    let dm = dm_raw * scale;
    (op, dm, makespan - op - dm)
}

/// The single constructor of [`ExecutionReport`].
///
/// Every simulation path — the engine's event core and the analytic
/// GPU/Neurocube baselines — builds its report here, so the full-system
/// energy accounting ([`BASE_SYSTEM_POWER`], [`HOST_IDLE_POWER`]) and the
/// breakdown normalization are applied uniformly and exactly once.
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    system: String,
    steps: usize,
    makespan: Seconds,
    op_raw: Seconds,
    dm_raw: Seconds,
    sync_raw: Seconds,
    energy: Joules,
    charge_host_idle: bool,
    ff_utilization: f64,
    device_busy: BTreeMap<String, Seconds>,
}

impl ReportBuilder {
    /// Starts a report for one system configuration.
    pub fn new(system: impl Into<String>, steps: usize) -> Self {
        ReportBuilder {
            system: system.into(),
            steps,
            makespan: Seconds::ZERO,
            op_raw: Seconds::ZERO,
            dm_raw: Seconds::ZERO,
            sync_raw: Seconds::ZERO,
            energy: Joules::ZERO,
            charge_host_idle: false,
            ff_utilization: 0.0,
            device_busy: BTreeMap::new(),
        }
    }

    /// End-to-end simulated time.
    pub fn makespan(mut self, makespan: Seconds) -> Self {
        self.makespan = makespan;
        self
    }

    /// Raw (pre-normalization) breakdown sums; [`Self::build`] rescales
    /// them so they partition the makespan exactly.
    pub fn raw_parts(mut self, op: Seconds, dm: Seconds, sync: Seconds) -> Self {
        self.op_raw = op;
        self.dm_raw = dm;
        self.sync_raw = sync;
        self
    }

    /// Dynamic energy of the compute devices and memory paths alone; base
    /// system power and host idle power are added by [`Self::build`].
    pub fn device_energy(mut self, energy: Joules) -> Self {
        self.energy = energy;
        self
    }

    /// Charges [`HOST_IDLE_POWER`] over the makespan (configurations whose
    /// host package idles while an accelerator computes).
    pub fn charge_host_idle(mut self) -> Self {
        self.charge_host_idle = true;
        self
    }

    /// Average fixed-function pool utilization over the makespan.
    pub fn ff_utilization(mut self, utilization: f64) -> Self {
        self.ff_utilization = utilization;
        self
    }

    /// Records one device's busy time.
    pub fn device_busy(mut self, name: impl Into<String>, busy: Seconds) -> Self {
        self.device_busy.insert(name.into(), busy);
        self
    }

    /// Finalizes the report: normalizes the breakdown and applies the
    /// full-system energy accounting.
    pub fn build(self) -> ExecutionReport {
        let (op, dm, sync) =
            normalized_parts(self.makespan, self.op_raw, self.dm_raw, self.sync_raw);
        let host_idle = if self.charge_host_idle {
            HOST_IDLE_POWER * self.makespan
        } else {
            Joules::ZERO
        };
        ExecutionReport {
            system: self.system,
            steps: self.steps,
            makespan: self.makespan,
            op_time: op,
            data_movement_time: dm,
            sync_time: sync,
            dynamic_energy: self.energy + BASE_SYSTEM_POWER * self.makespan + host_idle,
            ff_utilization: self.ff_utilization,
            device_busy: self.device_busy,
        }
    }
}

/// Result of simulating a training run on one system configuration.
///
/// `PartialEq` compares every field exactly (no tolerance): the
/// differential suite asserts that optimized and reference execution paths
/// agree bit-for-bit, not approximately.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExecutionReport {
    /// Configuration name ("CPU", "GPU", "Progr PIM", "Fixed PIM",
    /// "Hetero PIM", ...).
    pub system: String,
    /// Training steps simulated.
    pub steps: usize,
    /// End-to-end simulated time.
    pub makespan: Seconds,
    /// Breakdown: pure computation share of the makespan.
    pub op_time: Seconds,
    /// Breakdown: data-movement-bound share of the makespan.
    pub data_movement_time: Seconds,
    /// Breakdown: synchronization/dispatch share of the makespan.
    pub sync_time: Seconds,
    /// Dynamic energy including the base system power.
    pub dynamic_energy: Joules,
    /// Average utilization of the fixed-function pool over the makespan
    /// (0 when the configuration has none).
    pub ff_utilization: f64,
    /// Busy time per device.
    pub device_busy: BTreeMap<String, Seconds>,
}

impl ExecutionReport {
    /// Average time per training step.
    pub fn per_step_time(&self) -> Seconds {
        if self.steps == 0 {
            Seconds::ZERO
        } else {
            self.makespan / self.steps as f64
        }
    }

    /// Average full-system power over the run.
    pub fn average_power(&self) -> Watts {
        if self.makespan.seconds() > 0.0 {
            self.dynamic_energy / self.makespan
        } else {
            Watts::ZERO
        }
    }

    /// Energy-delay product (§VI-G's efficiency metric), per step.
    pub fn edp_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        edp(
            self.dynamic_energy / self.steps as f64,
            self.per_step_time(),
        )
    }

    /// Total time of this report relative to another (speedup of `other`
    /// over `self` when > 1).
    pub fn slowdown_vs(&self, other: &ExecutionReport) -> f64 {
        self.makespan / other.makespan
    }

    /// Breakdown fractions `(op, data movement, sync)` summing to 1.
    pub fn breakdown_fractions(&self) -> (f64, f64, f64) {
        let total = self.op_time + self.data_movement_time + self.sync_time;
        if total.seconds() == 0.0 {
            return (1.0, 0.0, 0.0);
        }
        (
            self.op_time / total,
            self.data_movement_time / total,
            self.sync_time / total,
        )
    }

    /// True when every invariant a report must satisfy holds (used by
    /// property tests): non-negative quantities, utilization in `[0, 1]`,
    /// breakdown parts summing to the makespan within tolerance.
    pub fn is_well_formed(&self) -> bool {
        let parts = self.op_time + self.data_movement_time + self.sync_time;
        self.makespan.is_valid()
            && self.dynamic_energy.is_valid()
            && self.op_time.is_valid()
            && self.data_movement_time.is_valid()
            && self.sync_time.is_valid()
            && (0.0..=1.0 + 1e-9).contains(&self.ff_utilization)
            && (parts.seconds() - self.makespan.seconds()).abs()
                <= 1e-6 * self.makespan.seconds().max(1e-12)
    }
}

/// Relative tolerance for counter/report agreement: both sides accumulate
/// the same femtosecond-quantized durations, so only summation-order
/// rounding separates them.
pub const CROSS_CHECK_REL_TOL: f64 = 1e-6;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= CROSS_CHECK_REL_TOL * a.abs().max(b.abs()).max(1e-12)
}

/// Cross-checks a run's independently-accumulated [`Counters`] registry
/// against its [`ExecutionReport`] — the observability layer and the
/// statistics pipeline must tell the same story.
///
/// Checks, each reported as a `counters`-pass diagnostic on failure:
///
/// * `busy_seconds/<device>` matches `report.device_busy` per device at
///   [`CROSS_CHECK_REL_TOL`] relative tolerance,
/// * every event dispatched was completed or recovered from
///   (`events/dispatched` == `events/completed` + `faults/retries` +
///   `faults/redispatches`; the fault counters read zero when absent),
/// * per-class `ops/*` placements sum to `events/dispatched`.
///
/// # Examples
///
/// ```
/// use pim_runtime::stats::{cross_check_counters, ReportBuilder};
/// use pim_common::trace::Counters;
/// use pim_common::units::Seconds;
///
/// let report = ReportBuilder::new("CPU", 1)
///     .makespan(Seconds::new(2.0))
///     .raw_parts(Seconds::new(2.0), Seconds::ZERO, Seconds::ZERO)
///     .device_busy("CPU", Seconds::new(2.0))
///     .build();
/// let mut counters = Counters::new();
/// counters.add("busy_seconds/CPU", 2.0);
/// assert!(cross_check_counters(&report, &counters).is_clean());
///
/// counters.add("busy_seconds/CPU", 1.0);
/// assert!(!cross_check_counters(&report, &counters).is_clean());
/// ```
pub fn cross_check_counters(report: &ExecutionReport, counters: &Counters) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for (device, busy) in &report.device_busy {
        let counted = counters.get(&format!("busy_seconds/{device}"));
        if !rel_close(counted, busy.seconds()) {
            diags.error(
                "counters",
                format!("busy_seconds/{device}"),
                format!(
                    "counter says {counted} busy seconds, report says {}",
                    busy.seconds()
                ),
            );
        }
    }
    let dispatched = counters.get("events/dispatched");
    let completed = counters.get("events/completed");
    // Every dispatched attempt either completes or is recovered from:
    // retried (transients + strike kills) or re-dispatched (timeouts). In
    // fault-free runs the fault counters are absent and this reduces to
    // dispatched == completed.
    let recovered = counters.get("faults/retries") + counters.get("faults/redispatches");
    if dispatched != completed + recovered {
        diags.error(
            "counters",
            "events/completed",
            format!(
                "{dispatched} events dispatched but {completed} completed and {recovered} \
                 recovered"
            ),
        );
    }
    let placed: f64 = counters
        .iter()
        .filter(|(name, _)| name.starts_with("ops/"))
        .map(|(_, value)| value)
        .sum();
    if placed != dispatched {
        diags.error(
            "counters",
            "ops/*",
            format!("{placed} ops placed across classes but {dispatched} dispatched"),
        );
    }
    diags
}

/// [`cross_check_counters`] for a partitioned run: validates the merged
/// counter registry of [`crate::engine::Engine::run_many_with`] against
/// the *sum* of the per-partition reports.
///
/// Partition merge is plain addition for every counter the cross-check
/// reads (busy seconds, event and op tallies), so the merged registry
/// must agree with a synthetic report whose busy map and event totals
/// are the element-wise sums over partitions — any partition whose
/// counters were dropped or double-merged surfaces here.
pub fn cross_check_many(reports: &[ExecutionReport], counters: &Counters) -> Diagnostics {
    let mut busy: BTreeMap<String, Seconds> = BTreeMap::new();
    for report in reports {
        for (device, seconds) in &report.device_busy {
            *busy.entry(device.clone()).or_insert(Seconds::ZERO) += *seconds;
        }
    }
    let mut diags = Diagnostics::new();
    for (device, total) in &busy {
        let counted = counters.get(&format!("busy_seconds/{device}"));
        if !rel_close(counted, total.seconds()) {
            diags.error(
                "counters",
                format!("busy_seconds/{device}"),
                format!(
                    "merged counter says {counted} busy seconds, summed reports say {}",
                    total.seconds()
                ),
            );
        }
    }
    let dispatched = counters.get("events/dispatched");
    let completed = counters.get("events/completed");
    let recovered = counters.get("faults/retries") + counters.get("faults/redispatches");
    if dispatched != completed + recovered {
        diags.error(
            "counters",
            "events/completed",
            format!(
                "{dispatched} events dispatched but {completed} completed and {recovered} \
                 recovered"
            ),
        );
    }
    let placed: f64 = counters
        .iter()
        .filter(|(name, _)| name.starts_with("ops/"))
        .map(|(_, value)| value)
        .sum();
    if placed != dispatched {
        diags.error(
            "counters",
            "ops/*",
            format!("{placed} ops placed across classes but {dispatched} dispatched"),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            system: "test".into(),
            steps: 4,
            makespan: Seconds::new(8.0),
            op_time: Seconds::new(5.0),
            data_movement_time: Seconds::new(2.0),
            sync_time: Seconds::new(1.0),
            dynamic_energy: Joules::new(400.0),
            ff_utilization: 0.75,
            device_busy: BTreeMap::new(),
        }
    }

    #[test]
    fn cross_check_many_sums_partition_reports() {
        let mut a = report();
        a.device_busy.insert("CPU".into(), Seconds::new(3.0));
        let mut b = report();
        b.device_busy.insert("CPU".into(), Seconds::new(5.0));
        let mut counters = Counters::new();
        counters.add("busy_seconds/CPU", 8.0);
        counters.add("events/dispatched", 6.0);
        counters.add("events/completed", 6.0);
        counters.add("ops/cpu", 6.0);
        assert!(cross_check_many(&[a.clone(), b.clone()], &counters).is_clean());

        // Dropping a partition's busy time from the merge must surface.
        let mut short = Counters::new();
        short.add("busy_seconds/CPU", 3.0);
        short.add("events/dispatched", 6.0);
        short.add("events/completed", 6.0);
        short.add("ops/cpu", 6.0);
        assert!(!cross_check_many(&[a, b], &short).is_clean());
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = report();
        assert_eq!(r.per_step_time(), Seconds::new(2.0));
        assert_eq!(r.average_power(), Watts::new(50.0));
        assert_eq!(r.edp_per_step(), 100.0 * 2.0);
        assert!(r.is_well_formed());
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let (a, b, c) = report().breakdown_fractions();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!((a - 0.625).abs() < 1e-12);
    }

    #[test]
    fn ill_formed_reports_are_caught() {
        let mut r = report();
        r.op_time = Seconds::new(100.0);
        assert!(!r.is_well_formed());
    }

    #[test]
    fn normalized_parts_partition_the_makespan_exactly() {
        let (op, dm, sync) = normalized_parts(
            Seconds::new(10.0),
            Seconds::new(6.0),
            Seconds::new(3.0),
            Seconds::new(3.0),
        );
        assert_eq!((op + dm + sync).seconds(), 10.0);
        assert!((op.seconds() - 5.0).abs() < 1e-12);
        // Degenerate raw sums collapse to pure op time.
        let (op, dm, sync) = normalized_parts(
            Seconds::new(2.0),
            Seconds::ZERO,
            Seconds::ZERO,
            Seconds::ZERO,
        );
        assert_eq!(op, Seconds::new(2.0));
        assert_eq!(dm + sync, Seconds::ZERO);
    }

    #[test]
    fn builder_applies_full_system_energy_accounting() {
        let r = ReportBuilder::new("test", 2)
            .makespan(Seconds::new(4.0))
            .raw_parts(Seconds::new(2.0), Seconds::new(1.0), Seconds::new(1.0))
            .device_energy(Joules::new(100.0))
            .charge_host_idle()
            .ff_utilization(0.5)
            .device_busy("Dev", Seconds::new(4.0))
            .build();
        assert!(r.is_well_formed());
        // 100 J device + (30 W + 40 W) * 4 s full-system overhead.
        assert_eq!(r.dynamic_energy, Joules::new(100.0 + 70.0 * 4.0));
        assert_eq!(r.device_busy["Dev"], Seconds::new(4.0));
        let without_idle = ReportBuilder::new("test", 2)
            .makespan(Seconds::new(4.0))
            .device_energy(Joules::new(100.0))
            .build();
        assert_eq!(without_idle.dynamic_energy, Joules::new(100.0 + 30.0 * 4.0));
    }
}
