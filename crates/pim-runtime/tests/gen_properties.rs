//! Property-based invariants over the seeded random-graph generator:
//! report well-formedness, per-device busy-time bounds, and the profile
//! memo returning exactly what a fresh profile computes.

use pim_graph::gen::{random_dag, GenSpec};
use pim_hw::cpu::CpuDevice;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec, PROGR_KERNEL_SLOTS};
use pim_runtime::profiler::{profile_step, profile_step_cached};
use proptest::prelude::*;
use std::sync::Arc;

fn run(graph: &pim_graph::Graph, preset: SystemPreset) -> pim_runtime::ExecutionReport {
    Engine::new(EngineConfig::preset(preset))
        .run(&[WorkloadSpec {
            graph,
            steps: 2,
            cpu_progr_only: false,
        }])
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// op + data movement + sync sums to the makespan (within
    /// `is_well_formed`'s tolerance) on every preset, for any seed.
    #[test]
    fn breakdown_sums_to_makespan(seed in 0u64..10_000) {
        let graph = random_dag(&GenSpec::from_seed(seed));
        for preset in SystemPreset::ALL {
            let r = run(&graph, preset);
            prop_assert!(
                r.is_well_formed(),
                "{preset:?}: op {} + dm {} + sync {} vs makespan {}",
                r.op_time, r.data_movement_time, r.sync_time, r.makespan
            );
        }
    }

    /// No device is busy longer than its concurrency allows: CPU and the
    /// (unit-normalized) fixed-function pool are bounded by the makespan,
    /// the programmable PIM by makespan x kernel slots.
    #[test]
    fn device_busy_bounded_by_makespan(seed in 0u64..10_000) {
        let graph = random_dag(&GenSpec::from_seed(seed));
        for preset in SystemPreset::ALL {
            let r = run(&graph, preset);
            let cap = 1.0 + 1e-9;
            for (device, busy) in &r.device_busy {
                let slots = if device == "Progr PIM" { PROGR_KERNEL_SLOTS as f64 } else { 1.0 };
                prop_assert!(
                    busy.seconds() <= r.makespan.seconds() * slots * cap,
                    "{preset:?}: {device} busy {busy} exceeds {slots}x makespan {}",
                    r.makespan
                );
            }
        }
    }

    /// A profile-memo hit is exactly the profile a fresh computation
    /// produces, and repeated hits share one allocation.
    #[test]
    fn profile_memo_hit_equals_fresh_profile(seed in 0u64..10_000) {
        let graph = random_dag(&GenSpec::from_seed(seed));
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let fresh = profile_step(&graph, &cpu).unwrap();
        let first = profile_step_cached(&graph, &cpu).unwrap();
        let second = profile_step_cached(&graph, &cpu).unwrap();
        prop_assert!(*first == fresh, "memoized profile diverges from fresh");
        prop_assert!(*second == fresh);
        prop_assert!(Arc::ptr_eq(&first, &second), "repeat hit re-computed");
    }
}
