//! Property tests of the scheduler over randomly generated dataflow DAGs:
//! whatever the graph shape, the engine must respect dependencies, never
//! beat the critical path, never lose to the serial schedule, and produce
//! internally consistent reports.

use pim_common::units::Seconds;
use pim_graph::gen::{self, GenSpec};
use pim_graph::graph::Graph;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use proptest::prelude::*;

/// Builds a random layered DAG through the shared seeded generator
/// (`pim_graph::gen`), fixing the tensor dimension the original prototype
/// used so existing seeds keep their shapes.
fn random_dag(layers: usize, width: usize, seed: u64) -> Graph {
    gen::random_dag(&GenSpec {
        layers,
        width,
        dim: 8,
        seed,
    })
}

fn run(graph: &Graph, cfg: EngineConfig, steps: usize) -> pim_runtime::ExecutionReport {
    Engine::new(cfg)
        .run(&[WorkloadSpec {
            graph,
            steps,
            cpu_progr_only: false,
        }])
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reports are well-formed and the pipelined schedule never loses to
    /// the serialized one by more than scheduling noise, for any DAG.
    #[test]
    fn scheduled_never_much_worse_than_serialized(
        layers in 1usize..6,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        graph.validate().unwrap();
        let scheduled = run(&graph, EngineConfig::preset(SystemPreset::Hetero), 2);
        let serialized = run(&graph, EngineConfig::preset(SystemPreset::HeteroRc), 2);
        prop_assert!(scheduled.is_well_formed());
        prop_assert!(serialized.is_well_formed());
        // The pipeline overlaps work; tiny graphs may pay small constant
        // overheads, so allow 25% slack.
        prop_assert!(
            scheduled.makespan.seconds() <= serialized.makespan.seconds() * 1.25,
            "scheduled {} vs serialized {}",
            scheduled.makespan.seconds(),
            serialized.makespan.seconds()
        );
    }

    /// More steps never take less time, and never more than proportionally
    /// plus fill overhead.
    #[test]
    fn makespan_is_monotone_and_subadditive_in_steps(
        layers in 1usize..5,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        let one = run(&graph, EngineConfig::preset(SystemPreset::Hetero), 1).makespan;
        let three = run(&graph, EngineConfig::preset(SystemPreset::Hetero), 3).makespan;
        prop_assert!(three >= one);
        prop_assert!(three.seconds() <= 3.0 * one.seconds() + 1e-9);
    }

    /// Every configuration completes every DAG (no wedges, no panics) with
    /// a strictly positive makespan.
    #[test]
    fn all_configurations_complete_random_dags(
        layers in 1usize..5,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        for cfg in [
            EngineConfig::preset(SystemPreset::CpuOnly),
            EngineConfig::preset(SystemPreset::ProgrOnly),
            EngineConfig::preset(SystemPreset::FixedHost),
            EngineConfig::preset(SystemPreset::HeteroBare),
            EngineConfig::preset(SystemPreset::Hetero),
        ] {
            let r = run(&graph, cfg, 1);
            prop_assert!(r.makespan > Seconds::ZERO);
            prop_assert!(r.is_well_formed());
        }
    }

    /// Restricting a workload to CPU + programmable PIM never uses the
    /// fixed-function pool.
    #[test]
    fn restricted_workloads_never_touch_the_pool(
        layers in 1usize..5,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, 2, seed);
        let r = Engine::new(EngineConfig::preset(SystemPreset::Hetero))
            .run(&[WorkloadSpec { graph: &graph, steps: 2, cpu_progr_only: true }])
            .unwrap();
        prop_assert_eq!(r.ff_utilization, 0.0);
    }
}

/// A deterministic deep-chain case: the pipeline cannot reorder a pure
/// dependency chain, so two steps must cost at least ~1.6x one step even
/// with overlap (same-op cross-step ordering).
#[test]
fn dependency_chains_bound_the_pipeline() {
    let graph = random_dag(12, 1, 7);
    let one = run(&graph, EngineConfig::preset(SystemPreset::Hetero), 1).makespan;
    let two = run(&graph, EngineConfig::preset(SystemPreset::Hetero), 2).makespan;
    assert!(two.seconds() >= one.seconds() * 1.2);
}

/// Timeline invariants: exclusive resources never host two overlapping op
/// instances (CPU has one slot; the programmable PIM has two kernel slots).
#[test]
fn timeline_respects_resource_exclusivity() {
    use pim_runtime::engine::ResourceClass;
    let graph = random_dag(6, 3, 42);
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    let (report, timeline) = engine
        .run_detailed(&[WorkloadSpec {
            graph: &graph,
            steps: 3,
            cpu_progr_only: false,
        }])
        .unwrap();
    assert!(!timeline.is_empty());
    assert!(timeline.iter().all(|e| e.end >= e.start));
    assert!(timeline
        .iter()
        .all(|e| e.end.seconds() <= report.makespan.seconds() + 1e-9));

    // True instantaneous concurrency via an event sweep (ends processed
    // before starts at equal timestamps, so back-to-back reuse is legal).
    let overlaps = |class: fn(ResourceClass) -> bool| -> usize {
        let mut events: Vec<(f64, i32)> = Vec::new();
        for e in timeline.iter().filter(|e| class(e.resource)) {
            events.push((e.start.seconds(), 1));
            events.push((e.end.seconds(), -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let (mut live, mut peak) = (0i32, 0i32);
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    };
    let uses_cpu = |r: ResourceClass| matches!(r, ResourceClass::Cpu | ResourceClass::CpuAndFixed);
    let uses_progr =
        |r: ResourceClass| matches!(r, ResourceClass::Progr | ResourceClass::ProgrAndFixed);
    assert!(overlaps(uses_cpu) <= 1, "CPU slot double-booked");
    assert!(overlaps(uses_progr) <= 2, "progr slots over-subscribed");
}

/// The serialized timeline is strictly sequential: entries never overlap
/// at all.
#[test]
fn serialized_timeline_is_sequential() {
    let graph = random_dag(5, 2, 9);
    let engine = Engine::new(EngineConfig::preset(SystemPreset::HeteroRc));
    let (_, timeline) = engine
        .run_detailed(&[WorkloadSpec {
            graph: &graph,
            steps: 2,
            cpu_progr_only: false,
        }])
        .unwrap();
    for pair in timeline.windows(2) {
        assert!(pair[1].start.seconds() >= pair[0].end.seconds() - 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partitioned multi-workload execution (`run_many_with`) produces
    /// exactly the artifacts of running each workload alone in input
    /// order, for any DAG mix: identical `ExecutionReport`s, a merged
    /// timeline equal to the deterministic `(start, partition)` merge of
    /// the solo timelines, and counters equal to the partition-ordered
    /// merge of the solo registries. This is the contract that makes the
    /// worker count (and `PIM_RUN_THREADS`) unobservable in the output.
    #[test]
    fn partitioned_runs_match_solo_runs(
        layers in 1usize..5,
        width in 1usize..4,
        seed in 0u64..500,
    ) {
        use pim_common::trace::Counters;
        use pim_runtime::engine::RunOptions;

        let g1 = random_dag(layers, width, seed);
        let g2 = random_dag(layers.max(2) - 1, width, seed.wrapping_add(1));
        let wls = [
            WorkloadSpec { graph: &g1, steps: 2, cpu_progr_only: false },
            WorkloadSpec { graph: &g2, steps: 1, cpu_progr_only: false },
            WorkloadSpec { graph: &g1, steps: 1, cpu_progr_only: true },
        ];
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let opts = RunOptions { timeline: true, ..RunOptions::default() };

        let many = engine.run_many_with(&wls, &opts).unwrap();

        let mut solo_reports = Vec::new();
        let mut solo_counters = Counters::new();
        let mut solo_parts = Vec::new();
        for wl in &wls {
            let mut out = engine.run_with(&[*wl], &opts).unwrap();
            solo_counters.merge(&out.counters);
            solo_parts.push(out.timeline.take().unwrap());
            solo_reports.push(out.into_report());
        }
        prop_assert_eq!(&many.reports, &solo_reports);
        prop_assert_eq!(&many.counters, &solo_counters);

        // The merged registry cross-checks against the summed reports.
        let diags = pim_runtime::stats::cross_check_many(&many.reports, &many.counters);
        prop_assert!(diags.is_clean(), "{}", diags.render_text());

        // The merged timeline holds every solo entry, retagged with its
        // partition, ordered by (quantized start, partition) with stable
        // within-partition order.
        let merged = many.timeline.as_ref().unwrap();
        prop_assert_eq!(
            merged.len(),
            solo_parts.iter().map(Vec::len).sum::<usize>()
        );
        for (p, part) in solo_parts.iter().enumerate() {
            let replayed: Vec<_> = merged
                .iter()
                .filter(|e| e.workload == p)
                .map(|e| (e.step, e.op, e.start, e.end, e.resource, e.ff_units))
                .collect();
            let expected: Vec<_> = part
                .iter()
                .map(|e| (e.step, e.op, e.start, e.end, e.resource, e.ff_units))
                .collect();
            prop_assert_eq!(replayed, expected, "partition {} stream mangled", p);
        }
        for pair in merged.windows(2) {
            let a = (pair[0].start.seconds() * 1e15) as u128;
            let b = (pair[1].start.seconds() * 1e15) as u128;
            prop_assert!(a < b || (a == b && pair[0].workload <= pair[1].workload));
        }

        // The merged timeline splits back into verifiable partitions.
        let diags = engine.verify_many_timeline(&wls, merged).unwrap();
        prop_assert!(diags.is_clean(), "{}", diags.render_text());
    }
}
