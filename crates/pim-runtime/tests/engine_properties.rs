//! Property tests of the scheduler over randomly generated dataflow DAGs:
//! whatever the graph shape, the engine must respect dependencies, never
//! beat the critical path, never lose to the serial schedule, and produce
//! internally consistent reports.

use pim_common::units::Seconds;
use pim_graph::gen::{self, GenSpec};
use pim_graph::graph::Graph;
use pim_runtime::engine::{Engine, EngineConfig, WorkloadSpec};
use proptest::prelude::*;

/// Builds a random layered DAG through the shared seeded generator
/// (`pim_graph::gen`), fixing the tensor dimension the original prototype
/// used so existing seeds keep their shapes.
fn random_dag(layers: usize, width: usize, seed: u64) -> Graph {
    gen::random_dag(&GenSpec {
        layers,
        width,
        dim: 8,
        seed,
    })
}

fn run(graph: &Graph, cfg: EngineConfig, steps: usize) -> pim_runtime::ExecutionReport {
    Engine::new(cfg)
        .run(&[WorkloadSpec {
            graph,
            steps,
            cpu_progr_only: false,
        }])
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reports are well-formed and the pipelined schedule never loses to
    /// the serialized one by more than scheduling noise, for any DAG.
    #[test]
    fn scheduled_never_much_worse_than_serialized(
        layers in 1usize..6,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        graph.validate().unwrap();
        let scheduled = run(&graph, EngineConfig::hetero(), 2);
        let serialized = run(&graph, EngineConfig::hetero_rc(), 2);
        prop_assert!(scheduled.is_well_formed());
        prop_assert!(serialized.is_well_formed());
        // The pipeline overlaps work; tiny graphs may pay small constant
        // overheads, so allow 25% slack.
        prop_assert!(
            scheduled.makespan.seconds() <= serialized.makespan.seconds() * 1.25,
            "scheduled {} vs serialized {}",
            scheduled.makespan.seconds(),
            serialized.makespan.seconds()
        );
    }

    /// More steps never take less time, and never more than proportionally
    /// plus fill overhead.
    #[test]
    fn makespan_is_monotone_and_subadditive_in_steps(
        layers in 1usize..5,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        let one = run(&graph, EngineConfig::hetero(), 1).makespan;
        let three = run(&graph, EngineConfig::hetero(), 3).makespan;
        prop_assert!(three >= one);
        prop_assert!(three.seconds() <= 3.0 * one.seconds() + 1e-9);
    }

    /// Every configuration completes every DAG (no wedges, no panics) with
    /// a strictly positive makespan.
    #[test]
    fn all_configurations_complete_random_dags(
        layers in 1usize..5,
        width in 1usize..4,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, seed);
        for cfg in [
            EngineConfig::cpu_only(),
            EngineConfig::progr_only(),
            EngineConfig::fixed_host(),
            EngineConfig::hetero_bare(),
            EngineConfig::hetero(),
        ] {
            let r = run(&graph, cfg, 1);
            prop_assert!(r.makespan > Seconds::ZERO);
            prop_assert!(r.is_well_formed());
        }
    }

    /// Restricting a workload to CPU + programmable PIM never uses the
    /// fixed-function pool.
    #[test]
    fn restricted_workloads_never_touch_the_pool(
        layers in 1usize..5,
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, 2, seed);
        let r = Engine::new(EngineConfig::hetero())
            .run(&[WorkloadSpec { graph: &graph, steps: 2, cpu_progr_only: true }])
            .unwrap();
        prop_assert_eq!(r.ff_utilization, 0.0);
    }
}

/// A deterministic deep-chain case: the pipeline cannot reorder a pure
/// dependency chain, so two steps must cost at least ~1.6x one step even
/// with overlap (same-op cross-step ordering).
#[test]
fn dependency_chains_bound_the_pipeline() {
    let graph = random_dag(12, 1, 7);
    let one = run(&graph, EngineConfig::hetero(), 1).makespan;
    let two = run(&graph, EngineConfig::hetero(), 2).makespan;
    assert!(two.seconds() >= one.seconds() * 1.2);
}

/// Timeline invariants: exclusive resources never host two overlapping op
/// instances (CPU has one slot; the programmable PIM has two kernel slots).
#[test]
fn timeline_respects_resource_exclusivity() {
    use pim_runtime::engine::ResourceClass;
    let graph = random_dag(6, 3, 42);
    let engine = Engine::new(EngineConfig::hetero());
    let (report, timeline) = engine
        .run_detailed(&[WorkloadSpec {
            graph: &graph,
            steps: 3,
            cpu_progr_only: false,
        }])
        .unwrap();
    assert!(!timeline.is_empty());
    assert!(timeline.iter().all(|e| e.end >= e.start));
    assert!(timeline
        .iter()
        .all(|e| e.end.seconds() <= report.makespan.seconds() + 1e-9));

    // True instantaneous concurrency via an event sweep (ends processed
    // before starts at equal timestamps, so back-to-back reuse is legal).
    let overlaps = |class: fn(ResourceClass) -> bool| -> usize {
        let mut events: Vec<(f64, i32)> = Vec::new();
        for e in timeline.iter().filter(|e| class(e.resource)) {
            events.push((e.start.seconds(), 1));
            events.push((e.end.seconds(), -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let (mut live, mut peak) = (0i32, 0i32);
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    };
    let uses_cpu = |r: ResourceClass| matches!(r, ResourceClass::Cpu | ResourceClass::CpuAndFixed);
    let uses_progr =
        |r: ResourceClass| matches!(r, ResourceClass::Progr | ResourceClass::ProgrAndFixed);
    assert!(overlaps(uses_cpu) <= 1, "CPU slot double-booked");
    assert!(overlaps(uses_progr) <= 2, "progr slots over-subscribed");
}

/// The serialized timeline is strictly sequential: entries never overlap
/// at all.
#[test]
fn serialized_timeline_is_sequential() {
    let graph = random_dag(5, 2, 9);
    let engine = Engine::new(EngineConfig::hetero_rc());
    let (_, timeline) = engine
        .run_detailed(&[WorkloadSpec {
            graph: &graph,
            steps: 2,
            cpu_progr_only: false,
        }])
        .unwrap();
    for pair in timeline.windows(2) {
        assert!(pair[1].start.seconds() >= pair[0].end.seconds() - 1e-12);
    }
}
