//! Property-based invariants over ISA lowering: every kernel of every
//! seeded random DAG lowers to a validator-clean program, interpretation
//! retires within the validator's static cycle bound, and lowering is
//! byte-idempotent.

use pim_graph::cost::graph_costs;
use pim_graph::gen::{random_dag, GenSpec};
use pim_hw::arm::ProgrammablePim;
use pim_isa::{lower_binary, lower_kernel, validate, Machine};
use pim_mem::stack::StackConfig;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::KernelSource;
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::for_arm(&ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4))
}

/// Every well-formed op cost of a seeded graph as a lowered
/// (whole-kernel, programmable-binary) program pair.
fn lowered_programs(seed: u64) -> Vec<(pim_isa::Program, pim_isa::Program)> {
    let graph = random_dag(&GenSpec::from_seed(seed));
    let costs = graph_costs(&graph).unwrap();
    graph
        .ops()
        .iter()
        .zip(&costs)
        .filter(|(_, cost)| cost.is_well_formed())
        .map(|(op, cost)| {
            let kernel = KernelSource::from_cost(op.kind.tf_name(), cost);
            let whole = lower_kernel(&kernel, cost).unwrap();
            let set = BinarySet::generate(kernel).unwrap();
            let progr = pim_isa::lower_binary_with_traffic(
                &set,
                cost.bytes_read.bytes().max(0.0).round() as u64,
                cost.bytes_written.bytes().max(0.0).round() as u64,
            )
            .unwrap();
            // lower_binary and lower_binary_with_traffic must agree.
            assert_eq!(progr.encode(), lower_binary(&set, cost).unwrap().encode());
            (whole, progr)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lowering any generated kernel yields a program the structural
    /// validator accepts — counted loops close, calls resolve, `halt`
    /// terminates.
    #[test]
    fn generated_kernels_lower_validator_clean(seed in 0u64..10_000) {
        for (whole, progr) in lowered_programs(seed) {
            prop_assert!(
                validate(&whole).is_ok(),
                "{}: whole-kernel program invalid:\n{}",
                whole.name,
                whole.disassemble()
            );
            prop_assert!(
                validate(&progr).is_ok(),
                "{}: progr-binary program invalid:\n{}",
                progr.name,
                progr.disassemble()
            );
        }
    }

    /// Interpretation terminates, retires exactly the validator's
    /// multiplicity total, and never exceeds the static cycle bound.
    #[test]
    fn interpretation_stays_within_static_bounds(seed in 0u64..10_000) {
        let m = machine();
        for (which, program) in lowered_programs(seed)
            .into_iter()
            .flat_map(|(w, p)| [("whole", w), ("progr", p)])
        {
            let info = validate(&program).unwrap();
            let summary = m.run(&program).unwrap_or_else(|e| {
                panic!("{which} {}: {e}\n{}", program.name, program.disassemble())
            });
            prop_assert_eq!(
                summary.retired, info.retired_bound,
                "{} {}: straight-line retirement must hit the bound exactly",
                which, &program.name
            );
            prop_assert!(
                summary.issue_cycles <= m.cycle_bound(&program, &info),
                "{} {}: {} cycles over static bound {}",
                which, &program.name, summary.issue_cycles, m.cycle_bound(&program, &info)
            );
        }
    }

    /// Lowering is deterministic down to the encoded bytes: lowering the
    /// same kernel twice yields bit-identical programs.
    #[test]
    fn lowering_is_byte_idempotent(seed in 0u64..10_000) {
        let a = lowered_programs(seed);
        let b = lowered_programs(seed);
        prop_assert_eq!(a.len(), b.len());
        for ((wa, pa), (wb, pb)) in a.into_iter().zip(b) {
            prop_assert_eq!(wa.encode(), wb.encode(), "whole-kernel bytes diverged");
            prop_assert_eq!(pa.encode(), pb.encode(), "progr-binary bytes diverged");
        }
    }
}
