use pim_hw::cpu::CpuDevice;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use pim_runtime::profiler::profile_step;

fn main() {
    let kind: ModelKind = match std::env::args().nth(1).as_deref() {
        Some("vgg") => ModelKind::Vgg19,
        Some("alex") | None => ModelKind::AlexNet,
        Some("dcgan") => ModelKind::Dcgan,
        Some("resnet") => ModelKind::ResNet50,
        Some("inception") => ModelKind::InceptionV3,
        _ => ModelKind::AlexNet,
    };
    let batch: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let model = Model::build_with_batch(kind, batch).unwrap();
    let profile = profile_step(model.graph(), &CpuDevice::xeon_e5_2630_v3()).unwrap();
    println!(
        "=== {} batch {} ({} ops) ===",
        kind,
        batch,
        model.graph().op_count()
    );
    println!("profile rows by time:");
    for row in profile.by_name().iter().take(8) {
        println!(
            "  {:28} t={:.4}s mem={:>12} inv={}",
            row.name,
            row.time.seconds(),
            row.memory_accesses,
            row.invocations
        );
    }
    let mut rows = profile.by_name();
    rows.sort_by_key(|r| std::cmp::Reverse(r.memory_accesses));
    println!("profile rows by mem:");
    for row in rows.iter().take(8) {
        println!(
            "  {:28} t={:.4}s mem={:>12} inv={}",
            row.name,
            row.time.seconds(),
            row.memory_accesses,
            row.invocations
        );
    }
    let wl = WorkloadSpec {
        graph: model.graph(),
        steps: 2,
        cpu_progr_only: false,
    };
    for cfg in [
        EngineConfig::preset(SystemPreset::CpuOnly),
        EngineConfig::preset(SystemPreset::ProgrOnly),
        EngineConfig::preset(SystemPreset::FixedHost),
        EngineConfig::preset(SystemPreset::HeteroBare),
        EngineConfig::preset(SystemPreset::HeteroRc),
        EngineConfig::preset(SystemPreset::Hetero),
    ] {
        let name = cfg.name.clone();
        let r = Engine::new(cfg).run(&[wl]).unwrap();
        println!(
            "{:22} makespan={:>9.4}s op={:.3} dm={:.3} sync={:.3} E={:>8.2}J util={:.2}",
            name,
            r.makespan.seconds(),
            r.op_time.seconds(),
            r.data_movement_time.seconds(),
            r.sync_time.seconds(),
            r.dynamic_energy.joules(),
            r.ff_utilization
        );
    }
}
