//! The programmable PIM: an ARM Cortex-A9 class processor on the logic die
//! (§IV-D: four in-order cores at 2 GHz; only one programmable PIM is
//! provisioned).

use crate::params::{estimate, ComputeEstimate, DeviceParams};
use pim_common::units::{Seconds, Watts};
use pim_mem::energy::MemoryPath;
use pim_mem::stack::StackConfig;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// The programmable PIM device.
///
/// # Examples
///
/// ```
/// use pim_hw::arm::ProgrammablePim;
/// use pim_mem::stack::StackConfig;
///
/// let pim = ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4);
/// assert_eq!(pim.cores(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProgrammablePim {
    params: DeviceParams,
    cores: usize,
}

impl ProgrammablePim {
    /// Per-core multiply/add rate at the 2 GHz ARM clock: dual-issue
    /// in-order with NEON, 2 flops/cycle sustained.
    const FLOPS_PER_CORE: f64 = 4e9;

    /// Dynamic power per active core (Cortex-A9 class at 10 nm).
    const WATTS_PER_CORE: f64 = 0.6;

    /// Builds the programmable PIM with `cores` ARM cores, attached to the
    /// stack's internal TSV bandwidth. The ARM clock is independent of the
    /// memory clock, but the paper's §VI-D frequency study scales both PIM
    /// kinds together, so the stack's multiplier applies here too.
    pub fn cortex_a9(stack: &StackConfig, cores: usize) -> Self {
        let mult = stack.frequency_multiplier();
        let ma = Self::FLOPS_PER_CORE * cores as f64 * mult;
        ProgrammablePim {
            params: DeviceParams {
                name: "Progr PIM",
                ma_throughput: ma,
                other_throughput: ma,
                control_throughput: ma * 2.0,
                // The programmable PIM streams through the TSVs; it cannot
                // saturate the full aggregate on its own four cores.
                bandwidth: stack.internal_bandwidth() * 0.9,
                dispatch_overhead: Seconds::new(0.5e-6),
                dynamic_power: Watts::new(Self::WATTS_PER_CORE * cores as f64 * mult),
                memory_path: MemoryPath::StackInternal,
            },
            cores,
        }
    }

    /// Number of ARM cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Estimates one operation executed on the programmable PIM.
    pub fn estimate_op(&self, cost: &CostProfile) -> ComputeEstimate {
        estimate(&self.params, cost, 1.0)
    }
}

/// The "Progr PIM" *baseline configuration* of §VI: "executes all
/// operations on as many ARM-based programmable cores as needed by
/// workloads". Modeled as a large pool of A9 cores on the logic die whose
/// aggregate compute is only modestly above the host CPU (the paper's §VI-B:
/// "the speed of Progr PIM is only slightly faster than that of CPU, yet
/// the dynamic power ... is higher ... due to the additional processing
/// units"), while enjoying the internal-bandwidth advantage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProgrammablePool {
    params: DeviceParams,
}

impl ProgrammablePool {
    /// The as-many-cores-as-needed pool (72 A9 cores).
    pub fn unlimited(stack: &StackConfig) -> Self {
        let cores = 72.0;
        let mult = stack.frequency_multiplier();
        let ma = ProgrammablePim::FLOPS_PER_CORE * cores * mult;
        ProgrammablePool {
            params: DeviceParams {
                name: "Progr PIM pool",
                ma_throughput: ma,
                other_throughput: ma,
                control_throughput: ma * 2.0,
                bandwidth: stack.internal_bandwidth() * 0.9,
                dispatch_overhead: Seconds::new(0.5e-6),
                dynamic_power: Watts::new(ProgrammablePim::WATTS_PER_CORE * cores * 2.2 * mult),
                memory_path: MemoryPath::StackInternal,
            },
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Estimates one operation executed on the pool.
    pub fn estimate_op(&self, cost: &CostProfile) -> ComputeEstimate {
        estimate(&self.params, cost, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuDevice;
    use pim_common::units::Bytes;
    use pim_tensor::cost::OffloadClass;

    fn memory_bound_cost() -> CostProfile {
        CostProfile::compute(
            1e6,
            1e6,
            0.0,
            Bytes::new(1e9),
            Bytes::new(1e9),
            OffloadClass::FullyMulAdd,
            16,
        )
    }

    #[test]
    fn internal_bandwidth_beats_cpu_on_memory_bound_ops() {
        let stack = StackConfig::hmc2();
        let arm = ProgrammablePim::cortex_a9(&stack, 4);
        let cpu = CpuDevice::xeon_e5_2630_v3();
        let cost = memory_bound_cost();
        assert!(arm.estimate_op(&cost).time < cpu.estimate_op(&cost).time);
    }

    #[test]
    fn frequency_multiplier_speeds_up_the_pim() {
        let base = ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4);
        let fast = ProgrammablePim::cortex_a9(
            &StackConfig::hmc2().with_frequency_multiplier(4.0).unwrap(),
            4,
        );
        let cost = memory_bound_cost();
        assert!(fast.estimate_op(&cost).time < base.estimate_op(&cost).time);
    }

    #[test]
    fn pool_is_faster_but_hungrier_than_cpu() {
        let stack = StackConfig::hmc2();
        let pool = ProgrammablePool::unlimited(&stack);
        let cpu = CpuDevice::xeon_e5_2630_v3();
        assert!(pool.params().ma_throughput > cpu.params().ma_throughput);
        assert!(pool.params().dynamic_power > cpu.params().dynamic_power);
    }

    #[test]
    fn four_cores_are_weak_at_compute() {
        let arm = ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4);
        assert!((arm.params().ma_throughput - 16e9).abs() < 1.0);
    }
}
