//! The unified compute-device abstraction every simulated element
//! implements.
//!
//! The engine's placement policy, the shared event core, and the analytic
//! baselines (GPU, Neurocube) all consume devices through this trait, so a
//! single measurement path produces every `ExecutionReport` of the
//! evaluation. A device answers four questions:
//!
//! 1. *estimate* — how long and how much energy one operation takes
//!    ([`Device::estimate`]),
//! 2. *capability* — whether it can execute the operation at all
//!    ([`Device::accepts`]; the fixed-function pool rejects anything that
//!    is not pure multiply/add),
//! 3. *energy* — its dynamic power while busy ([`Device::dynamic_power`]),
//! 4. *busy-register state* — which Fig. 7 status register reports its
//!    idleness to the runtime scheduler ([`Device::register_class`]).

use crate::arm::{ProgrammablePim, ProgrammablePool};
use crate::cpu::CpuDevice;
use crate::fixed::FixedFunctionPool;
use crate::gpu::GpuDevice;
use crate::neurocube::Neurocube;
use crate::params::ComputeEstimate;
use pim_common::units::Watts;
use pim_tensor::cost::{CostProfile, OffloadClass};
use serde::Serialize;

/// Which of the Fig. 7 busy/idle registers a device reports through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegisterClass {
    /// The host CPU — tracked by the runtime itself, not a PIM register.
    Host,
    /// The programmable PIM's single busy bit.
    ProgrammablePim,
    /// The per-bank fixed-function busy bits.
    FixedBanks,
    /// A baseline device outside the heterogeneous stack (GPU, Neurocube);
    /// it has no register on the logic die.
    External,
}

/// A compute element the simulation core can schedule work onto.
pub trait Device {
    /// Display name ("CPU", "Progr PIM", "GPU", ...).
    fn name(&self) -> &'static str;

    /// Timing/energy estimate for executing one operation in full.
    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate;

    /// Whether this device is capable of executing the operation at all.
    /// Placement must never schedule a rejected op here.
    fn accepts(&self, _cost: &CostProfile) -> bool {
        true
    }

    /// Dynamic power drawn while busy.
    fn dynamic_power(&self) -> Watts;

    /// The busy-register the runtime queries for this device's idleness.
    fn register_class(&self) -> RegisterClass;
}

impl Device for CpuDevice {
    fn name(&self) -> &'static str {
        self.params().name
    }

    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.estimate_op(cost)
    }

    fn dynamic_power(&self) -> Watts {
        self.params().dynamic_power
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::Host
    }
}

impl Device for ProgrammablePim {
    fn name(&self) -> &'static str {
        self.params().name
    }

    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.estimate_op(cost)
    }

    fn dynamic_power(&self) -> Watts {
        self.params().dynamic_power
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::ProgrammablePim
    }
}

impl Device for ProgrammablePool {
    fn name(&self) -> &'static str {
        self.params().name
    }

    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.estimate_op(cost)
    }

    fn dynamic_power(&self) -> Watts {
        self.params().dynamic_power
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::ProgrammablePim
    }
}

impl Device for FixedFunctionPool {
    fn name(&self) -> &'static str {
        "Fixed PIM"
    }

    /// The whole pool executing the op's multiply/add work, dispatched
    /// from the host (the baseline "Fixed PIM" view; the engine's
    /// placement uses [`FixedFunctionPool::estimate_ma`] directly for
    /// partial grants and recursive dispatch).
    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.estimate_ma(cost, self.total_units(), true)
    }

    /// Multiplier/adder pairs execute nothing but multiply/add work.
    fn accepts(&self, cost: &CostProfile) -> bool {
        cost.class == OffloadClass::FullyMulAdd
    }

    fn dynamic_power(&self) -> Watts {
        self.config().per_unit_power * self.total_units() as f64
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::FixedBanks
    }
}

impl Device for Neurocube {
    fn name(&self) -> &'static str {
        self.params().name
    }

    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.estimate_op(cost)
    }

    fn dynamic_power(&self) -> Watts {
        self.params().dynamic_power
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::External
    }
}

/// The GPU baseline as a schedulable device: a [`GpuDevice`] pinned at the
/// model-specific average utilization the paper measured (§V-D). Step-level
/// PCIe effects (minibatch staging, working-set spill) stay with the
/// baseline harness in `pim-sim`, which folds them into the event core's
/// per-step epilogue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalyticGpu {
    gpu: GpuDevice,
    utilization: f64,
}

impl AnalyticGpu {
    /// Wraps a GPU at a fixed average utilization.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `utilization` is outside `(0, 1]`.
    pub fn new(gpu: GpuDevice, utilization: f64) -> Self {
        debug_assert!(utilization > 0.0 && utilization <= 1.0);
        AnalyticGpu { gpu, utilization }
    }

    /// The wrapped device.
    pub fn gpu(&self) -> &GpuDevice {
        &self.gpu
    }

    /// The pinned utilization.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }
}

impl Device for AnalyticGpu {
    fn name(&self) -> &'static str {
        "GPU"
    }

    fn estimate(&self, cost: &CostProfile) -> ComputeEstimate {
        self.gpu.estimate_op(cost, self.utilization)
    }

    fn dynamic_power(&self) -> Watts {
        self.gpu.dynamic_power()
    }

    fn register_class(&self) -> RegisterClass {
        RegisterClass::External
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPoolConfig;
    use pim_common::units::Bytes;
    use pim_mem::stack::StackConfig;

    fn ma_cost() -> CostProfile {
        CostProfile::compute(
            1e9,
            1e9,
            0.0,
            Bytes::new(1e7),
            Bytes::new(1e7),
            OffloadClass::FullyMulAdd,
            241,
        )
    }

    fn mixed_cost() -> CostProfile {
        CostProfile::compute(
            1e9,
            1e9,
            1e9,
            Bytes::new(1e7),
            Bytes::new(1e7),
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.5 },
            241,
        )
    }

    #[test]
    fn every_device_estimates_through_the_trait() {
        let stack = StackConfig::hmc2();
        let devices: Vec<Box<dyn Device>> = vec![
            Box::new(CpuDevice::xeon_e5_2630_v3()),
            Box::new(ProgrammablePim::cortex_a9(&stack, 4)),
            Box::new(ProgrammablePool::unlimited(&stack)),
            Box::new(FixedFunctionPool::new(FixedPoolConfig::paper_default(
                &stack,
            ))),
            Box::new(Neurocube::isca16(&stack)),
            Box::new(AnalyticGpu::new(GpuDevice::gtx_1080_ti(), 0.63)),
        ];
        for device in &devices {
            let est = device.estimate(&ma_cost());
            assert!(est.time.seconds() > 0.0, "{} zero time", device.name());
            assert!(est.energy.joules() > 0.0, "{} zero energy", device.name());
            assert!(
                device.dynamic_power().watts() > 0.0,
                "{} zero power",
                device.name()
            );
            assert!(
                device.accepts(&ma_cost()),
                "{} rejects mul/add",
                device.name()
            );
        }
    }

    #[test]
    fn fixed_pool_rejects_non_muladd_work() {
        let pool = FixedFunctionPool::new(FixedPoolConfig::paper_default(&StackConfig::hmc2()));
        assert!(pool.accepts(&ma_cost()));
        assert!(!pool.accepts(&mixed_cost()));
        assert_eq!(pool.register_class(), RegisterClass::FixedBanks);
    }

    #[test]
    fn trait_estimates_match_inherent_estimates() {
        let stack = StackConfig::hmc2();
        let cost = ma_cost();

        let cpu = CpuDevice::xeon_e5_2630_v3();
        assert_eq!(Device::estimate(&cpu, &cost), cpu.estimate_op(&cost));

        let arm = ProgrammablePim::cortex_a9(&stack, 4);
        assert_eq!(Device::estimate(&arm, &cost), arm.estimate_op(&cost));

        let gpu = AnalyticGpu::new(GpuDevice::gtx_1080_ti(), 0.63);
        assert_eq!(
            Device::estimate(&gpu, &cost),
            gpu.gpu().estimate_op(&cost, 0.63)
        );

        let pool = FixedFunctionPool::new(FixedPoolConfig::paper_default(&stack));
        assert_eq!(
            Device::estimate(&pool, &cost),
            pool.estimate_ma(&cost, pool.total_units(), true)
        );
    }

    #[test]
    fn register_classes_cover_the_fig7_file() {
        let stack = StackConfig::hmc2();
        assert_eq!(
            CpuDevice::xeon_e5_2630_v3().register_class(),
            RegisterClass::Host
        );
        assert_eq!(
            ProgrammablePim::cortex_a9(&stack, 4).register_class(),
            RegisterClass::ProgrammablePim
        );
        assert_eq!(
            Neurocube::isca16(&stack).register_class(),
            RegisterClass::External
        );
    }
}
