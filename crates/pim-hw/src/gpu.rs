//! The GPU baseline device model (Table IV: NVIDIA GTX 1080 Ti, CUDA 8 +
//! cuDNN 6).
//!
//! Per-op timing follows the common roofline formula at the model-specific
//! average utilization the paper measured (§V-D). Step-level effects the
//! paper discusses are modeled explicitly:
//!
//! * kernel-launch overhead per operation (GPUs "fuse and organize
//!   computation kernels into NN layers" precisely because fine-grained
//!   launches are costly — §II-D),
//! * minibatch staging over PCIe, partially overlapped with compute
//!   (§VI-A), and
//! * working-set spill over PCIe when a model's training footprint exceeds
//!   device memory — the reason "Hetero PIM leads to better performance
//!   than GPU with ResNet" (§VI-A).

use crate::params::{ComputeEstimate, DeviceParams};
use pim_common::units::{Bytes, Joules, Seconds, Watts};
use pim_mem::energy::MemoryPath;
use pim_mem::planar::{Gddr5xConfig, PCIE3_X16_BYTES_PER_SEC};
use pim_mem::traffic::bandwidth_efficiency;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// The GPU device.
///
/// # Examples
///
/// ```
/// use pim_hw::gpu::GpuDevice;
/// let gpu = GpuDevice::gtx_1080_ti();
/// assert!(gpu.peak_flops() > 1e13);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuDevice {
    /// Peak fp32 throughput, flops/second.
    peak_flops: f64,
    /// GDDR5X bandwidth, bytes/second.
    bandwidth: f64,
    /// Per-kernel launch latency.
    launch_overhead: Seconds,
    /// Board dynamic power while training.
    dynamic_power: Watts,
    /// Device memory capacity, bytes.
    capacity: Bytes,
}

impl GpuDevice {
    /// The paper's GTX 1080 Ti (28 SMs x 128 cores x 1.5 GHz x 2 flops).
    pub fn gtx_1080_ti() -> Self {
        let gddr = Gddr5xConfig::gtx_1080_ti();
        GpuDevice {
            peak_flops: 10.75e12,
            bandwidth: gddr.config().peak_bytes_per_sec,
            launch_overhead: Seconds::new(3e-6),
            dynamic_power: Watts::new(220.0),
            capacity: gddr.config().capacity,
        }
    }

    /// Peak fp32 throughput in flops/second.
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops
    }

    /// Board dynamic power while training.
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_power
    }

    /// Device memory capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Estimates one operation at the given average utilization (the
    /// paper's per-model TensorFlow utilizations, §V-D).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `utilization` is outside `(0, 1]`.
    pub fn estimate_op(&self, cost: &CostProfile, utilization: f64) -> ComputeEstimate {
        debug_assert!(utilization > 0.0 && utilization <= 1.0);
        let effective = self.peak_flops * utilization;
        let compute_time = Seconds::new(cost.total_flops() / effective);
        let memory_time = Seconds::new(
            cost.total_bytes().bytes() / (self.bandwidth * bandwidth_efficiency(cost.pattern)),
        );
        let busy = compute_time.max(memory_time);
        let time = busy + self.launch_overhead;
        let energy =
            self.dynamic_power * time + MemoryPath::GpuGddr5x.transfer_energy(cost.total_bytes());
        ComputeEstimate {
            time,
            compute_time,
            memory_time,
            dispatch_time: self.launch_overhead,
            energy,
        }
    }

    /// Unhidden PCIe staging time for one step's minibatch: TensorFlow
    /// overlaps prefetch with compute, hiding most but not all of it.
    pub fn staging_time(&self, minibatch: Bytes) -> Seconds {
        let hidden_fraction = 0.8;
        Seconds::new(minibatch.bytes() * (1.0 - hidden_fraction) / PCIE3_X16_BYTES_PER_SEC)
    }

    /// Spill time when the training working set exceeds device memory:
    /// the excess pages cross PCIe twice per step (out and back).
    pub fn spill_time(&self, working_set: Bytes) -> Seconds {
        let excess = (working_set.bytes() - self.capacity.bytes()).max(0.0);
        Seconds::new(2.0 * excess / PCIE3_X16_BYTES_PER_SEC)
    }

    /// Energy of PCIe transfers (staging + spill) at DDR-class pJ/bit.
    pub fn transfer_energy(&self, volume: Bytes) -> Joules {
        MemoryPath::HostDdr4.transfer_energy(volume)
    }

    /// Device-parameter view (for reports).
    pub fn as_device_params(&self, utilization: f64) -> DeviceParams {
        DeviceParams {
            name: "GPU",
            ma_throughput: self.peak_flops * utilization,
            other_throughput: self.peak_flops * utilization * 0.5,
            control_throughput: self.peak_flops * utilization,
            bandwidth: self.bandwidth,
            dispatch_overhead: self.launch_overhead,
            dynamic_power: self.dynamic_power,
            memory_path: MemoryPath::GpuGddr5x,
        }
    }
}

impl Default for GpuDevice {
    fn default() -> Self {
        GpuDevice::gtx_1080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_tensor::cost::OffloadClass;

    fn conv_cost() -> CostProfile {
        CostProfile::compute(
            1e10,
            1e10,
            0.0,
            Bytes::new(1e8),
            Bytes::new(1e8),
            OffloadClass::FullyMulAdd,
            241,
        )
    }

    #[test]
    fn utilization_derates_throughput() {
        let gpu = GpuDevice::gtx_1080_ti();
        let busy = gpu.estimate_op(&conv_cost(), 0.63);
        let idle = gpu.estimate_op(&conv_cost(), 0.28);
        assert!(idle.time > busy.time);
    }

    #[test]
    fn no_spill_when_working_set_fits() {
        let gpu = GpuDevice::gtx_1080_ti();
        assert_eq!(gpu.spill_time(Bytes::new(1e9)), Seconds::ZERO);
        assert!(gpu.spill_time(Bytes::new(20e9)).seconds() > 0.0);
    }

    #[test]
    fn staging_is_mostly_hidden() {
        let gpu = GpuDevice::gtx_1080_ti();
        let full = Seconds::new(1e8 / PCIE3_X16_BYTES_PER_SEC);
        assert!(gpu.staging_time(Bytes::new(1e8)) < full);
    }

    #[test]
    fn launch_overhead_dominates_tiny_ops() {
        let gpu = GpuDevice::gtx_1080_ti();
        let tiny = CostProfile::compute(
            1e3,
            1e3,
            0.0,
            Bytes::new(4e3),
            Bytes::new(4e3),
            OffloadClass::FullyMulAdd,
            8,
        );
        let est = gpu.estimate_op(&tiny, 0.63);
        assert!(est.dispatch_time > est.compute_time.max(est.memory_time));
    }
}
