//! The Neurocube comparison baseline (Kim et al., ISCA'16).
//!
//! Neurocube integrates one programmable processing engine per vault of a
//! 3D stack — 16 MAC-pipeline PEs with local routers — but no
//! fixed-function complement and no dynamic runtime scheduling. §VI-C
//! attributes Hetero PIM's advantage to exactly those two missing pieces.

use crate::params::{estimate, ComputeEstimate, DeviceParams};
use pim_common::units::{Seconds, Watts};
use pim_mem::energy::MemoryPath;
use pim_mem::stack::StackConfig;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// The Neurocube device: 16 programmable vault PEs.
///
/// # Examples
///
/// ```
/// use pim_hw::neurocube::Neurocube;
/// use pim_mem::stack::StackConfig;
///
/// let nc = Neurocube::isca16(&StackConfig::hmc2());
/// assert_eq!(nc.params().name, "Neurocube");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Neurocube {
    params: DeviceParams,
}

impl Neurocube {
    /// The published configuration scaled to the same stack: 16 vault PEs,
    /// each a 64-lane MAC pipeline at the memory clock (matching the
    /// row-buffer-wide operand buffering our fixed-function units use, so
    /// the comparison isolates heterogeneity + scheduling, not SIMD width).
    pub fn isca16(stack: &StackConfig) -> Self {
        let pes = 16.0;
        let lanes = 64.0;
        let ma = pes * lanes * 2.0 * stack.frequency_hz();
        Neurocube {
            params: DeviceParams {
                name: "Neurocube",
                ma_throughput: ma,
                // Programmable PEs run non-mul/add work at half rate.
                other_throughput: ma * 0.5,
                control_throughput: ma,
                bandwidth: stack.internal_bandwidth() * 0.8,
                dispatch_overhead: Seconds::new(1e-6),
                dynamic_power: Watts::new(9.0),
                memory_path: MemoryPath::StackInternal,
            },
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Estimates one operation on the Neurocube PEs.
    pub fn estimate_op(&self, cost: &CostProfile) -> ComputeEstimate {
        estimate(&self.params, cost, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{FixedFunctionPool, FixedPoolConfig};
    use pim_common::units::Bytes;
    use pim_tensor::cost::OffloadClass;

    #[test]
    fn hetero_fixed_pool_out_computes_neurocube() {
        let stack = StackConfig::hmc2();
        let nc = Neurocube::isca16(&stack);
        let pool = FixedFunctionPool::new(FixedPoolConfig::paper_default(&stack));
        let cost = CostProfile::compute(
            1e10,
            1e10,
            0.0,
            Bytes::new(1e8),
            Bytes::new(1e8),
            OffloadClass::FullyMulAdd,
            241,
        );
        let nc_est = nc.estimate_op(&cost);
        let pool_est = pool.estimate_ma(&cost, 241, true);
        // The paper reports >= 3x advantage even for the weakest model.
        assert!(nc_est.time.seconds() / pool_est.time.seconds() > 3.0);
    }

    #[test]
    fn neurocube_still_beats_host_bandwidth() {
        let stack = StackConfig::hmc2();
        let nc = Neurocube::isca16(&stack);
        assert!(nc.params().bandwidth > 100e9);
    }
}
