//! The hardware status registers of Fig. 7.
//!
//! "We employ a set of registers ... Each register indicates the idling of
//! either a bank of fixed-function PIMs or the programmable PIM. The
//! registers allow our software runtime scheduler to query the completion
//! of any computation and decide the idleness of processing units."

use pim_common::ids::BankId;
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// The busy/idle register file on the logic die.
///
/// # Examples
///
/// ```
/// use pim_hw::registers::StatusRegisters;
/// use pim_common::ids::BankId;
///
/// let mut regs = StatusRegisters::new(32);
/// assert!(regs.all_banks_idle());
/// regs.set_bank_busy(BankId::new(3), true).unwrap();
/// assert!(!regs.all_banks_idle());
/// assert!(regs.bank_busy(BankId::new(3)).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusRegisters {
    bank_busy: Vec<bool>,
    /// Running count of idle banks, kept in lockstep with `bank_busy` so
    /// the scheduler's per-decision availability query is O(1) instead of
    /// a scan over every bank register.
    idle_count: usize,
    progr_busy: bool,
}

impl StatusRegisters {
    /// A register file for `banks` fixed-function banks plus the
    /// programmable PIM, all idle.
    pub fn new(banks: usize) -> Self {
        StatusRegisters {
            bank_busy: vec![false; banks],
            idle_count: banks,
            progr_busy: false,
        }
    }

    fn check(&self, bank: BankId) -> Result<usize> {
        let i = bank.index();
        if i >= self.bank_busy.len() {
            return Err(PimError::UnknownId {
                kind: "bank register",
                index: i,
            });
        }
        Ok(i)
    }

    /// Reads one bank's busy bit.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for an out-of-range bank.
    pub fn bank_busy(&self, bank: BankId) -> Result<bool> {
        Ok(self.bank_busy[self.check(bank)?])
    }

    /// Writes one bank's busy bit.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for an out-of-range bank.
    pub fn set_bank_busy(&mut self, bank: BankId, busy: bool) -> Result<()> {
        let i = self.check(bank)?;
        if self.bank_busy[i] != busy {
            self.bank_busy[i] = busy;
            if busy {
                self.idle_count -= 1;
            } else {
                self.idle_count += 1;
            }
        }
        Ok(())
    }

    /// Reads the programmable PIM's busy bit.
    pub fn progr_busy(&self) -> bool {
        self.progr_busy
    }

    /// Writes the programmable PIM's busy bit.
    pub fn set_progr_busy(&mut self, busy: bool) {
        self.progr_busy = busy;
    }

    /// True when every fixed-function bank is idle.
    pub fn all_banks_idle(&self) -> bool {
        self.idle_count == self.bank_busy.len()
    }

    /// Number of idle fixed-function banks.
    pub fn idle_bank_count(&self) -> usize {
        self.idle_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_bank_is_rejected() {
        let regs = StatusRegisters::new(4);
        assert!(regs.bank_busy(BankId::new(4)).is_err());
    }

    #[test]
    fn busy_bits_toggle_independently() {
        let mut regs = StatusRegisters::new(8);
        regs.set_bank_busy(BankId::new(1), true).unwrap();
        regs.set_progr_busy(true);
        assert_eq!(regs.idle_bank_count(), 7);
        assert!(regs.progr_busy());
        regs.set_bank_busy(BankId::new(1), false).unwrap();
        assert!(regs.all_banks_idle());
    }
}
