//! Deterministic fault model for the heterogeneous PIM complement.
//!
//! Real PIM deployments are not fault-free: the UPMEM characterization
//! studies report per-DPU failures and stragglers that a production
//! runtime must survive. This module describes *what goes wrong* as pure
//! data — a seeded, xorshift-driven [`FaultPlan`] — while the engine owns
//! *how to recover* (bounded retry, re-dispatch, graceful degradation
//! along the paper's fixed → programmable → host placement chain).
//!
//! Everything here is deterministic by construction:
//!
//! * the seeded generator ([`FaultPlan::seeded`]) derives every permanent
//!   fault and straggler window from one xorshift* stream, and
//! * the per-attempt decisions ([`FaultPlan::transient_fails`],
//!   [`FaultPlan::times_out`], [`FaultPlan::fail_point`]) are pure
//!   functions of `(seed, lane, workload, step, op, attempt)` — they do
//!   not consume shared RNG state, so the verdict for one attempt never
//!   depends on the order in which the scheduler asks.
//!
//! The same plan therefore yields byte-identical runs, reports, and
//! traces, which is what makes faulted schedules golden-testable and
//! statically checkable (`pim-verify`'s fault-legality pass replays a
//! timeline against the plan).

use pim_common::units::Seconds;
use serde::Serialize;

/// The same xorshift* step the seeded graph generator uses: deterministic,
/// dependency-free, stable across platforms. Not for cryptography — for
/// naming fault scenarios by seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator (a zero seed is mapped to a nonzero state).
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)` with 53-bit resolution.
    pub fn frac(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Which shared PIM resource a fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultTarget {
    /// Quarantines this many fixed-function units (clamped to the pool).
    FixedUnits(usize),
    /// Quarantines the programmable ARM PIM entirely.
    ProgrPim,
}

/// The device lane a transient fault, link timeout, or straggler window
/// applies to. The host CPU is the reliability anchor of the recovery
/// policy and never faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultLane {
    /// The fixed-function pool (and the host↔pool link).
    Fixed,
    /// The programmable ARM PIM (and the host↔ARM link).
    Progr,
}

impl FaultLane {
    /// Stable salt distinguishing the lanes in decision hashes.
    fn salt(self) -> u64 {
        match self {
            FaultLane::Fixed => 0xF1,
            FaultLane::Progr => 0xA9,
        }
    }
}

/// One permanent (fail-stop) fault: at time `at` the targeted resource is
/// quarantined — in-flight work on it is killed and re-dispatched, and the
/// scheduler never places on it again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PermanentFault {
    /// Simulated time the fault strikes (`<= 0` means before the run).
    pub at: Seconds,
    /// What is lost.
    pub target: FaultTarget,
}

/// A latency-degradation window: ops *started* on `lane` within
/// `[from, until)` run `multiplier`× slower (thermal throttling, refresh
/// storms, a flaky vault).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StragglerWindow {
    /// Affected device lane.
    pub lane: FaultLane,
    /// Window start (inclusive).
    pub from: Seconds,
    /// Window end (exclusive).
    pub until: Seconds,
    /// Latency multiplier, `>= 1`.
    pub multiplier: f64,
}

/// A complete, deterministic description of every fault a run will see.
///
/// # Examples
///
/// ```
/// use pim_hw::faults::{FaultLane, FaultPlan};
/// use pim_common::units::Seconds;
///
/// let none = FaultPlan::none();
/// assert!(none.is_none());
/// assert!(!none.transient_fails(FaultLane::Fixed, 0, 0, 0, 0));
///
/// let plan = FaultPlan::seeded(7, 0.1, Seconds::new(1e-3), 444);
/// // Same seed, same plan — reproducible down to every decision.
/// assert_eq!(plan, FaultPlan::seeded(7, 0.1, Seconds::new(1e-3), 444));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed driving every per-attempt decision hash.
    pub seed: u64,
    /// Probability an attempt on a PIM lane suffers a transient
    /// mid-flight failure (per attempt, independent).
    pub transient_rate: f64,
    /// Probability an attempt's host↔PIM completion message is lost and
    /// the op must be re-dispatched after the timeout window.
    pub timeout_rate: f64,
    /// Fail-stop faults, in strike order.
    pub permanents: Vec<PermanentFault>,
    /// Latency-degradation windows.
    pub stragglers: Vec<StragglerWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. The engine keeps all fault
    /// bookkeeping off the hot path when it sees this.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            timeout_rate: 0.0,
            permanents: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_none(&self) -> bool {
        self.transient_rate <= 0.0
            && self.timeout_rate <= 0.0
            && self.permanents.is_empty()
            && self.stragglers.is_empty()
    }

    /// Derives a full scenario from one seed and an aggregate fault rate.
    ///
    /// `horizon` is the expected zero-fault makespan (permanent faults and
    /// straggler windows are placed at fractions of it); `ff_units` is the
    /// pool size quarantine chunks are scaled against. Rates are clamped
    /// to `[0, 1]`. The mapping is fixed:
    ///
    /// * transients at `rate`, link timeouts at `rate / 4`,
    /// * `round(rate × ff_units)` fixed-function units quarantined in up
    ///   to two chunks inside `[0.25, 0.75) × horizon`,
    /// * the programmable PIM fails permanently with probability
    ///   `rate / 4` (seed-determined), late in the run,
    /// * one straggler window per lane, `1 + 3 × rate` slowdown.
    pub fn seeded(seed: u64, rate: f64, horizon: Seconds, ff_units: usize) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        if rate == 0.0 {
            return FaultPlan::none();
        }
        let mut rng = FaultRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut permanents = Vec::new();
        let quarantine_total = (rate * ff_units as f64).round() as usize;
        if quarantine_total > 0 {
            let chunks = if quarantine_total >= 2 && rng.frac() < 0.5 {
                2
            } else {
                1
            };
            let first = quarantine_total.div_ceil(chunks);
            let mut left = quarantine_total;
            for _ in 0..chunks {
                let units = first.min(left);
                left -= units;
                permanents.push(PermanentFault {
                    at: horizon * (0.25 + 0.5 * rng.frac()),
                    target: FaultTarget::FixedUnits(units),
                });
            }
        }
        if rng.frac() < rate / 4.0 {
            permanents.push(PermanentFault {
                at: horizon * (0.6 + 0.3 * rng.frac()),
                target: FaultTarget::ProgrPim,
            });
        }
        permanents.sort_by(|a, b| a.at.seconds().total_cmp(&b.at.seconds()));
        let multiplier = 1.0 + 3.0 * rate;
        let stragglers = vec![
            StragglerWindow {
                lane: FaultLane::Fixed,
                from: horizon * (0.1 + 0.2 * rng.frac()),
                until: horizon * (0.4 + 0.2 * rng.frac()),
                multiplier,
            },
            StragglerWindow {
                lane: FaultLane::Progr,
                from: horizon * (0.3 + 0.2 * rng.frac()),
                until: horizon * (0.6 + 0.2 * rng.frac()),
                multiplier,
            },
        ];
        FaultPlan {
            seed,
            transient_rate: rate,
            timeout_rate: rate / 4.0,
            permanents,
            stragglers,
        }
    }

    /// A plan whose only fault is quarantining `units` fixed-function
    /// units before the run starts — the degradation scenario the
    /// acceptance tests exercise (all-units → the programmable-only
    /// preset).
    pub fn quarantine_ff_at_start(units: usize) -> Self {
        FaultPlan {
            permanents: vec![PermanentFault {
                at: Seconds::ZERO,
                target: FaultTarget::FixedUnits(units),
            }],
            ..FaultPlan::none()
        }
    }

    /// Adds one permanent fault (kept sorted by strike time).
    pub fn with_permanent(mut self, at: Seconds, target: FaultTarget) -> Self {
        self.permanents.push(PermanentFault { at, target });
        self.permanents
            .sort_by(|a, b| a.at.seconds().total_cmp(&b.at.seconds()));
        self
    }

    /// Adds one straggler window.
    pub fn with_straggler(mut self, window: StragglerWindow) -> Self {
        self.stragglers.push(window);
        self
    }

    /// The decision draw for one salted coordinate tuple, in `[0, 1)` —
    /// a pure function, independent of query order.
    fn draw(&self, salt: u64, wl: usize, step: usize, op: usize, attempt: u32) -> f64 {
        let mut state = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for word in [wl as u64, step as u64, op as u64, u64::from(attempt)] {
            state = (state ^ word)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .rotate_left(31);
        }
        FaultRng::new(state).frac()
    }

    /// Does this attempt suffer a transient mid-flight failure on `lane`?
    pub fn transient_fails(
        &self,
        lane: FaultLane,
        wl: usize,
        step: usize,
        op: usize,
        attempt: u32,
    ) -> bool {
        self.transient_rate > 0.0
            && self.draw(lane.salt(), wl, step, op, attempt) < self.transient_rate
    }

    /// Does this attempt's completion message get lost on the host↔PIM
    /// link (detected only by timeout)?
    pub fn times_out(
        &self,
        lane: FaultLane,
        wl: usize,
        step: usize,
        op: usize,
        attempt: u32,
    ) -> bool {
        self.timeout_rate > 0.0
            && self.draw(lane.salt() ^ 0x7100, wl, step, op, attempt) < self.timeout_rate
    }

    /// Fraction of the attempt's duration that elapses before a transient
    /// failure manifests, in `[0.25, 0.75)` — deterministic per attempt.
    pub fn fail_point(&self, wl: usize, step: usize, op: usize, attempt: u32) -> f64 {
        0.25 + 0.5 * self.draw(0xFA11, wl, step, op, attempt)
    }

    /// Latency multiplier for an op *started* at `at` on `lane` (product
    /// of every overlapping straggler window; `1.0` outside all windows).
    pub fn latency_multiplier(&self, lane: FaultLane, at: Seconds) -> f64 {
        let t = at.seconds();
        self.stragglers
            .iter()
            .filter(|w| w.lane == lane && w.from.seconds() <= t && t < w.until.seconds())
            .map(|w| w.multiplier.max(1.0))
            .product()
    }

    /// Fixed-function units quarantined by permanent faults striking at
    /// or before `t`.
    pub fn ff_quarantined_by(&self, t: Seconds) -> usize {
        self.permanents
            .iter()
            .filter(|p| p.at <= t)
            .map(|p| match p.target {
                FaultTarget::FixedUnits(u) => u,
                FaultTarget::ProgrPim => 0,
            })
            .sum()
    }

    /// When the programmable PIM is permanently lost, if ever.
    pub fn progr_quarantine_at(&self) -> Option<Seconds> {
        self.permanents
            .iter()
            .find(|p| p.target == FaultTarget::ProgrPim)
            .map(|p| p.at)
    }

    /// Fixed-function units already quarantined before the run starts.
    pub fn initial_ff_quarantine(&self) -> usize {
        self.ff_quarantined_by(Seconds::ZERO)
    }

    /// True when the programmable PIM is quarantined before the run
    /// starts.
    pub fn progr_quarantined_initially(&self) -> bool {
        self.progr_quarantine_at()
            .is_some_and(|at| at <= Seconds::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_injects() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for attempt in 0..4 {
            assert!(!plan.transient_fails(FaultLane::Fixed, 0, 1, 2, attempt));
            assert!(!plan.times_out(FaultLane::Progr, 0, 1, 2, attempt));
        }
        assert_eq!(
            plan.latency_multiplier(FaultLane::Fixed, Seconds::new(1.0)),
            1.0
        );
        assert_eq!(plan.ff_quarantined_by(Seconds::new(1e9)), 0);
        assert!(plan.progr_quarantine_at().is_none());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let horizon = Seconds::new(2e-3);
        let a = FaultPlan::seeded(42, 0.1, horizon, 444);
        let b = FaultPlan::seeded(42, 0.1, horizon, 444);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 0.1, horizon, 444);
        assert_ne!(a, c, "different seeds should draw different scenarios");
        assert!(!a.is_none());
    }

    #[test]
    fn decisions_are_order_independent() {
        let plan = FaultPlan::seeded(7, 0.5, Seconds::new(1e-3), 444);
        let first = plan.transient_fails(FaultLane::Fixed, 1, 2, 3, 0);
        // Interleave unrelated queries; the original verdict must hold.
        for op in 0..32 {
            plan.transient_fails(FaultLane::Progr, 0, 0, op, 1);
            plan.times_out(FaultLane::Fixed, 0, 1, op, 0);
        }
        assert_eq!(plan.transient_fails(FaultLane::Fixed, 1, 2, 3, 0), first);
    }

    #[test]
    fn transient_rate_is_roughly_honored() {
        let plan = FaultPlan::seeded(11, 0.25, Seconds::new(1e-3), 444);
        let hits = (0..4000)
            .filter(|&op| plan.transient_fails(FaultLane::Fixed, 0, 0, op, 0))
            .count();
        let frac = hits as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "observed rate {frac}");
    }

    #[test]
    fn quarantine_accumulates_over_time() {
        let plan = FaultPlan::none()
            .with_permanent(Seconds::new(1.0), FaultTarget::FixedUnits(100))
            .with_permanent(Seconds::new(0.5), FaultTarget::FixedUnits(50));
        // Builder keeps strike order sorted.
        assert!(plan.permanents[0].at < plan.permanents[1].at);
        assert_eq!(plan.ff_quarantined_by(Seconds::new(0.4)), 0);
        assert_eq!(plan.ff_quarantined_by(Seconds::new(0.5)), 50);
        assert_eq!(plan.ff_quarantined_by(Seconds::new(2.0)), 150);
    }

    #[test]
    fn straggler_windows_multiply_only_inside() {
        let plan = FaultPlan::none().with_straggler(StragglerWindow {
            lane: FaultLane::Progr,
            from: Seconds::new(1.0),
            until: Seconds::new(2.0),
            multiplier: 3.0,
        });
        assert_eq!(
            plan.latency_multiplier(FaultLane::Progr, Seconds::new(0.5)),
            1.0
        );
        assert_eq!(
            plan.latency_multiplier(FaultLane::Progr, Seconds::new(1.5)),
            3.0
        );
        assert_eq!(
            plan.latency_multiplier(FaultLane::Fixed, Seconds::new(1.5)),
            1.0
        );
        assert_eq!(
            plan.latency_multiplier(FaultLane::Progr, Seconds::new(2.0)),
            1.0
        );
    }

    #[test]
    fn fail_point_stays_mid_flight() {
        let plan = FaultPlan::seeded(3, 0.3, Seconds::new(1e-3), 444);
        for op in 0..100 {
            let f = plan.fail_point(0, 0, op, 0);
            assert!((0.25..0.75).contains(&f), "fail point {f}");
        }
    }

    #[test]
    fn quarantine_all_ff_is_initial() {
        let plan = FaultPlan::quarantine_ff_at_start(444);
        assert_eq!(plan.initial_ff_quarantine(), 444);
        assert!(!plan.progr_quarantined_initially());
    }
}
