//! Shared device-parameter vocabulary and the common timing/energy formula.
//!
//! Every compute element — host CPU, GPU, fixed-function PIM pool,
//! programmable ARM PIM, Neurocube baseline — is described by a
//! [`DeviceParams`] record and estimated with [`estimate`]:
//!
//! ```text
//! t_compute = ma_work / ma_throughput + other_work / other_throughput
//! t_memory  = bytes / (bandwidth * pattern_efficiency)
//! t_op      = max(t_compute, t_memory) + dispatch_overhead
//! energy    = dynamic_power * t_op + path_energy(bytes)
//! ```
//!
//! **Calibration note (see DESIGN.md §4.4):** the throughput constants are
//! calibrated against the paper's *reported ratios*, since the authors'
//! silicon models (Synopsys DC/PrimeTime, McPAT on their netlists, real
//! Xeon/1080 Ti measurements) are not reproducible. Every constant is an
//! explicit field here, not a buried magic number.

use pim_common::units::{Bytes, Joules, Seconds, Watts};
use pim_mem::energy::MemoryPath;
use pim_mem::traffic::{bandwidth_efficiency, AccessPattern};
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// Static description of one compute element.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceParams {
    /// Display name ("CPU", "Fixed PIM", ...).
    pub name: &'static str,
    /// Peak multiply/add throughput in flops/second.
    pub ma_throughput: f64,
    /// Throughput for non-multiply/add arithmetic (compares, exp, div) in
    /// flops/second.
    pub other_throughput: f64,
    /// Throughput for control/bookkeeping instructions in ops/second.
    pub control_throughput: f64,
    /// Peak main-memory bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed cost to dispatch one kernel/op onto this device.
    pub dispatch_overhead: Seconds,
    /// Dynamic power drawn while the device is busy.
    pub dynamic_power: Watts,
    /// Which memory path this device's traffic takes (determines pJ/bit).
    pub memory_path: MemoryPath,
}

/// Timing/energy estimate for one operation on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComputeEstimate {
    /// Total operation latency including dispatch.
    pub time: Seconds,
    /// Arithmetic component.
    pub compute_time: Seconds,
    /// Memory component (overlapped with compute; the max is taken).
    pub memory_time: Seconds,
    /// Dispatch overhead component.
    pub dispatch_time: Seconds,
    /// Dynamic energy: device power over latency plus DRAM access energy.
    pub energy: Joules,
}

impl ComputeEstimate {
    /// An estimate of zero cost.
    pub fn zero() -> Self {
        ComputeEstimate {
            time: Seconds::ZERO,
            compute_time: Seconds::ZERO,
            memory_time: Seconds::ZERO,
            dispatch_time: Seconds::ZERO,
            energy: Joules::ZERO,
        }
    }
}

/// Applies the common device formula to a cost profile.
///
/// `ma_scale` scales the multiply/add throughput for devices whose usable
/// parallelism depends on the op (the fixed-function pool passes
/// `units_granted / total_units`); pass 1.0 elsewhere.
///
/// # Examples
///
/// ```
/// use pim_hw::params::estimate;
/// use pim_hw::cpu::CpuDevice;
/// use pim_tensor::cost::{CostProfile, OffloadClass};
/// use pim_common::units::Bytes;
///
/// let cpu = CpuDevice::xeon_e5_2630_v3();
/// let cost = CostProfile::compute(
///     1e9, 1e9, 0.0, Bytes::new(1e8), Bytes::new(1e8),
///     OffloadClass::FullyMulAdd, 100,
/// );
/// let est = estimate(cpu.params(), &cost, 1.0);
/// assert!(est.time.seconds() > 0.0);
/// assert!(est.energy.joules() > 0.0);
/// ```
///
/// # Panics
///
/// Panics in debug builds when `ma_scale` is not in `(0, 1]` or the params
/// contain non-positive throughputs.
pub fn estimate(params: &DeviceParams, cost: &CostProfile, ma_scale: f64) -> ComputeEstimate {
    debug_assert!(ma_scale > 0.0 && ma_scale <= 1.0, "ma_scale out of range");
    debug_assert!(params.ma_throughput > 0.0 && params.other_throughput > 0.0);
    let compute_time = Seconds::new(
        cost.ma_flops() / (params.ma_throughput * ma_scale)
            + cost.other_flops / params.other_throughput
            + cost.control_ops / params.control_throughput,
    );
    let memory_time = memory_time(params, cost.total_bytes(), cost.pattern);
    let busy = compute_time.max(memory_time);
    let time = busy + params.dispatch_overhead;
    let energy =
        params.dynamic_power * time + params.memory_path.transfer_energy(cost.total_bytes());
    ComputeEstimate {
        time,
        compute_time,
        memory_time,
        dispatch_time: params.dispatch_overhead,
        energy,
    }
}

/// Time to move `bytes` through this device's memory system.
pub fn memory_time(params: &DeviceParams, bytes: Bytes, pattern: AccessPattern) -> Seconds {
    Seconds::new(bytes.bytes() / (params.bandwidth * bandwidth_efficiency(pattern)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_tensor::cost::OffloadClass;

    fn params() -> DeviceParams {
        DeviceParams {
            name: "test",
            ma_throughput: 1e9,
            other_throughput: 1e9,
            control_throughput: 1e10,
            bandwidth: 1e9,
            dispatch_overhead: Seconds::new(1e-6),
            dynamic_power: Watts::new(10.0),
            memory_path: MemoryPath::HostDdr4,
        }
    }

    fn cost(ma: f64, bytes: f64) -> CostProfile {
        CostProfile::compute(
            ma / 2.0,
            ma / 2.0,
            0.0,
            Bytes::new(bytes / 2.0),
            Bytes::new(bytes / 2.0),
            OffloadClass::FullyMulAdd,
            1,
        )
    }

    #[test]
    fn compute_bound_op_is_limited_by_flops() {
        let est = estimate(&params(), &cost(1e9, 64.0), 1.0);
        assert!(est.compute_time > est.memory_time);
        // ~1 second of MA work plus control overhead.
        assert!(est.time.seconds() >= 1.0);
    }

    #[test]
    fn memory_bound_op_is_limited_by_bandwidth() {
        let est = estimate(&params(), &cost(8.0, 1e9), 1.0);
        assert!(est.memory_time > est.compute_time);
        // 1 GB over 0.9 GB/s effective.
        assert!((est.time.seconds() - 1.0 / 0.9).abs() < 0.01);
    }

    #[test]
    fn ma_scale_slows_down_partial_allocation() {
        let full = estimate(&params(), &cost(1e9, 64.0), 1.0);
        let half = estimate(&params(), &cost(1e9, 64.0), 0.5);
        assert!(half.time > full.time);
    }

    #[test]
    fn dispatch_overhead_always_charged() {
        let est = estimate(&params(), &CostProfile::empty(), 1.0);
        assert_eq!(est.time, Seconds::new(1e-6));
    }

    #[test]
    fn energy_includes_dram_access_component() {
        let small = estimate(&params(), &cost(1e6, 64.0), 1.0);
        let big = estimate(&params(), &cost(1e6, 1e9), 1.0);
        assert!(big.energy > small.energy);
    }
}
