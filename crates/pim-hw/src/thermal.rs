//! HotSpot-lite steady-state thermal model of the logic die.
//!
//! Validates the §IV-D placement policy: per-bank temperature rise is the
//! bank's power through its position-dependent thermal resistance plus a
//! lateral-coupling share of its grid neighbors.

use crate::placement::{bank_positions, thermal_aware_placement, uniform_placement};
use serde::Serialize;

/// Ambient (heat-sink side) temperature in Celsius.
pub const AMBIENT_C: f64 = 45.0;

/// DRAM reliability ceiling in Celsius (standard 3D-stack constraint).
pub const THERMAL_LIMIT_C: f64 = 85.0;

/// Fraction of a neighbor's power that couples laterally.
const COUPLING: f64 = 0.15;

/// Steady-state temperature of each bank for a unit placement.
///
/// `watts_per_unit` is the dynamic power of one busy fixed-function unit.
///
/// # Examples
///
/// ```
/// use pim_hw::thermal::{bank_temperatures, AMBIENT_C};
/// use pim_hw::placement::thermal_aware_placement;
///
/// let temps = bank_temperatures(&thermal_aware_placement(444, 32), 0.027);
/// assert!(temps.iter().all(|&t| t > AMBIENT_C));
/// ```
pub fn bank_temperatures(placement: &[usize], watts_per_unit: f64) -> Vec<f64> {
    let banks = placement.len();
    let positions = bank_positions(banks);
    let cols = {
        // Match the grid used by `bank_positions`.
        let mut c = (banks as f64).sqrt().ceil() as usize;
        while !banks.is_multiple_of(c) {
            c += 1;
        }
        c
    };
    let rows = banks / cols;
    let power: Vec<f64> = placement
        .iter()
        .map(|&u| u as f64 * watts_per_unit)
        .collect();
    (0..banks)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            let mut p = power[i];
            let mut neighbors = 0.0;
            if r > 0 {
                neighbors += power[i - cols];
            }
            if r + 1 < rows {
                neighbors += power[i + cols];
            }
            if c > 0 {
                neighbors += power[i - 1];
            }
            if c + 1 < cols {
                neighbors += power[i + 1];
            }
            p += COUPLING * neighbors;
            AMBIENT_C + positions[i].thermal_resistance() * p
        })
        .collect()
}

/// Peak bank temperature for a placement.
pub fn peak_temperature(placement: &[usize], watts_per_unit: f64) -> f64 {
    bank_temperatures(placement, watts_per_unit)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Thermal report comparing the paper's placement against a uniform one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThermalReport {
    /// Peak temperature under the thermal-aware placement.
    pub thermal_aware_peak_c: f64,
    /// Peak temperature under uniform placement.
    pub uniform_peak_c: f64,
    /// True when the thermal-aware placement stays below the DRAM limit.
    pub within_limit: bool,
}

/// Evaluates both placements for a pool of `units` over `banks`.
pub fn evaluate_placements(units: usize, banks: usize, watts_per_unit: f64) -> ThermalReport {
    let aware = peak_temperature(&thermal_aware_placement(units, banks), watts_per_unit);
    let uniform = peak_temperature(&uniform_placement(units, banks), watts_per_unit);
    ThermalReport {
        thermal_aware_peak_c: aware,
        uniform_peak_c: uniform,
        within_limit: aware <= THERMAL_LIMIT_C,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_configuration_is_thermally_feasible() {
        let report = evaluate_placements(444, 32, 0.027);
        assert!(report.within_limit, "peak {}", report.thermal_aware_peak_c);
    }

    #[test]
    fn thermal_aware_beats_uniform_placement() {
        // The §IV-D rationale: pushing units to edge/corner banks lowers
        // the hottest bank.
        let report = evaluate_placements(444, 32, 0.027);
        assert!(
            report.thermal_aware_peak_c < report.uniform_peak_c,
            "aware {} vs uniform {}",
            report.thermal_aware_peak_c,
            report.uniform_peak_c
        );
    }

    #[test]
    fn idle_die_sits_at_ambient() {
        let temps = bank_temperatures(&vec![0; 32], 0.027);
        assert!(temps.iter().all(|&t| (t - AMBIENT_C).abs() < 1e-9));
    }

    proptest! {
        #[test]
        fn more_power_is_never_cooler(units in 1usize..445) {
            let placement = thermal_aware_placement(units, 32);
            let cool = peak_temperature(&placement, 0.01);
            let hot = peak_temperature(&placement, 0.05);
            prop_assert!(hot >= cool);
        }
    }
}
