//! Device models for every compute element of the evaluation.
//!
//! * [`cpu`] — the Xeon host (Table IV),
//! * [`gpu`] — the GTX 1080 Ti baseline with utilization, launch-overhead,
//!   staging and working-set-spill effects,
//! * [`fixed`] — the 444-unit fixed-function PIM pool with allocation state,
//! * [`arm`] — the programmable ARM PIM (and the all-programmable baseline
//!   pool),
//! * [`neurocube`] — the prior-work comparison point (Fig. 10),
//! * [`placement`] / [`thermal`] — the §IV-D thermal-aware unit placement
//!   and its HotSpot-lite validation,
//! * [`power`] — the McPAT-lite logic-die design-space exploration that
//!   re-derives the 444-unit figure,
//! * [`faults`] — the deterministic seeded fault model ([`faults::FaultPlan`])
//!   the engine's recovery policy executes against,
//! * [`registers`] — the Fig. 7 busy/idle register file,
//! * [`params`] — the shared timing/energy formula.
//!
//! Calibration policy is documented in DESIGN.md §4.4: constants reproduce
//! the paper's reported *ratios*, and each one is a named, documented field.
#![forbid(unsafe_code)]

pub mod arm;
pub mod cpu;
pub mod device;
pub mod faults;
pub mod fixed;
pub mod gpu;
pub mod neurocube;
pub mod params;
pub mod placement;
pub mod power;
pub mod registers;
pub mod thermal;

pub use arm::{ProgrammablePim, ProgrammablePool};
pub use cpu::CpuDevice;
pub use device::{AnalyticGpu, Device, RegisterClass};
pub use fixed::{FixedFunctionPool, FixedPoolConfig};
pub use gpu::GpuDevice;
pub use params::{ComputeEstimate, DeviceParams};
