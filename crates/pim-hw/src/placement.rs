//! Thermal-aware placement of fixed-function units over the banks.
//!
//! §IV-D: "we place more fixed-function PIMs on edge and corner banks than
//! on central banks. The rationale behind is that the banks at the edge and
//! corner have better thermal dissipation paths."

use serde::{Deserialize, Serialize};

/// Position class of a bank in the logic-die floorplan grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankPosition {
    /// Four grid corners: best dissipation.
    Corner,
    /// Non-corner perimeter banks.
    Edge,
    /// Interior banks: worst dissipation.
    Center,
}

impl BankPosition {
    /// Relative unit-placement weight (corner > edge > center).
    pub fn weight(self) -> usize {
        match self {
            BankPosition::Corner => 3,
            BankPosition::Edge => 2,
            BankPosition::Center => 1,
        }
    }

    /// Steady-state thermal resistance toward ambient, kelvin/watt.
    pub fn thermal_resistance(self) -> f64 {
        match self {
            BankPosition::Corner => 1.0,
            BankPosition::Edge => 1.4,
            BankPosition::Center => 2.2,
        }
    }
}

/// Floorplan grid dimensions for a bank count (8x4 for the 32-bank stack).
fn grid_dims(banks: usize) -> (usize, usize) {
    let mut cols = (banks as f64).sqrt().ceil() as usize;
    while !banks.is_multiple_of(cols) {
        cols += 1;
    }
    (banks / cols, cols)
}

/// Position class of each bank in the floorplan.
pub fn bank_positions(banks: usize) -> Vec<BankPosition> {
    let (rows, cols) = grid_dims(banks);
    let mut positions = Vec::with_capacity(banks);
    for r in 0..rows {
        for c in 0..cols {
            let on_row_edge = r == 0 || r == rows - 1;
            let on_col_edge = c == 0 || c == cols - 1;
            positions.push(if on_row_edge && on_col_edge {
                BankPosition::Corner
            } else if on_row_edge || on_col_edge {
                BankPosition::Edge
            } else {
                BankPosition::Center
            });
        }
    }
    positions
}

/// Distributes `units` over `banks` proportionally to thermal weight, using
/// largest-remainder rounding so the total is exact.
///
/// # Examples
///
/// ```
/// use pim_hw::placement::thermal_aware_placement;
/// let placement = thermal_aware_placement(444, 32);
/// assert_eq!(placement.iter().sum::<usize>(), 444);
/// // Corner banks (index 0) carry more units than central ones.
/// assert!(placement[0] > placement[9]);
/// ```
pub fn thermal_aware_placement(units: usize, banks: usize) -> Vec<usize> {
    let positions = bank_positions(banks);
    let total_weight: usize = positions.iter().map(|p| p.weight()).sum();
    let mut placement = Vec::with_capacity(banks);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(banks);
    let mut assigned = 0usize;
    for (i, pos) in positions.iter().enumerate() {
        let exact = units as f64 * pos.weight() as f64 / total_weight as f64;
        let floor = exact.floor() as usize;
        placement.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for &(idx, _) in remainders.iter().take(units - assigned) {
        placement[idx] += 1;
    }
    placement
}

/// A uniform placement for comparison (ablation of the thermal policy).
pub fn uniform_placement(units: usize, banks: usize) -> Vec<usize> {
    let base = units / banks;
    let extra = units % banks;
    (0..banks).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_for_32_banks_is_4x8() {
        assert_eq!(grid_dims(32), (4, 8));
    }

    #[test]
    fn position_census_for_32_banks() {
        let pos = bank_positions(32);
        let corners = pos.iter().filter(|p| **p == BankPosition::Corner).count();
        let edges = pos.iter().filter(|p| **p == BankPosition::Edge).count();
        let centers = pos.iter().filter(|p| **p == BankPosition::Center).count();
        assert_eq!((corners, edges, centers), (4, 16, 12));
    }

    #[test]
    fn placement_is_exact_and_ordered() {
        let placement = thermal_aware_placement(444, 32);
        assert_eq!(placement.iter().sum::<usize>(), 444);
        let pos = bank_positions(32);
        let at = |want: BankPosition| {
            placement
                .iter()
                .zip(&pos)
                .find(|(_, p)| **p == want)
                .map(|(u, _)| *u)
                .unwrap()
        };
        assert!(at(BankPosition::Corner) > at(BankPosition::Edge));
        assert!(at(BankPosition::Edge) > at(BankPosition::Center));
    }

    proptest! {
        #[test]
        fn placements_always_sum_to_units(units in 1usize..2000, banks_pow in 2usize..7) {
            let banks = 1 << banks_pow;
            prop_assert_eq!(
                thermal_aware_placement(units, banks).iter().sum::<usize>(),
                units
            );
            prop_assert_eq!(
                uniform_placement(units, banks).iter().sum::<usize>(),
                units
            );
        }
    }
}
