//! The fixed-function PIM pool: 32-bit floating-point multiplier/adder
//! pairs distributed across the 32 banks of the 3D stack (§IV-D).
//!
//! Each "unit" is one multiplier+adder pair operating on row-buffer-wide
//! operands through the buffering mechanism the paper adopts from PRIME
//! (its reference 5), giving it a SIMD lane group per cycle. An operation occupies
//! `ff_parallelism` units (e.g. an 11x11 convolution window occupies
//! 121 multipliers + 120 adders = 241 units); the rest stay free for the
//! operation pipeline to fill.

use crate::params::{ComputeEstimate, DeviceParams};
use crate::placement::thermal_aware_placement;
use pim_common::units::{Bytes, Joules, Seconds, Watts};
use pim_common::{PimError, Result};
use pim_mem::energy::MemoryPath;
use pim_mem::stack::StackConfig;
use pim_mem::traffic::bandwidth_efficiency;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// Default number of fixed-function units the logic die fits (the paper's
/// design-space exploration result; `pim_hw::power` re-derives it).
pub const DEFAULT_UNITS: usize = 444;

/// Configuration of the fixed-function pool.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FixedPoolConfig {
    /// Total multiplier/adder pairs on the logic die.
    pub total_units: usize,
    /// Elements each unit processes per cycle through the row-buffer
    /// operand buffering (PRIME-style).
    pub simd_width: f64,
    /// Working frequency in hertz (the stack clock).
    pub frequency_hz: f64,
    /// Dynamic power per busy unit.
    pub per_unit_power: Watts,
    /// Cost of spawning one kernel onto the pool from the host.
    pub host_dispatch: Seconds,
    /// Cost of spawning one kernel onto the pool from the programmable PIM
    /// (the recursive-kernel path — much cheaper, §III-B).
    pub pim_dispatch: Seconds,
    /// Units per bank, thermal-aware (edge/corner banks carry more).
    pub placement: Vec<usize>,
    /// Internal bandwidth available to the pool, bytes/second.
    pub bandwidth: f64,
}

impl FixedPoolConfig {
    /// The paper's configuration on a given stack: 444 units, placed
    /// edge/corner-heavy over the 32 banks, clocked at the stack frequency.
    pub fn paper_default(stack: &StackConfig) -> Self {
        FixedPoolConfig {
            total_units: DEFAULT_UNITS,
            simd_width: 44.0,
            frequency_hz: stack.frequency_hz(),
            per_unit_power: Watts::new(0.027),
            host_dispatch: Seconds::new(4e-6),
            pim_dispatch: Seconds::new(0.3e-6),
            placement: thermal_aware_placement(DEFAULT_UNITS, stack.banks()),
            bandwidth: stack.internal_bandwidth(),
        }
    }

    /// Same configuration with a different unit count (the §VI-D
    /// programmable-PIM-scaling study trades units for ARM cores).
    pub fn with_units(stack: &StackConfig, units: usize) -> Self {
        let mut cfg = FixedPoolConfig::paper_default(stack);
        cfg.total_units = units;
        cfg.placement = thermal_aware_placement(units, stack.banks());
        cfg
    }

    /// Aggregate multiply/add throughput of `units` busy units, flops/s.
    pub fn throughput(&self, units: usize) -> f64 {
        units as f64 * self.simd_width * self.frequency_hz
    }
}

/// The fixed-function pool with unit-allocation state.
///
/// # Examples
///
/// ```
/// use pim_hw::fixed::{FixedFunctionPool, FixedPoolConfig};
/// use pim_mem::stack::StackConfig;
///
/// let mut pool = FixedFunctionPool::new(FixedPoolConfig::paper_default(&StackConfig::hmc2()));
/// let grant = pool.grant(241).unwrap(); // the 11x11 conv example
/// assert_eq!(grant, 241);
/// assert_eq!(pool.free_units(), 444 - 241);
/// pool.release(grant);
/// assert_eq!(pool.free_units(), 444);
/// ```
#[derive(Debug, Clone)]
pub struct FixedFunctionPool {
    config: FixedPoolConfig,
    free_units: usize,
}

impl FixedFunctionPool {
    /// Creates an idle pool.
    pub fn new(config: FixedPoolConfig) -> Self {
        FixedFunctionPool {
            free_units: config.total_units,
            config,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &FixedPoolConfig {
        &self.config
    }

    /// Units currently unallocated.
    pub fn free_units(&self) -> usize {
        self.free_units
    }

    /// Total units in the pool.
    pub fn total_units(&self) -> usize {
        self.config.total_units
    }

    /// Fraction of the pool currently allocated.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_units as f64 / self.config.total_units as f64
    }

    /// Grants up to `want` units (the paper's dynamic usage: "an operation
    /// can dynamically change its usage of PIMs, depending on the
    /// availability of PIMs").
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ResourceExhausted`] when the pool is empty.
    pub fn grant(&mut self, want: usize) -> Result<usize> {
        if self.free_units == 0 {
            return Err(PimError::ResourceExhausted {
                resource: "fixed-function units",
                requested: want as f64,
                available: 0.0,
            });
        }
        let granted = want.min(self.free_units).max(1);
        self.free_units -= granted;
        Ok(granted)
    }

    /// Returns units to the pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when more units are released than allocated.
    pub fn release(&mut self, units: usize) {
        debug_assert!(self.free_units + units <= self.config.total_units);
        self.free_units = (self.free_units + units).min(self.config.total_units);
    }

    /// Estimates the multiply/add portion of a cost profile on `units`
    /// granted units. `from_host` selects the expensive host-spawn path or
    /// the cheap recursive-kernel path.
    pub fn estimate_ma(
        &self,
        cost: &CostProfile,
        units: usize,
        from_host: bool,
    ) -> ComputeEstimate {
        let dispatch = if from_host {
            self.config.host_dispatch
        } else {
            self.config.pim_dispatch
        };
        let compute_time = Seconds::new(cost.ma_flops() / self.config.throughput(units.max(1)));
        let memory_time = Seconds::new(
            cost.total_bytes().bytes()
                / (self.config.bandwidth * bandwidth_efficiency(cost.pattern)),
        );
        let busy = compute_time.max(memory_time);
        let time = busy + dispatch;
        let power = self.config.per_unit_power * units as f64;
        let energy = power * time + MemoryPath::StackInternal.transfer_energy(cost.total_bytes());
        ComputeEstimate {
            time,
            compute_time,
            memory_time,
            dispatch_time: dispatch,
            energy,
        }
    }

    /// Device-parameter view of the fully allocated pool (used by baseline
    /// configurations that treat the pool as one device).
    pub fn as_device_params(&self) -> DeviceParams {
        DeviceParams {
            name: "Fixed PIM",
            ma_throughput: self.config.throughput(self.config.total_units),
            // Fixed-function units cannot execute non-mul/add work at all;
            // the tiny rate here only guards against division by zero for
            // callers that ignore capability checks.
            other_throughput: 1.0,
            control_throughput: 1.0,
            bandwidth: self.config.bandwidth,
            dispatch_overhead: self.config.host_dispatch,
            dynamic_power: self.config.per_unit_power * self.config.total_units as f64,
            memory_path: MemoryPath::StackInternal,
        }
    }

    /// Dynamic energy of keeping `units` busy for `time` (used by the
    /// engine's utilization accounting).
    pub fn busy_energy(&self, units: usize, time: Seconds) -> Joules {
        (self.config.per_unit_power * units as f64) * time
    }

    /// Total bytes the pool can stream in `time` — used to sanity-check
    /// pipeline admission.
    pub fn streamable(&self, time: Seconds) -> Bytes {
        Bytes::new(self.config.bandwidth * time.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::Bytes;
    use pim_tensor::cost::OffloadClass;

    fn pool() -> FixedFunctionPool {
        FixedFunctionPool::new(FixedPoolConfig::paper_default(&StackConfig::hmc2()))
    }

    fn conv_like(ma: f64) -> CostProfile {
        CostProfile::compute(
            ma / 2.0,
            ma / 2.0,
            0.0,
            Bytes::new(ma / 50.0),
            Bytes::new(ma / 100.0),
            OffloadClass::FullyMulAdd,
            241,
        )
    }

    #[test]
    fn paper_pool_has_444_units() {
        assert_eq!(pool().total_units(), DEFAULT_UNITS);
        assert_eq!(
            pool().config().placement.iter().sum::<usize>(),
            DEFAULT_UNITS
        );
    }

    #[test]
    fn grants_are_capped_by_free_units() {
        let mut p = pool();
        assert_eq!(p.grant(1000).unwrap(), 444);
        assert!(p.grant(1).is_err());
        p.release(444);
        assert_eq!(p.free_units(), 444);
    }

    #[test]
    fn alexnet_conv_utilization_is_54_percent() {
        // Paper §III-C: 241 of 444 units = 54%.
        let mut p = pool();
        let got = p.grant(241).unwrap();
        assert_eq!(got, 241);
        assert!((p.utilization() - 0.5428).abs() < 0.01);
    }

    #[test]
    fn more_units_run_faster() {
        let p = pool();
        let cost = conv_like(1e10);
        let slow = p.estimate_ma(&cost, 100, true);
        let fast = p.estimate_ma(&cost, 400, true);
        assert!(fast.time < slow.time);
    }

    #[test]
    fn recursive_dispatch_is_cheaper_than_host_dispatch() {
        let p = pool();
        let cost = conv_like(1e6);
        let host = p.estimate_ma(&cost, 241, true);
        let rc = p.estimate_ma(&cost, 241, false);
        assert!(rc.time < host.time);
        let expected = (p.config().host_dispatch - p.config().pim_dispatch).seconds();
        assert!(((host.time - rc.time).seconds() - expected).abs() < 1e-12);
    }

    #[test]
    fn frequency_scaling_raises_throughput() {
        let stack2 = StackConfig::hmc2().with_frequency_multiplier(2.0).unwrap();
        let base = FixedPoolConfig::paper_default(&StackConfig::hmc2());
        let fast = FixedPoolConfig::paper_default(&stack2);
        assert_eq!(fast.throughput(444), 2.0 * base.throughput(444));
    }

    #[test]
    fn full_pool_peak_is_6_1_tflops() {
        let cfg = FixedPoolConfig::paper_default(&StackConfig::hmc2());
        let peak = cfg.throughput(444);
        assert!((5.9e12..6.3e12).contains(&peak), "peak = {peak:e}");
    }
}
