//! The host CPU device model (Table IV: Intel Xeon E5-2630 v3 @ 2.4 GHz,
//! 16 GB DDR4).

use crate::params::{estimate, ComputeEstimate, DeviceParams};
use pim_common::units::{Seconds, Watts};
use pim_mem::energy::MemoryPath;
use pim_mem::planar::Ddr4Config;
use pim_tensor::cost::CostProfile;
use serde::Serialize;

/// The host CPU.
///
/// # Examples
///
/// ```
/// use pim_hw::cpu::CpuDevice;
/// let cpu = CpuDevice::xeon_e5_2630_v3();
/// assert_eq!(cpu.params().name, "CPU");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CpuDevice {
    params: DeviceParams,
}

impl CpuDevice {
    /// The paper's host: 8 cores x 2.4 GHz with AVX2 FMA.
    ///
    /// Effective multiply/add throughput reflects what multi-threaded
    /// TensorFlow conv/matmul kernels sustain on such a part (~50% of the
    /// 307 Gflop/s peak); non-mul/add and control work run near scalar
    /// rates.
    pub fn xeon_e5_2630_v3() -> Self {
        CpuDevice {
            params: DeviceParams {
                name: "CPU",
                ma_throughput: 220e9,
                other_throughput: 55e9,
                control_throughput: 220e9,
                bandwidth: Ddr4Config::xeon_host().config().peak_bytes_per_sec,
                dispatch_overhead: Seconds::new(2e-6),
                dynamic_power: Watts::new(70.0),
                memory_path: MemoryPath::HostDdr4,
            },
        }
    }

    /// A host CPU with caller-supplied parameters — non-Xeon hosts
    /// profile and schedule against their own part, not the paper's.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_hw::cpu::CpuDevice;
    /// let mut params = CpuDevice::xeon_e5_2630_v3().params().clone();
    /// params.name = "EPYC";
    /// params.ma_throughput *= 2.0;
    /// let epyc = CpuDevice::custom(params);
    /// assert_eq!(epyc.params().name, "EPYC");
    /// ```
    pub fn custom(params: DeviceParams) -> Self {
        CpuDevice { params }
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Estimates one operation executed entirely on the CPU.
    pub fn estimate_op(&self, cost: &CostProfile) -> ComputeEstimate {
        estimate(&self.params, cost, 1.0)
    }
}

impl Default for CpuDevice {
    fn default() -> Self {
        CpuDevice::xeon_e5_2630_v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::Bytes;
    use pim_tensor::cost::OffloadClass;

    #[test]
    fn memory_intensive_ops_are_bandwidth_bound() {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        // BiasAddGrad-like op: 1 add per 8.8 bytes.
        let cost = CostProfile::compute(
            0.0,
            1e8,
            0.0,
            Bytes::new(8.8e8),
            Bytes::new(1e4),
            OffloadClass::FullyMulAdd,
            64,
        );
        let est = cpu.estimate_op(&cost);
        assert!(est.memory_time > est.compute_time);
    }

    #[test]
    fn compute_intensive_ops_are_flop_bound() {
        let cpu = CpuDevice::xeon_e5_2630_v3();
        // Conv-like op: high arithmetic intensity.
        let cost = CostProfile::compute(
            1e10,
            1e10,
            0.0,
            Bytes::new(1e8),
            Bytes::new(1e8),
            OffloadClass::FullyMulAdd,
            64,
        );
        let est = cpu.estimate_op(&cost);
        assert!(est.compute_time > est.memory_time);
        // 20 Gflop at 220 Gflop/s = 91 ms plus control.
        assert!(est.time.seconds() > 0.08 && est.time.seconds() < 0.3);
    }
}
