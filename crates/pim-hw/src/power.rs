//! McPAT-lite area/power model and the logic-die design-space exploration.
//!
//! The paper sizes its PIM complement with McPAT + Synopsys DC/PrimeTime +
//! HotSpot (§IV-D, §V-B): "the total number of allowed fixed-function PIMs
//! is limited by the area of the logic die. With our baseline 3D DRAM
//! configuration, we can distribute 444 fixed-function PIMs across the 32
//! banks." This module reproduces that outcome analytically at the paper's
//! 10 nm logic node.

use pim_common::units::Watts;
use pim_common::{PimError, Result};
use serde::Serialize;

/// Area budget of the logic die available to PIM logic, and the unit areas
/// of the two PIM kinds at 10 nm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LogicDieBudget {
    /// Area available for compute after the vault controllers, SerDes, and
    /// interconnect, in square millimeters.
    pub compute_area_mm2: f64,
    /// Area of one fixed-function multiplier+adder pair with its operand
    /// buffers.
    pub ff_unit_mm2: f64,
    /// Area of one ARM Cortex-A9-class core with its L1 caches.
    pub arm_core_mm2: f64,
    /// Power ceiling of the logic die, limited by the stack's thermal
    /// envelope.
    pub power_ceiling: Watts,
}

impl LogicDieBudget {
    /// The paper's baseline: calibrated so four ARM cores plus 444
    /// fixed-function units exactly fill the budget.
    pub fn paper_baseline() -> Self {
        LogicDieBudget {
            compute_area_mm2: 5.712,
            ff_unit_mm2: 0.012,
            arm_core_mm2: 0.096,
            power_ceiling: Watts::new(20.0),
        }
    }

    /// Maximum fixed-function units that fit alongside `arm_cores` ARM
    /// cores — the §VI-D programmable-PIM-scaling trade-off ("using more
    /// Progr PIMs loses more Fixed PIMs, given the constant area").
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ResourceExhausted`] when the cores alone exceed
    /// the budget.
    pub fn max_ff_units(&self, arm_cores: usize) -> Result<usize> {
        let core_area = arm_cores as f64 * self.arm_core_mm2;
        if core_area > self.compute_area_mm2 {
            return Err(PimError::ResourceExhausted {
                resource: "logic-die area",
                requested: core_area,
                available: self.compute_area_mm2,
            });
        }
        Ok(((self.compute_area_mm2 - core_area) / self.ff_unit_mm2 + 1e-9).floor() as usize)
    }

    /// Total compute power of a configuration (per-unit powers from the
    /// device models).
    pub fn config_power(&self, arm_cores: usize, ff_units: usize) -> Watts {
        Watts::new(arm_cores as f64 * 0.6 + ff_units as f64 * 0.027)
    }

    /// True when a configuration respects both the area and power ceilings.
    pub fn admits(&self, arm_cores: usize, ff_units: usize) -> bool {
        let area = arm_cores as f64 * self.arm_core_mm2 + ff_units as f64 * self.ff_unit_mm2;
        area <= self.compute_area_mm2 + 1e-9
            && self.config_power(arm_cores, ff_units) <= self.power_ceiling
    }
}

impl Default for LogicDieBudget {
    fn default() -> Self {
        LogicDieBudget::paper_baseline()
    }
}

/// One point of the programmable-PIM scaling study (Fig. 12's 1P/4P/16P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScalingPoint {
    /// ARM cores provisioned.
    pub arm_cores: usize,
    /// Fixed-function units the remaining area fits.
    pub ff_units: usize,
}

/// Enumerates the Fig. 12 design points at constant die area.
///
/// # Errors
///
/// Propagates budget violations (none for the paper's points).
pub fn progr_scaling_points(budget: &LogicDieBudget) -> Result<Vec<ScalingPoint>> {
    [1usize, 4, 16]
        .into_iter()
        .map(|arm_cores| {
            Ok(ScalingPoint {
                arm_cores,
                ff_units: budget.max_ff_units(arm_cores)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_fits_exactly_444_units_with_4_cores() {
        let b = LogicDieBudget::paper_baseline();
        assert_eq!(b.max_ff_units(4).unwrap(), 444);
    }

    #[test]
    fn scaling_points_trade_cores_for_units() {
        let pts = progr_scaling_points(&LogicDieBudget::paper_baseline()).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].arm_cores, 1);
        assert_eq!(pts[2].arm_cores, 16);
        assert!(pts[0].ff_units > pts[1].ff_units);
        assert!(pts[1].ff_units > pts[2].ff_units);
        // 16P still keeps a substantial pool (Fig. 12's small perf delta).
        assert!(pts[2].ff_units > 300);
    }

    #[test]
    fn power_ceiling_is_respected_by_paper_points() {
        let b = LogicDieBudget::paper_baseline();
        for p in progr_scaling_points(&b).unwrap() {
            assert!(b.admits(p.arm_cores, p.ff_units), "{p:?}");
        }
    }

    #[test]
    fn oversized_core_count_is_rejected() {
        let b = LogicDieBudget::paper_baseline();
        assert!(b.max_ff_units(100).is_err());
    }
}
