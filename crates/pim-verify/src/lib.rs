//! Multi-pass static checker for the hetero-pim stack.
//!
//! The paper's correctness story rests on invariants the simulator itself
//! never re-checks: the runtime must preserve operation dependencies when
//! it applies RC/OP (§IV), binary generation must split kernels without
//! losing work (Fig. 4), and the scheduler must only place ops on devices
//! that can execute them (Fig. 7 status registers). This crate makes each
//! invariant an explicit analysis pass producing structured
//! [`Diagnostic`](pim_common::Diagnostic) values:
//!
//! * [`graph`] — graph well-formedness: cycles, dangling references,
//!   producer/consumer shape agreement, liveness anomalies,
//! * [`kir`] — KIR/binary soundness: region validity, `CallFixed`
//!   resolution, multiply/add conservation through extraction,
//! * [`schedule`] — schedule legality: timeline replay against dependency
//!   order, device capability, and resource exclusivity,
//! * [`report`] — report invariants: non-negative quantities, breakdowns
//!   summing to totals,
//! * [`orders`] — order invariance: seeded tie-break permutations must
//!   reproduce the stable execution report, and the stable order must
//!   reproduce itself (opt-in via `--orders N,SEED`),
//! * [`isa`] — ISA ground truth: every kernel lowered to a `pim_isa`
//!   program, validated, interpreted, and its exact tallies matched
//!   bit-for-bit against the Fig. 4 extraction (opt-in via `--isa`).
//!
//! The `pim-verify` binary runs every pass over all seven model graphs
//! under every engine configuration; `Severity::Error` findings fail the
//! run (and CI).
//!
//! # Examples
//!
//! ```
//! use pim_models::{Model, ModelKind};
//! use pim_verify::verify_graph;
//!
//! # fn main() -> pim_common::Result<()> {
//! let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
//! let diags = verify_graph("AlexNet", model.graph());
//! assert!(diags.is_clean(), "{}", diags.render_text());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod graph;
pub mod isa;
pub mod kir;
pub mod orders;
pub mod report;
pub mod schedule;

use pim_common::{Diagnostics, Result};
use pim_hw::gpu::GpuDevice;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, WorkloadSpec};
use pim_sim::baselines::simulate_neurocube;
use pim_sim::gpu::simulate_gpu;

pub use graph::verify_graph;
pub use isa::{verify_isa, verify_program, verify_program_tallies};
pub use kir::{verify_binaries, verify_kernel_source};
pub use orders::verify_orders;
pub use report::verify_report;
pub use schedule::{engine_configs, verify_faulted_schedule, verify_schedule};

/// Runs every pass over one model: graph and KIR on its training-step
/// graph, then schedule + report under each engine configuration, and
/// report alone for the analytic baselines (GPU where the paper measured
/// a utilization, Neurocube always).
///
/// # Errors
///
/// Propagates model-construction failures; analysis findings are returned
/// as diagnostics, never as errors.
pub fn verify_model(kind: ModelKind, batch: usize, steps: usize) -> Result<Diagnostics> {
    let model = Model::build_with_batch(kind, batch)?;
    let name = kind.name();
    let mut diags = Diagnostics::new();
    diags.extend(verify_graph(name, model.graph()));
    diags.extend(verify_binaries(name, model.graph()));
    for cfg in engine_configs() {
        diags.extend(verify_schedule(name, model.graph(), &cfg, steps));
        let engine = Engine::new(cfg);
        match engine.run(&[WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }]) {
            Ok(rep) => diags.extend(verify_report(&rep)),
            Err(err) => diags.error(
                report::PASS,
                format!("{name}@{}", engine.config().name),
                format!("simulation failed: {err}"),
            ),
        }
    }
    if kind.gpu_utilization().is_some() {
        match simulate_gpu(&model, &GpuDevice::gtx_1080_ti(), steps) {
            Ok(rep) => diags.extend(verify_report(&rep)),
            Err(err) => diags.error(
                report::PASS,
                format!("{name}@GPU"),
                format!("simulation failed: {err}"),
            ),
        }
    }
    match simulate_neurocube(&model, steps) {
        Ok(rep) => diags.extend(verify_report(&rep)),
        Err(err) => diags.error(
            report::PASS,
            format!("{name}@Neurocube"),
            format!("simulation failed: {err}"),
        ),
    }
    Ok(diags)
}

/// Runs the fault-aware schedule pass over one model: every engine
/// configuration simulated under a fault plan seeded from `(seed, rate)`,
/// each recorded timeline replayed through the fault-aware legality
/// checker.
///
/// # Errors
///
/// Propagates model-construction failures; analysis findings are returned
/// as diagnostics, never as errors.
pub fn verify_model_faults(
    kind: ModelKind,
    batch: usize,
    steps: usize,
    seed: u64,
    rate: f64,
) -> Result<Diagnostics> {
    let model = Model::build_with_batch(kind, batch)?;
    let name = kind.name();
    let mut diags = Diagnostics::new();
    for cfg in engine_configs() {
        diags.extend(verify_faulted_schedule(
            name,
            model.graph(),
            &cfg,
            steps,
            seed,
            rate,
        ));
    }
    Ok(diags)
}

/// Runs the order-invariance pass over one model: every engine
/// configuration fuzzed with `orders` seeded tie-break permutations
/// derived from `seed`, each compared against the stable order.
///
/// # Errors
///
/// Propagates model-construction failures; analysis findings are returned
/// as diagnostics, never as errors.
pub fn verify_model_orders(
    kind: ModelKind,
    batch: usize,
    steps: usize,
    orders: usize,
    seed: u64,
) -> Result<Diagnostics> {
    let model = Model::build_with_batch(kind, batch)?;
    let name = kind.name();
    let mut diags = Diagnostics::new();
    for cfg in engine_configs() {
        diags.extend(verify_orders(
            name,
            model.graph(),
            &cfg,
            steps,
            orders,
            seed,
        ));
    }
    Ok(diags)
}

/// Runs the ISA ground-truth pass over one model: every kernel lowered,
/// validated, interpreted, and its exact tallies matched against the
/// Fig. 4 extraction.
///
/// # Errors
///
/// Propagates model-construction failures; analysis findings are returned
/// as diagnostics, never as errors.
pub fn verify_model_isa(kind: ModelKind, batch: usize) -> Result<Diagnostics> {
    let model = Model::build_with_batch(kind, batch)?;
    Ok(verify_isa(kind.name(), model.graph()))
}

/// [`verify_model`] over all seven evaluated workloads at their paper
/// batch sizes.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn verify_all_models(steps: usize) -> Result<Diagnostics> {
    let mut diags = Diagnostics::new();
    for kind in ModelKind::ALL {
        diags.extend(verify_model(kind, kind.paper_batch_size(), steps)?);
    }
    Ok(diags)
}
