//! Pass 1 — graph well-formedness.
//!
//! Checks a training-step [`Graph`] for structural soundness: identifier
//! consistency, dangling references, cycles, producer/consumer shape
//! agreement for the op families whose shape law is exact, and liveness
//! anomalies (a step-local tensor consumed before anything produces it, or
//! produced and never used).

use pim_common::ids::TensorId;
use pim_common::{Diagnostics, Severity};
use pim_graph::cost::op_cost;
use pim_graph::liveness;
use pim_graph::node::{OpKind, OpNode, TensorRole};
use pim_graph::Graph;

/// The pass name stamped on every diagnostic this module emits.
pub const PASS: &str = "graph";

fn op_subject(model: &str, op: &OpNode) -> String {
    format!("{model}/op{} ({})", op.id.index(), op.kind.tf_name())
}

/// Runs the graph pass. `model` labels the diagnostics' subjects.
pub fn verify_graph(model: &str, graph: &Graph) -> Diagnostics {
    let mut diags = Diagnostics::new();

    // -- identifier self-consistency -----------------------------------
    for (i, t) in graph.tensors().iter().enumerate() {
        if t.id.index() != i {
            diags.error(
                PASS,
                format!("{model}/tensor{i}"),
                format!("tensor stored at index {i} carries id {}", t.id.index()),
            );
        }
    }
    for (i, op) in graph.ops().iter().enumerate() {
        if op.id.index() != i {
            diags.error(
                PASS,
                format!("{model}/op{i}"),
                format!("op stored at index {i} carries id {}", op.id.index()),
            );
        }
    }

    // -- dangling references and duplicate producers -------------------
    let tensor_count = graph.tensors().len();
    let mut producer_of: Vec<Option<usize>> = vec![None; tensor_count];
    let mut consumed: Vec<bool> = vec![false; tensor_count];
    let mut dangling = false;
    for op in graph.ops() {
        for &tid in op.inputs.iter().chain(&op.outputs) {
            if tid.index() >= tensor_count {
                diags.error(
                    PASS,
                    op_subject(model, op),
                    format!("references tensor {} out of {tensor_count}", tid.index()),
                );
                dangling = true;
            }
        }
        for &tid in &op.inputs {
            if let Some(slot) = consumed.get_mut(tid.index()) {
                *slot = true;
            }
        }
        for &tid in &op.outputs {
            if let Some(slot) = producer_of.get_mut(tid.index()) {
                if let Some(first) = slot {
                    diags.error(
                        PASS,
                        op_subject(model, op),
                        format!(
                            "tensor {} already produced by op{first}; tensors are \
                             single-assignment",
                            tid.index()
                        ),
                    );
                } else {
                    *slot = Some(op.id.index());
                }
            }
        }
    }
    if dangling {
        return diags; // shape and liveness sweeps would index out of bounds
    }

    // -- cycles --------------------------------------------------------
    if let Err(err) = graph.topo_order() {
        diags.error(PASS, model.to_string(), err.to_string());
        return diags; // liveness needs a topological order
    }

    // -- shape agreement and cost-model acceptance ---------------------
    for op in graph.ops() {
        check_shapes(model, graph, op, &mut diags);
        if let Err(err) = op_cost(graph, op) {
            diags.error(
                PASS,
                op_subject(model, op),
                format!("cost model rejects the node: {err}"),
            );
        }
    }

    // -- liveness anomalies --------------------------------------------
    for t in graph.tensors() {
        let step_local = matches!(
            t.role,
            TensorRole::Activation | TensorRole::Scalar | TensorRole::Indices
        );
        let produced = producer_of[t.id.index()].is_some();
        if step_local && consumed[t.id.index()] && !produced {
            diags.error(
                PASS,
                format!("{model}/{}", t.name),
                format!(
                    "step-local {:?} tensor is consumed but never produced (use \
                     before definition)",
                    t.role
                ),
            );
        }
        if t.role == TensorRole::Activation && produced && !consumed[t.id.index()] {
            diags.warning(
                PASS,
                format!("{model}/{}", t.name),
                "activation is produced but never consumed (dead value)",
            );
        }
    }
    match liveness::analyze(graph) {
        Ok(report) => {
            if report.peak_activation_bytes > report.total_activation_bytes {
                diags.error(
                    PASS,
                    model.to_string(),
                    format!(
                        "liveness peak {} exceeds the no-reuse total {}",
                        report.peak_activation_bytes, report.total_activation_bytes
                    ),
                );
            }
        }
        Err(err) => diags.error(
            PASS,
            model.to_string(),
            format!("liveness analysis failed: {err}"),
        ),
    }

    diags
}

fn numel(graph: &Graph, tid: TensorId) -> usize {
    graph.tensors()[tid.index()].shape.numel()
}

/// Element-count (and where exact, dimension) agreement for the op
/// families whose shape law is unambiguous. Conv/pool geometry is checked
/// by the cost model above; re-deriving it here would duplicate the law.
fn check_shapes(model: &str, graph: &Graph, op: &OpNode, diags: &mut Diagnostics) {
    let mut same_numel = |ids: &[TensorId], what: &str| {
        let mut it = ids.iter();
        let Some(&first) = it.next() else { return };
        let n0 = numel(graph, first);
        for &tid in it {
            let n = numel(graph, tid);
            if n != n0 {
                diags.push(
                    Severity::Error,
                    PASS,
                    op_subject(model, op),
                    format!(
                        "{what} element counts disagree: tensor {} has {n0}, tensor {} \
                         has {n}",
                        first.index(),
                        tid.index()
                    ),
                );
                return;
            }
        }
    };
    match op.kind {
        OpKind::Activation(_) | OpKind::Reshape => {
            if let (&[input], &[output]) = (&op.inputs[..], &op.outputs[..]) {
                same_numel(&[input, output], "input/output");
            }
        }
        OpKind::ActivationGrad(_) => {
            let mut ids = op.inputs.clone();
            ids.extend(&op.outputs);
            same_numel(&ids, "gradient/input/output");
        }
        OpKind::Binary(_) => {
            let mut ids = op.inputs.clone();
            ids.extend(&op.outputs);
            same_numel(&ids, "operand/result");
        }
        OpKind::Dropout => {
            let mut ids = op.inputs.clone();
            ids.extend(&op.outputs);
            same_numel(&ids, "input/mask/output");
        }
        OpKind::Concat => {
            if let &[output] = &op.outputs[..] {
                let parts: usize = op.inputs.iter().map(|&t| numel(graph, t)).sum();
                let out = numel(graph, output);
                if parts != out {
                    diags.error(
                        PASS,
                        op_subject(model, op),
                        format!("concatenates {parts} elements into an output of {out}"),
                    );
                }
            }
        }
        OpKind::Slice { start, len } => {
            if let (&[input], &[output]) = (&op.inputs[..], &op.outputs[..]) {
                let n = numel(graph, input);
                if start + len > n {
                    diags.error(
                        PASS,
                        op_subject(model, op),
                        format!(
                            "slice [{start}, {}) exceeds the input's {n} elements",
                            start + len
                        ),
                    );
                }
                if numel(graph, output) != len {
                    diags.error(
                        PASS,
                        op_subject(model, op),
                        format!(
                            "slice of {len} elements lands in an output of {}",
                            numel(graph, output)
                        ),
                    );
                }
            }
        }
        OpKind::MatMul(t) => {
            if let (&[a, b], &[out]) = (&op.inputs[..], &op.outputs[..]) {
                let (sa, sb, so) = (
                    graph.tensors()[a.index()].shape.dims(),
                    graph.tensors()[b.index()].shape.dims(),
                    graph.tensors()[out.index()].shape.dims(),
                );
                if let ([ar, ac], [br, bc], [or_, oc]) = (sa, sb, so) {
                    let (m, k1) = if t.a { (*ac, *ar) } else { (*ar, *ac) };
                    let (k2, n) = if t.b { (*bc, *br) } else { (*br, *bc) };
                    if k1 != k2 || *or_ != m || *oc != n {
                        diags.error(
                            PASS,
                            op_subject(model, op),
                            format!(
                                "matmul shapes disagree: [{m}x{k1}] x [{k2}x{n}] -> \
                                 [{or_}x{oc}]"
                            ),
                        );
                    }
                }
            }
        }
        OpKind::SoftmaxXent => {
            if let (&[logits, _labels], &[_loss, grad]) = (&op.inputs[..], &op.outputs[..]) {
                same_numel(&[logits, grad], "logits/gradient");
            }
        }
        OpKind::ApplyAdam | OpKind::ApplySgd => {
            if let &[param, grad] = &op.inputs[..] {
                same_numel(&[param, grad], "parameter/gradient");
            }
        }
        // Conv/pool/norm/embedding families: geometry-dependent; the cost
        // model's shape derivation is the authoritative check.
        _ => {}
    }
}
