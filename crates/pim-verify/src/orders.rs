//! Pass 5 — order invariance.
//!
//! Replays a graph under every engine configuration through the
//! differential fuzz driver of [`pim_runtime::fuzz`]: each seeded
//! tie-break permutation must reproduce the stable execution report
//! byte-for-byte, replay legally through the schedule checker, and
//! cross-check its counter registry; the stable order itself is run
//! twice as the tripwire for unordered-container leaks into a pinned
//! schedule order. Divergences name the first divergent timeline entry
//! and the same-femtosecond tie group it belongs to.

use pim_common::Diagnostics;
use pim_graph::Graph;
use pim_runtime::engine::{Engine, EngineConfig, WorkloadSpec};
use pim_runtime::fuzz::fuzz_orders;

/// The pass name stamped on every diagnostic this module emits (matches
/// [`pim_runtime::fuzz::PASS`] — the differential driver lives there).
pub const PASS: &str = pim_runtime::fuzz::PASS;

/// Fuzzes `orders` seeded tie-break permutations of `steps` steps of
/// `graph` under `cfg` against the stable order. Engine failures become
/// error diagnostics rather than propagating.
pub fn verify_orders(
    model: &str,
    graph: &Graph,
    cfg: &EngineConfig,
    steps: usize,
    orders: usize,
    base_seed: u64,
) -> Diagnostics {
    let engine = Engine::new(cfg.clone());
    let workloads = [WorkloadSpec {
        graph,
        steps,
        cpu_progr_only: false,
    }];
    let subject = format!("{model}@{}", cfg.name);
    match fuzz_orders(&engine, &workloads, orders, base_seed, &subject) {
        Ok(outcome) => outcome.diags,
        Err(err) => {
            let mut diags = Diagnostics::new();
            diags.error(PASS, subject, format!("order fuzz failed: {err}"));
            diags
        }
    }
}
