//! Pass 6 — ISA ground truth (DESIGN.md §4.12).
//!
//! Pass 2 checks that binary generation *conserves* multiply/add work;
//! this pass checks that the programmable PIM would actually *execute*
//! it. Every op's kernel is lowered to a `pim_isa` program twice — the
//! whole kernel (binary #1's shape) and the programmable binary #4 with
//! its `call_fixed` sites — then validated and interpreted. The
//! interpreter's exact `u64` tallies must reproduce the Fig. 4
//! extraction bit-for-bit: executed mul/adds equal the kernel's MulAdd
//! regions, offloaded mul/adds equal [`BinarySet::extracted_flops`], and
//! `ld`/`st` traffic equals the cost profile's byte counts. No tolerance:
//! either the instruction stream performs the extracted work or the
//! ground-truth claim is false.

use pim_common::Diagnostics;
use pim_graph::cost::graph_costs;
use pim_graph::Graph;
use pim_hw::arm::ProgrammablePim;
use pim_isa::interp::{ExecSummary, Machine};
use pim_isa::isa::Program;
use pim_isa::lower::{lower_binary, lower_kernel};
use pim_isa::validate::validate;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::{KernelSource, Region};
use pim_runtime::engine::{EngineConfig, SystemPreset};

/// The pass name stamped on every diagnostic this module emits.
pub const PASS: &str = "isa";

/// The machine model the pass interprets on: the Hetero preset's
/// programmable PIM (full core complement, nominal stack).
pub fn default_machine() -> Machine {
    let cfg = EngineConfig::preset(SystemPreset::Hetero);
    Machine::for_arm(&ProgrammablePim::cortex_a9(&cfg.stack, cfg.arm_cores))
}

/// Runs the ISA pass over every op of a graph.
pub fn verify_isa(model: &str, graph: &Graph) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let costs = match graph_costs(graph) {
        Ok(costs) => costs,
        Err(err) => {
            diags.error(
                PASS,
                model.to_string(),
                format!("cost characterization failed: {err}"),
            );
            return diags;
        }
    };
    let machine = default_machine();
    for (op, cost) in graph.ops().iter().zip(&costs) {
        if !cost.is_well_formed() {
            continue; // pass 2 owns this finding
        }
        let kernel = KernelSource::from_cost(op.kind.tf_name(), cost);
        let subject = format!("{model}/op{} ({})", op.id.index(), kernel.name);
        let expected_bytes = cost.bytes_read.bytes().max(0.0).round() as u64
            + cost.bytes_written.bytes().max(0.0).round() as u64;

        // Binary #1: the whole kernel in-line. Executed tallies must equal
        // the kernel's own MulAdd regions.
        let (muls, adds) = kernel_mul_adds(&kernel);
        match lower_kernel(&kernel, cost) {
            Ok(program) => {
                if let Some(summary) = interpret(&subject, "whole", &program, &machine, &mut diags)
                {
                    check_tally(
                        &subject,
                        "whole executed mul",
                        summary.executed_muls as f64,
                        muls,
                        &mut diags,
                    );
                    check_tally(
                        &subject,
                        "whole executed add",
                        summary.executed_adds as f64,
                        adds,
                        &mut diags,
                    );
                    check_tally(
                        &subject,
                        "whole traffic bytes",
                        summary.traffic_bytes() as f64,
                        expected_bytes as f64,
                        &mut diags,
                    );
                }
            }
            Err(err) => {
                diags.error(
                    PASS,
                    &subject,
                    format!("whole-kernel lowering failed: {err}"),
                );
            }
        }

        // Binary #4: call sites against binary #3. Offloaded tallies must
        // equal the Fig. 4 extraction, with nothing left in-line.
        let Ok(set) = BinarySet::generate(kernel.clone()) else {
            continue; // pass 2 owns this finding
        };
        match lower_binary(&set, cost) {
            Ok(program) => {
                if let Some(summary) = interpret(&subject, "progr", &program, &machine, &mut diags)
                {
                    check_tally(
                        &subject,
                        "offloaded mul/add vs Fig. 4 extraction",
                        (summary.offloaded_muls + summary.offloaded_adds) as f64,
                        set.extracted_flops(),
                        &mut diags,
                    );
                    check_tally(
                        &subject,
                        "progr residual mul/add",
                        (summary.executed_muls + summary.executed_adds) as f64,
                        set.progr.mul_add_flops(),
                        &mut diags,
                    );
                }
            }
            Err(err) => {
                diags.error(
                    PASS,
                    &subject,
                    format!("progr-binary lowering failed: {err}"),
                );
            }
        }
    }
    diags
}

/// Total muls/adds across a kernel's MulAdd regions.
fn kernel_mul_adds(kernel: &KernelSource) -> (f64, f64) {
    kernel.body.iter().fold((0.0, 0.0), |(m, a), r| match r {
        Region::MulAdd { muls, adds, .. } => (m + muls, a + adds),
        _ => (m, a),
    })
}

/// Validates and interprets one program, converting failures into
/// diagnostics. Returns the summary when execution succeeded.
fn interpret(
    subject: &str,
    which: &str,
    program: &Program,
    machine: &Machine,
    diags: &mut Diagnostics,
) -> Option<ExecSummary> {
    let before = diags.error_count();
    extend_program_findings(subject, which, program, diags);
    if diags.error_count() > before {
        return None;
    }
    match machine.run(program) {
        Ok(summary) => Some(summary),
        Err(err) => {
            diags.error(
                PASS,
                subject,
                format!("{which} program failed to execute: {err}"),
            );
            None
        }
    }
}

/// Exact-equality tally check (bit-for-bit, no tolerance).
fn check_tally(subject: &str, what: &str, got: f64, expected: f64, diags: &mut Diagnostics) {
    if got != expected {
        diags.error(
            PASS,
            subject,
            format!("{what}: interpreted {got}, expected exactly {expected}"),
        );
    }
}

/// Runs the structural validator on one program, emitting each violation
/// as a diagnostic that names the offending instruction. Usable standalone
/// on hand-corrupted programs (the negative tests).
pub fn verify_program(subject: &str, program: &Program) -> Diagnostics {
    let mut diags = Diagnostics::new();
    extend_program_findings(subject, "isa", program, &mut diags);
    diags
}

/// Checks one program's interpreted mul/add tallies (executed + offloaded)
/// against expected totals, exactly. Usable standalone on hand-built
/// programs (the negative tests).
pub fn verify_program_tallies(
    subject: &str,
    program: &Program,
    expected_muls: u64,
    expected_adds: u64,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let machine = default_machine();
    if let Some(summary) = interpret(subject, "isa", program, &machine, &mut diags) {
        check_tally(
            subject,
            "mul tally",
            summary.total_muls() as f64,
            expected_muls as f64,
            &mut diags,
        );
        check_tally(
            subject,
            "add tally",
            summary.total_adds() as f64,
            expected_adds as f64,
            &mut diags,
        );
    }
    diags
}

fn extend_program_findings(subject: &str, which: &str, program: &Program, diags: &mut Diagnostics) {
    if let Err(violations) = validate(program) {
        for v in violations {
            diags.error(PASS, subject, format!("{which} program invalid: {v}"));
        }
    }
}
