//! Pass 4 — report invariants.
//!
//! Every [`ExecutionReport`] must carry non-negative, finite quantities
//! whose component breakdown sums to the total within tolerance — the
//! contract downstream figures and tables rely on.

use pim_common::Diagnostics;
use pim_runtime::stats::ExecutionReport;

/// The pass name stamped on every diagnostic this module emits.
pub const PASS: &str = "report";

/// Relative tolerance for the parts-sum-to-makespan check (matches
/// [`ExecutionReport::is_well_formed`]).
const SUM_REL: f64 = 1e-6;

/// Checks one execution report.
pub fn verify_report(report: &ExecutionReport) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let subject = report.system.clone();

    let quantities = [
        ("makespan", report.makespan.seconds()),
        ("op time", report.op_time.seconds()),
        ("data-movement time", report.data_movement_time.seconds()),
        ("sync time", report.sync_time.seconds()),
        ("dynamic energy", report.dynamic_energy.joules()),
    ];
    let mut invalid = false;
    for (what, v) in quantities {
        if !v.is_finite() || v < 0.0 {
            diags.error(PASS, subject.clone(), format!("{what} is invalid: {v}"));
            invalid = true;
        }
    }
    if invalid {
        return diags; // derived checks would just repeat the failure
    }

    let parts =
        report.op_time.seconds() + report.data_movement_time.seconds() + report.sync_time.seconds();
    let makespan = report.makespan.seconds();
    if (parts - makespan).abs() > SUM_REL * makespan.max(1e-12) {
        diags.error(
            PASS,
            subject.clone(),
            format!("breakdown parts sum to {parts:.6e} s, not the makespan {makespan:.6e} s"),
        );
    }
    if !(0.0..=1.0 + 1e-9).contains(&report.ff_utilization) {
        diags.error(
            PASS,
            subject.clone(),
            format!(
                "fixed-function utilization {} outside [0, 1]",
                report.ff_utilization
            ),
        );
    }
    for (device, busy) in &report.device_busy {
        let b = busy.seconds();
        if !b.is_finite() || b < 0.0 {
            diags.error(
                PASS,
                subject.clone(),
                format!("device {device} busy time is invalid: {b}"),
            );
        } else if b > makespan * (1.0 + SUM_REL) {
            diags.error(
                PASS,
                subject.clone(),
                format!("device {device} busy {b:.6e} s exceeds the makespan {makespan:.6e} s"),
            );
        }
    }
    for (what, v) in [
        ("per-step time", report.per_step_time().seconds()),
        ("average power", report.average_power().watts()),
        ("EDP per step", report.edp_per_step()),
    ] {
        if !v.is_finite() || v < 0.0 {
            diags.error(
                PASS,
                subject.clone(),
                format!("derived {what} is invalid: {v}"),
            );
        }
    }
    if report.steps == 0 {
        diags.warning(PASS, subject, "report covers zero training steps");
    }
    diags
}
