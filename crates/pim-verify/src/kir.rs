//! Pass 2 — KIR/binary soundness.
//!
//! Lowers every op of a graph into its [`KernelSource`], runs the Fig. 4
//! binary-generation pass, and checks the results: regions are
//! well-formed, every [`Region::CallFixed`] resolves, extraction conserves
//! the multiply/add work, and the whole-kernel fixed binary exists exactly
//! when the kernel is pure multiply/add.

use pim_common::Diagnostics;
use pim_graph::cost::graph_costs;
use pim_graph::Graph;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::{KernelSource, Region};

/// The pass name stamped on every diagnostic this module emits.
pub const PASS: &str = "kir";

/// Relative tolerance for the mul/add conservation check.
const CONSERVATION_REL: f64 = 1e-9;

/// Runs the KIR pass over every op of a graph.
pub fn verify_binaries(model: &str, graph: &Graph) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let costs = match graph_costs(graph) {
        Ok(costs) => costs,
        Err(err) => {
            diags.error(
                PASS,
                model.to_string(),
                format!("cost characterization failed: {err}"),
            );
            return diags;
        }
    };
    for (op, cost) in graph.ops().iter().zip(&costs) {
        if !cost.is_well_formed() {
            diags.error(
                PASS,
                format!("{model}/op{} ({})", op.id.index(), op.kind.tf_name()),
                "cost profile is not well-formed (negative or non-finite counts)",
            );
            continue;
        }
        let kernel = KernelSource::from_cost(op.kind.tf_name(), cost);
        let subject = format!("{model}/op{} ({})", op.id.index(), kernel.name);
        diags.extend(verify_kernel_source(&subject, &kernel));
    }
    diags
}

/// Checks one kernel and its generated binaries. Usable standalone on a
/// hand-built [`KernelSource`] (the negative tests corrupt kernels
/// directly).
pub fn verify_kernel_source(subject: &str, kernel: &KernelSource) -> Diagnostics {
    let mut diags = Diagnostics::new();
    verify_regions(subject, "source", &kernel.body, None, &mut diags);

    let set = match BinarySet::generate(kernel.clone()) {
        Ok(set) => set,
        Err(err) => {
            diags.error(PASS, subject, format!("binary generation failed: {err}"));
            return diags;
        }
    };

    // The four-binary contract of Fig. 4.
    if set.fixed_whole.is_some() != kernel.is_pure_mul_add() {
        diags.error(
            PASS,
            subject,
            format!(
                "whole-kernel fixed binary {} but the kernel {} pure multiply/add",
                if set.fixed_whole.is_some() {
                    "exists"
                } else {
                    "is missing"
                },
                if kernel.is_pure_mul_add() {
                    "is"
                } else {
                    "is not"
                }
            ),
        );
    }
    if set.progr.has_mul_add_region() {
        diags.error(
            PASS,
            subject,
            "programmable binary retains a MulAdd region the extraction should have moved",
        );
    }
    verify_regions(
        subject,
        "programmable",
        &set.progr.body,
        Some(set.fixed_kernels.len()),
        &mut diags,
    );
    for (i, k) in set.fixed_kernels.iter().enumerate() {
        if !(k.muls.is_finite() && k.adds.is_finite()) || k.muls < 0.0 || k.adds < 0.0 {
            diags.error(
                PASS,
                subject,
                format!(
                    "extracted kernel {i} has invalid op counts ({}, {})",
                    k.muls, k.adds
                ),
            );
        }
        if k.parallelism < 1 {
            diags.error(
                PASS,
                subject,
                format!("extracted kernel {i} has parallelism 0; at least one unit is required"),
            );
        }
    }

    // Conservation: extraction moves the multiply/add work, it never
    // creates or destroys any.
    let original = kernel.mul_add_flops();
    let extracted = set.extracted_flops();
    let residual = set.progr.mul_add_flops();
    let drift = (extracted + residual - original).abs();
    if drift > CONSERVATION_REL * original.max(1.0) {
        diags.error(
            PASS,
            subject,
            format!(
                "extraction does not conserve multiply/add work: {original} in, \
                 {extracted} extracted + {residual} residual"
            ),
        );
    }
    diags
}

/// Region-level well-formedness shared by source and generated bodies.
/// `kernel_count` bounds `CallFixed` indices when a companion kernel list
/// exists; source kernels carrying call sites are flagged instead.
fn verify_regions(
    subject: &str,
    which: &str,
    body: &[Region],
    kernel_count: Option<usize>,
    diags: &mut Diagnostics,
) {
    for (i, region) in body.iter().enumerate() {
        match *region {
            Region::MulAdd {
                muls,
                adds,
                parallelism,
            } => {
                if !(muls.is_finite() && adds.is_finite()) || muls < 0.0 || adds < 0.0 {
                    diags.error(
                        PASS,
                        subject,
                        format!("{which} region {i}: invalid MulAdd counts ({muls}, {adds})"),
                    );
                }
                if parallelism < 1 {
                    diags.error(
                        PASS,
                        subject,
                        format!("{which} region {i}: MulAdd parallelism must be >= 1"),
                    );
                }
            }
            Region::OtherArithmetic { flops } => {
                if !flops.is_finite() || flops < 0.0 {
                    diags.error(
                        PASS,
                        subject,
                        format!("{which} region {i}: invalid arithmetic count {flops}"),
                    );
                }
            }
            Region::Control { ops } => {
                if !ops.is_finite() || ops < 0.0 {
                    diags.error(
                        PASS,
                        subject,
                        format!("{which} region {i}: invalid control count {ops}"),
                    );
                }
            }
            Region::CallFixed { kernel_index } => match kernel_count {
                Some(count) if kernel_index >= count => {
                    diags.error(
                        PASS,
                        subject,
                        format!(
                            "{which} region {i}: calls fixed kernel {kernel_index}, but \
                             only {count} exist"
                        ),
                    );
                }
                Some(_) => {}
                None => {
                    diags.warning(
                        PASS,
                        subject,
                        format!(
                            "{which} region {i}: call site in a kernel that has not been \
                             through binary generation"
                        ),
                    );
                }
            },
        }
    }
}
