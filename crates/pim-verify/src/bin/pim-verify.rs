//! `pim-verify` — run the static checker over model graphs and schedules.
//!
//! ```text
//! pim-verify [--all-models | --model NAME] [--steps N] [--faults SEED,RATE]
//!            [--format text|json]
//! ```
//!
//! Runs the graph, KIR, schedule, and report passes and prints every
//! finding. With `--faults`, additionally replays each configuration
//! under a seeded fault plan through the fault-aware schedule checker.
//! Exits 1 when any finding has error severity (or the arguments are
//! invalid), 0 otherwise — warnings do not fail the run.

use std::process::ExitCode;

use pim_models::ModelKind;
use pim_verify::{verify_model, verify_model_faults};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    models: Vec<ModelKind>,
    steps: usize,
    faults: Option<(u64, f64)>,
    format: Format,
}

const USAGE: &str = "usage: pim-verify [--all-models | --model NAME] [--steps N] \
[--faults SEED,RATE] [--format text|json]

Runs the graph, KIR, schedule, and report verification passes.

options:
  --all-models       check every evaluated workload (default)
  --model NAME       check one workload (vgg19, alexnet, dcgan, resnet50,
                     inception_v3, lstm, word2vec)
  --steps N          training steps per schedule replay (default 2)
  --faults SEED,RATE additionally replay each configuration under a fault
                     plan seeded from SEED at fault rate RATE (0 <= RATE <= 1)
                     through the fault-aware schedule checker
  --format FMT       output format: text (default) or json
  --help             print this message";

fn parse_faults(value: &str) -> Result<(u64, f64), String> {
    let (seed, rate) = value
        .split_once(',')
        .ok_or_else(|| format!("--faults expects SEED,RATE, got `{value}`"))?;
    let seed: u64 = seed
        .trim()
        .parse()
        .map_err(|_| format!("invalid fault seed `{seed}`"))?;
    let rate: f64 = rate
        .trim()
        .parse()
        .map_err(|_| format!("invalid fault rate `{rate}`"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault rate must be in [0, 1], got {rate}"));
    }
    Ok((seed, rate))
}

fn parse_model(name: &str) -> Option<ModelKind> {
    let wanted = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelKind::ALL
        .into_iter()
        .find(|kind| kind.name().to_ascii_lowercase().replace(['-', '_'], "") == wanted)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut models: Option<Vec<ModelKind>> = None;
    let mut steps = 2usize;
    let mut faults: Option<(u64, f64)> = None;
    let mut format = Format::Text;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-models" => models = Some(ModelKind::ALL.to_vec()),
            "--model" => {
                let name = it.next().ok_or("--model requires a name")?;
                let kind = parse_model(name).ok_or_else(|| format!("unknown model `{name}`"))?;
                models.get_or_insert_with(Vec::new).push(kind);
            }
            "--steps" => {
                let n = it.next().ok_or("--steps requires a count")?;
                steps = n.parse().map_err(|_| format!("invalid step count `{n}`"))?;
                if steps == 0 {
                    return Err("--steps must be at least 1".into());
                }
            }
            "--faults" => {
                let value = it.next().ok_or("--faults requires SEED,RATE")?;
                faults = Some(parse_faults(value)?);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires text or json".into()),
            },
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        models: models.unwrap_or_else(|| ModelKind::ALL.to_vec()),
        steps,
        faults,
        format,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("pim-verify: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut diags = pim_common::Diagnostics::new();
    for kind in &args.models {
        let verified =
            verify_model(*kind, kind.paper_batch_size(), args.steps).and_then(|mut model_diags| {
                if let Some((seed, rate)) = args.faults {
                    model_diags.extend(verify_model_faults(
                        *kind,
                        kind.paper_batch_size(),
                        args.steps,
                        seed,
                        rate,
                    )?);
                }
                Ok(model_diags)
            });
        match verified {
            Ok(model_diags) => {
                if args.format == Format::Text {
                    eprintln!(
                        "pim-verify: {} — {} finding(s), {} error(s)",
                        kind.name(),
                        model_diags.items().len(),
                        model_diags.error_count()
                    );
                }
                diags.extend(model_diags);
            }
            Err(err) => {
                diags.error(
                    "graph",
                    kind.name(),
                    format!("model construction failed: {err}"),
                );
            }
        }
    }

    match args.format {
        Format::Text => print!("{}", diags.render_text()),
        Format::Json => println!("{}", diags.to_json()),
    }
    if diags.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
