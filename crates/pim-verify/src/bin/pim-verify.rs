//! `pim-verify` — run the static checker over model graphs and schedules.
//!
//! ```text
//! pim-verify [--all-models | --model NAME] [--steps N] [--faults SEED,RATE]
//!            [--orders N,SEED] [--isa] [--format text|json]
//! ```
//!
//! Runs the graph, KIR, schedule, and report passes and prints every
//! finding. With `--faults`, additionally replays each configuration
//! under a seeded fault plan through the fault-aware schedule checker.
//! With `--orders`, additionally runs the pass-5 order-invariance fuzz:
//! N seeded tie-break permutations per configuration, each compared
//! against the stable order. With `--isa`, additionally lowers every
//! kernel to a `pim_isa` program, validates and interprets it, and
//! matches the exact tallies against the Fig. 4 extraction (pass 6).
//! Exits 2 when the arguments are invalid
//! (the [`pim_common::cli`] contract shared with `repro`), 1 when any
//! finding has error severity, 0 otherwise — warnings do not fail the
//! run.
#![forbid(unsafe_code)]

use std::process::ExitCode;

use pim_common::cli::{parse_pair, parse_value, require_in_range, usage_error};
use pim_models::ModelKind;
use pim_verify::{verify_model, verify_model_faults, verify_model_isa, verify_model_orders};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    models: Vec<ModelKind>,
    steps: usize,
    faults: Option<(u64, f64)>,
    orders: Option<(usize, u64)>,
    isa: bool,
    format: Format,
}

const USAGE: &str = "usage: pim-verify [--all-models | --model NAME] [--steps N] \
[--faults SEED,RATE] [--orders N,SEED] [--isa] [--format text|json]

Runs the graph, KIR, schedule, report, and (opt-in) order-invariance and
ISA ground-truth verification passes.

options:
  --all-models       check every evaluated workload (default)
  --model NAME       check one workload (vgg19, alexnet, dcgan, resnet50,
                     inception_v3, lstm, word2vec)
  --steps N          training steps per schedule replay (default 2)
  --faults SEED,RATE additionally replay each configuration under a fault
                     plan seeded from SEED at fault rate RATE (0 <= RATE <= 1)
                     through the fault-aware schedule checker
  --orders N,SEED    additionally fuzz N seeded tie-break permutations per
                     configuration against the stable order (pass 5)
  --isa              additionally lower every kernel to an ISA program,
                     validate + interpret it, and match the exact mul/add
                     tallies against the Fig. 4 extraction (pass 6)
  --format FMT       output format: text (default) or json
  --help             print this message";

fn parse_faults(value: &str) -> Result<(u64, f64), String> {
    let (seed, rate) = parse_pair::<u64, f64>("--faults", "SEED,RATE", value)?;
    require_in_range("--faults rate", rate, 0.0, 1.0)?;
    Ok((seed, rate))
}

fn parse_orders(value: &str) -> Result<(usize, u64), String> {
    let (orders, seed) = parse_pair::<usize, u64>("--orders", "N,SEED", value)?;
    if orders == 0 {
        return Err("--orders needs at least one permutation".into());
    }
    Ok((orders, seed))
}

fn parse_model(name: &str) -> Option<ModelKind> {
    let wanted = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelKind::ALL
        .into_iter()
        .find(|kind| kind.name().to_ascii_lowercase().replace(['-', '_'], "") == wanted)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut models: Option<Vec<ModelKind>> = None;
    let mut steps = 2usize;
    let mut faults: Option<(u64, f64)> = None;
    let mut orders: Option<(usize, u64)> = None;
    let mut isa = false;
    let mut format = Format::Text;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-models" => models = Some(ModelKind::ALL.to_vec()),
            "--model" => {
                let name = it.next().ok_or("--model requires a name")?;
                let kind = parse_model(name).ok_or_else(|| format!("unknown model `{name}`"))?;
                models.get_or_insert_with(Vec::new).push(kind);
            }
            "--steps" => {
                let n = it.next().ok_or("--steps requires a count")?;
                steps = parse_value("--steps", n)?;
                if steps == 0 {
                    return Err("--steps must be at least 1".into());
                }
            }
            "--faults" => {
                let value = it.next().ok_or("--faults requires SEED,RATE")?;
                faults = Some(parse_faults(value)?);
            }
            "--orders" => {
                let value = it.next().ok_or("--orders requires N,SEED")?;
                orders = Some(parse_orders(value)?);
            }
            "--isa" => isa = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires text or json".into()),
            },
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        models: models.unwrap_or_else(|| ModelKind::ALL.to_vec()),
        steps,
        faults,
        orders,
        isa,
        format,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            usage_error("pim-verify", &msg, USAGE);
        }
    };

    let mut diags = pim_common::Diagnostics::new();
    for kind in &args.models {
        let verified =
            verify_model(*kind, kind.paper_batch_size(), args.steps).and_then(|mut model_diags| {
                if let Some((seed, rate)) = args.faults {
                    model_diags.extend(verify_model_faults(
                        *kind,
                        kind.paper_batch_size(),
                        args.steps,
                        seed,
                        rate,
                    )?);
                }
                if let Some((orders, seed)) = args.orders {
                    model_diags.extend(verify_model_orders(
                        *kind,
                        kind.paper_batch_size(),
                        args.steps,
                        orders,
                        seed,
                    )?);
                }
                if args.isa {
                    model_diags.extend(verify_model_isa(*kind, kind.paper_batch_size())?);
                }
                Ok(model_diags)
            });
        match verified {
            Ok(model_diags) => {
                if args.format == Format::Text {
                    eprintln!(
                        "pim-verify: {} — {} finding(s), {} error(s)",
                        kind.name(),
                        model_diags.items().len(),
                        model_diags.error_count()
                    );
                }
                diags.extend(model_diags);
            }
            Err(err) => {
                diags.error(
                    "graph",
                    kind.name(),
                    format!("model construction failed: {err}"),
                );
            }
        }
    }

    match args.format {
        Format::Text => print!("{}", diags.render_text()),
        Format::Json => println!("{}", diags.to_json()),
    }
    if diags.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
