//! `pim-verify` — run the static checker over model graphs and schedules.
//!
//! ```text
//! pim-verify [--all-models | --model NAME] [--steps N] [--format text|json]
//! ```
//!
//! Runs the graph, KIR, schedule, and report passes and prints every
//! finding. Exits 1 when any finding has error severity (or the arguments
//! are invalid), 0 otherwise — warnings do not fail the run.

use std::process::ExitCode;

use pim_models::ModelKind;
use pim_verify::verify_model;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    models: Vec<ModelKind>,
    steps: usize,
    format: Format,
}

const USAGE: &str =
    "usage: pim-verify [--all-models | --model NAME] [--steps N] [--format text|json]

Runs the graph, KIR, schedule, and report verification passes.

options:
  --all-models       check every evaluated workload (default)
  --model NAME       check one workload (vgg19, alexnet, dcgan, resnet50,
                     inception_v3, lstm, word2vec)
  --steps N          training steps per schedule replay (default 2)
  --format FMT       output format: text (default) or json
  --help             print this message";

fn parse_model(name: &str) -> Option<ModelKind> {
    let wanted = name.to_ascii_lowercase().replace(['-', '_'], "");
    ModelKind::ALL
        .into_iter()
        .find(|kind| kind.name().to_ascii_lowercase().replace(['-', '_'], "") == wanted)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut models: Option<Vec<ModelKind>> = None;
    let mut steps = 2usize;
    let mut format = Format::Text;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-models" => models = Some(ModelKind::ALL.to_vec()),
            "--model" => {
                let name = it.next().ok_or("--model requires a name")?;
                let kind = parse_model(name).ok_or_else(|| format!("unknown model `{name}`"))?;
                models.get_or_insert_with(Vec::new).push(kind);
            }
            "--steps" => {
                let n = it.next().ok_or("--steps requires a count")?;
                steps = n.parse().map_err(|_| format!("invalid step count `{n}`"))?;
                if steps == 0 {
                    return Err("--steps must be at least 1".into());
                }
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires text or json".into()),
            },
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        models: models.unwrap_or_else(|| ModelKind::ALL.to_vec()),
        steps,
        format,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("pim-verify: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut diags = pim_common::Diagnostics::new();
    for kind in &args.models {
        match verify_model(*kind, kind.paper_batch_size(), args.steps) {
            Ok(model_diags) => {
                if args.format == Format::Text {
                    eprintln!(
                        "pim-verify: {} — {} finding(s), {} error(s)",
                        kind.name(),
                        model_diags.items().len(),
                        model_diags.error_count()
                    );
                }
                diags.extend(model_diags);
            }
            Err(err) => {
                diags.error(
                    "graph",
                    kind.name(),
                    format!("model construction failed: {err}"),
                );
            }
        }
    }

    match args.format {
        Format::Text => print!("{}", diags.render_text()),
        Format::Json => println!("{}", diags.to_json()),
    }
    if diags.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
