//! Pass 3 — schedule legality.
//!
//! Runs the engine over a graph under a configuration, captures the
//! per-instance timeline, and replays it through the
//! [`pim_runtime::verify`] checker: dependency order (including through RC
//! recursion and the OP pipeline window), `Device::accepts` capability,
//! and the Fig. 7 register-mirror exclusivity rules.

use pim_common::Diagnostics;
use pim_graph::Graph;
use pim_runtime::engine::{Engine, EngineConfig, WorkloadSpec};

/// The pass name stamped on every diagnostic this module emits (matches
/// [`pim_runtime::verify::PASS`] — the replay checker lives there).
pub const PASS: &str = pim_runtime::verify::PASS;

/// The engine configurations the checker replays: the paper's four
/// engine-backed systems plus the two Fig. 13 ablations.
pub fn engine_configs() -> Vec<EngineConfig> {
    vec![
        EngineConfig::cpu_only(),
        EngineConfig::progr_only(),
        EngineConfig::fixed_host(),
        EngineConfig::hetero_bare(),
        EngineConfig::hetero_rc(),
        EngineConfig::hetero(),
    ]
}

/// Simulates `steps` steps of `graph` under `cfg` and verifies the
/// recorded timeline. Engine failures become error diagnostics rather
/// than propagating.
pub fn verify_schedule(
    model: &str,
    graph: &Graph,
    cfg: &EngineConfig,
    steps: usize,
) -> Diagnostics {
    let engine = Engine::new(cfg.clone());
    let workloads = [WorkloadSpec {
        graph,
        steps,
        cpu_progr_only: false,
    }];
    let mut diags = Diagnostics::new();
    let subject = format!("{model}@{}", cfg.name);
    match engine.run_detailed(&workloads) {
        Ok((_, timeline)) => match engine.verify_timeline(&workloads, &timeline) {
            Ok(inner) => {
                for d in inner.items() {
                    diags.push(
                        d.severity,
                        PASS,
                        format!("{subject}: {}", d.subject),
                        d.message.clone(),
                    );
                }
            }
            Err(err) => diags.error(PASS, subject, format!("verification failed: {err}")),
        },
        Err(err) => diags.error(PASS, subject, format!("simulation failed: {err}")),
    }
    diags
}
