//! Pass 3 — schedule legality.
//!
//! Runs the engine over a graph under a configuration, captures the
//! per-instance timeline, and replays it through the
//! [`pim_runtime::verify`] checker: dependency order (including through RC
//! recursion and the OP pipeline window), `Device::accepts` capability,
//! and the Fig. 7 register-mirror exclusivity rules.

use pim_common::Diagnostics;
use pim_graph::Graph;
use pim_hw::faults::FaultPlan;
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};

/// The pass name stamped on every diagnostic this module emits (matches
/// [`pim_runtime::verify::PASS`] — the replay checker lives there).
pub const PASS: &str = pim_runtime::verify::PASS;

/// The engine configurations the checker replays: the paper's four
/// engine-backed systems plus the two Fig. 13 ablations.
pub fn engine_configs() -> Vec<EngineConfig> {
    vec![
        EngineConfig::preset(SystemPreset::CpuOnly),
        EngineConfig::preset(SystemPreset::ProgrOnly),
        EngineConfig::preset(SystemPreset::FixedHost),
        EngineConfig::preset(SystemPreset::HeteroBare),
        EngineConfig::preset(SystemPreset::HeteroRc),
        EngineConfig::preset(SystemPreset::Hetero),
    ]
}

/// Simulates `steps` steps of `graph` under `cfg` and verifies the
/// recorded timeline. Engine failures become error diagnostics rather
/// than propagating.
pub fn verify_schedule(
    model: &str,
    graph: &Graph,
    cfg: &EngineConfig,
    steps: usize,
) -> Diagnostics {
    let engine = Engine::new(cfg.clone());
    let workloads = [WorkloadSpec {
        graph,
        steps,
        cpu_progr_only: false,
    }];
    let mut diags = Diagnostics::new();
    let subject = format!("{model}@{}", cfg.name);
    match engine.run_detailed(&workloads) {
        Ok((_, timeline)) => match engine.verify_timeline(&workloads, &timeline) {
            Ok(inner) => {
                for d in inner.items() {
                    diags.push(
                        d.severity,
                        PASS,
                        format!("{subject}: {}", d.subject),
                        d.message.clone(),
                    );
                }
            }
            Err(err) => diags.error(PASS, subject, format!("verification failed: {err}")),
        },
        Err(err) => diags.error(PASS, subject, format!("simulation failed: {err}")),
    }
    diags
}

/// Simulates `steps` steps of `graph` under `cfg` with a fault plan
/// seeded from `(seed, rate)` over the configuration's fault-free
/// horizon, then replays the recorded timeline through the fault-aware
/// legality checker ([`pim_runtime::verify::check_timeline_faulted`]):
/// attempt chains, backoff spacing, plan consistency, and capacity under
/// quarantine, on top of every fault-free rule.
pub fn verify_faulted_schedule(
    model: &str,
    graph: &Graph,
    cfg: &EngineConfig,
    steps: usize,
    seed: u64,
    rate: f64,
) -> Diagnostics {
    let engine = Engine::new(cfg.clone());
    let workloads = [WorkloadSpec {
        graph,
        steps,
        cpu_progr_only: false,
    }];
    let mut diags = Diagnostics::new();
    let subject = format!("{model}@{} (faults seed {seed} rate {rate})", cfg.name);
    let horizon = match engine.run(&workloads) {
        Ok(report) => report.makespan,
        Err(err) => {
            diags.error(
                PASS,
                subject,
                format!("fault-free simulation failed: {err}"),
            );
            return diags;
        }
    };
    let plan = FaultPlan::seeded(seed, rate, horizon, cfg.ff_units);
    let opts = RunOptions {
        timeline: true,
        ..RunOptions::default()
    };
    match engine.run_with_faults(&workloads, &opts, &plan) {
        Ok(out) => {
            let timeline = out.timeline.unwrap_or_default();
            match engine.verify_timeline_faulted(&workloads, &timeline, &plan) {
                Ok(inner) => {
                    for d in inner.items() {
                        diags.push(
                            d.severity,
                            PASS,
                            format!("{subject}: {}", d.subject),
                            d.message.clone(),
                        );
                    }
                }
                Err(err) => diags.error(PASS, subject, format!("verification failed: {err}")),
            }
        }
        Err(err) => diags.error(PASS, subject, format!("faulted simulation failed: {err}")),
    }
    diags
}
