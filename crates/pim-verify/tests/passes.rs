//! Positive and negative coverage for the checker: every shipped model
//! passes clean, and each seeded corruption is caught by the pass that
//! owns the violated invariant.

use pim_common::units::Seconds;
use pim_common::Severity;
use pim_graph::node::{OpKind, TensorRole};
use pim_graph::Graph;
use pim_models::{Model, ModelKind};
use pim_opencl::kir::{KernelSource, Region};
use pim_runtime::engine::{Engine, EngineConfig, ResourceClass, SystemPreset, WorkloadSpec};
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::Shape;
use pim_verify::{
    engine_configs, verify_binaries, verify_faulted_schedule, verify_graph, verify_kernel_source,
    verify_schedule,
};

/// Small batches keep the debug-profile engine replays fast; the graph
/// structure (and thus every invariant checked) is batch-independent.
const TEST_BATCH: usize = 2;

fn assert_errors_in_pass(diags: &pim_common::Diagnostics, pass: &str, needle: &str) {
    let hits: Vec<_> = diags
        .items()
        .iter()
        .filter(|d| d.severity == Severity::Error && d.pass == pass)
        .collect();
    assert!(
        hits.iter().any(|d| d.message.contains(needle)),
        "expected an error in pass `{pass}` mentioning `{needle}`; got:\n{}",
        diags.render_text()
    );
}

// ---------------------------------------------------------------------
// Positive: all seven models are clean under every pass.
// ---------------------------------------------------------------------

#[test]
fn all_models_pass_graph_and_kir_clean() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        let diags = verify_graph(kind.name(), model.graph());
        assert!(diags.is_clean(), "{}: {}", kind.name(), diags.render_text());
        let diags = verify_binaries(kind.name(), model.graph());
        // KIR pass should not even warn on shipped models.
        assert!(diags.is_empty(), "{}: {}", kind.name(), diags.render_text());
    }
}

#[test]
fn all_models_schedule_clean_under_every_config() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        for cfg in engine_configs() {
            let diags = verify_schedule(kind.name(), model.graph(), &cfg, 2);
            assert!(
                diags.is_empty(),
                "{}@{}: {}",
                kind.name(),
                cfg.name,
                diags.render_text()
            );
        }
    }
}

#[test]
fn faulted_schedules_verify_clean_under_every_config() {
    // A CNN, an RNN, and a GAN exercise all three placement shapes; two
    // seeds vary which recovery paths (retry, re-dispatch, kill) fire.
    for kind in [ModelKind::AlexNet, ModelKind::Lstm, ModelKind::Dcgan] {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        for cfg in engine_configs() {
            for seed in [1, 9] {
                let diags =
                    verify_faulted_schedule(kind.name(), model.graph(), &cfg, 2, seed, 0.15);
                assert!(
                    diags.is_empty(),
                    "{}@{} seed {seed}: {}",
                    kind.name(),
                    cfg.name,
                    diags.render_text()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Negative: seeded corruptions, each caught by the owning pass.
// ---------------------------------------------------------------------

/// Two activations feeding each other: a -> relu -> b, b -> relu -> a.
#[test]
fn graph_pass_catches_cycle() {
    let mut g = Graph::new();
    let a = g.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "a");
    let b = g.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "b");
    g.add_op(OpKind::Activation(Activation::Relu), vec![a], vec![b])
        .unwrap();
    g.add_op(OpKind::Activation(Activation::Relu), vec![b], vec![a])
        .unwrap();
    let diags = verify_graph("cyclic", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "cycle");
}

/// An element-wise Add whose operands have different element counts.
#[test]
fn graph_pass_catches_shape_mismatch() {
    let mut g = Graph::new();
    let a = g.add_tensor(Shape::new(vec![16]), TensorRole::Input, "a");
    let b = g.add_tensor(Shape::new(vec![4]), TensorRole::Input, "b");
    let out = g.add_tensor(Shape::new(vec![16]), TensorRole::Activation, "out");
    g.add_op(OpKind::Binary(BinaryOp::Add), vec![a, b], vec![out])
        .unwrap();
    let diags = verify_graph("mismatched", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "element counts disagree");
}

/// A source kernel whose body calls fixed-function kernel 7 — no
/// extraction produced it, so binary generation must refuse and the KIR
/// pass must surface that refusal.
#[test]
fn kir_pass_catches_out_of_bounds_call() {
    let kernel = KernelSource {
        name: "corrupt".into(),
        body: vec![
            Region::Control { ops: 10.0 },
            Region::CallFixed { kernel_index: 7 },
        ],
    };
    let diags = verify_kernel_source("corrupt-kernel", &kernel);
    assert_errors_in_pass(&diags, pim_verify::kir::PASS, "binary generation failed");
    assert!(
        !diags.is_clean(),
        "out-of-bounds call site must be an error"
    );
}

/// A recorded timeline perturbed so two independent CPU ops overlap; the
/// schedule pass must flag the double-booking.
#[test]
fn schedule_pass_catches_double_booked_cpu() {
    // Two independent activations over the same input: any legal CPU-only
    // schedule serializes them.
    let mut g = Graph::new();
    let input = g.add_tensor(Shape::new(vec![1024]), TensorRole::Input, "input");
    let out_a = g.add_tensor(Shape::new(vec![1024]), TensorRole::Activation, "out_a");
    let out_b = g.add_tensor(Shape::new(vec![1024]), TensorRole::Activation, "out_b");
    g.add_op(
        OpKind::Activation(Activation::Relu),
        vec![input],
        vec![out_a],
    )
    .unwrap();
    g.add_op(
        OpKind::Activation(Activation::Tanh),
        vec![input],
        vec![out_b],
    )
    .unwrap();

    let engine = Engine::new(EngineConfig::preset(SystemPreset::CpuOnly));
    let workloads = [WorkloadSpec {
        graph: &g,
        steps: 1,
        cpu_progr_only: false,
    }];
    let (_, mut timeline) = engine.run_detailed(&workloads).unwrap();
    let clean = engine.verify_timeline(&workloads, &timeline).unwrap();
    assert!(clean.is_empty(), "{}", clean.render_text());

    // Drag the second CPU interval back on top of the first.
    let cpu: Vec<usize> = timeline
        .iter()
        .enumerate()
        .filter(|(_, e)| e.resource == ResourceClass::Cpu)
        .map(|(i, _)| i)
        .collect();
    assert!(cpu.len() >= 2, "expected two CPU placements");
    let span = timeline[cpu[0]].end.seconds() - timeline[cpu[0]].start.seconds();
    timeline[cpu[1]].start = timeline[cpu[0]].start;
    timeline[cpu[1]].end = Seconds::new(timeline[cpu[0]].start.seconds() + span);

    let diags = engine.verify_timeline(&workloads, &timeline).unwrap();
    let mut renamed = pim_common::Diagnostics::new();
    renamed.extend(diags);
    assert_errors_in_pass(&renamed, pim_runtime::verify::PASS, "double-books the CPU");
}

/// Liveness corruption: an activation consumed that nothing produces.
#[test]
fn graph_pass_catches_use_before_definition() {
    let mut g = Graph::new();
    let phantom = g.add_tensor(Shape::new(vec![32]), TensorRole::Activation, "phantom");
    let out = g.add_tensor(Shape::new(vec![32]), TensorRole::Activation, "out");
    g.add_op(
        OpKind::Activation(Activation::Relu),
        vec![phantom],
        vec![out],
    )
    .unwrap();
    let diags = verify_graph("phantom", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "use before definition");
}
