//! Positive and negative coverage for the checker: every shipped model
//! passes clean, and each seeded corruption is caught by the pass that
//! owns the violated invariant.

use pim_common::units::Seconds;
use pim_common::Severity;
use pim_graph::node::{OpKind, TensorRole};
use pim_graph::Graph;
use pim_models::{Model, ModelKind};
use pim_opencl::kir::{KernelSource, Region};
use pim_runtime::engine::{Engine, EngineConfig, ResourceClass, SystemPreset, WorkloadSpec};
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::Shape;
use pim_verify::{
    engine_configs, verify_binaries, verify_faulted_schedule, verify_graph, verify_kernel_source,
    verify_schedule,
};

/// Small batches keep the debug-profile engine replays fast; the graph
/// structure (and thus every invariant checked) is batch-independent.
const TEST_BATCH: usize = 2;

fn assert_errors_in_pass(diags: &pim_common::Diagnostics, pass: &str, needle: &str) {
    let hits: Vec<_> = diags
        .items()
        .iter()
        .filter(|d| d.severity == Severity::Error && d.pass == pass)
        .collect();
    assert!(
        hits.iter().any(|d| d.message.contains(needle)),
        "expected an error in pass `{pass}` mentioning `{needle}`; got:\n{}",
        diags.render_text()
    );
}

// ---------------------------------------------------------------------
// Positive: all seven models are clean under every pass.
// ---------------------------------------------------------------------

#[test]
fn all_models_pass_graph_and_kir_clean() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        let diags = verify_graph(kind.name(), model.graph());
        assert!(diags.is_clean(), "{}: {}", kind.name(), diags.render_text());
        let diags = verify_binaries(kind.name(), model.graph());
        // KIR pass should not even warn on shipped models.
        assert!(diags.is_empty(), "{}: {}", kind.name(), diags.render_text());
    }
}

#[test]
fn all_models_schedule_clean_under_every_config() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        for cfg in engine_configs() {
            let diags = verify_schedule(kind.name(), model.graph(), &cfg, 2);
            assert!(
                diags.is_empty(),
                "{}@{}: {}",
                kind.name(),
                cfg.name,
                diags.render_text()
            );
        }
    }
}

#[test]
fn faulted_schedules_verify_clean_under_every_config() {
    // A CNN, an RNN, and a GAN exercise all three placement shapes; two
    // seeds vary which recovery paths (retry, re-dispatch, kill) fire.
    for kind in [ModelKind::AlexNet, ModelKind::Lstm, ModelKind::Dcgan] {
        let model = Model::build_with_batch(kind, TEST_BATCH).unwrap();
        for cfg in engine_configs() {
            for seed in [1, 9] {
                let diags =
                    verify_faulted_schedule(kind.name(), model.graph(), &cfg, 2, seed, 0.15);
                assert!(
                    diags.is_empty(),
                    "{}@{} seed {seed}: {}",
                    kind.name(),
                    cfg.name,
                    diags.render_text()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Negative: seeded corruptions, each caught by the owning pass.
// ---------------------------------------------------------------------

/// Two activations feeding each other: a -> relu -> b, b -> relu -> a.
#[test]
fn graph_pass_catches_cycle() {
    let mut g = Graph::new();
    let a = g.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "a");
    let b = g.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "b");
    g.add_op(OpKind::Activation(Activation::Relu), vec![a], vec![b])
        .unwrap();
    g.add_op(OpKind::Activation(Activation::Relu), vec![b], vec![a])
        .unwrap();
    let diags = verify_graph("cyclic", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "cycle");
}

/// An element-wise Add whose operands have different element counts.
#[test]
fn graph_pass_catches_shape_mismatch() {
    let mut g = Graph::new();
    let a = g.add_tensor(Shape::new(vec![16]), TensorRole::Input, "a");
    let b = g.add_tensor(Shape::new(vec![4]), TensorRole::Input, "b");
    let out = g.add_tensor(Shape::new(vec![16]), TensorRole::Activation, "out");
    g.add_op(OpKind::Binary(BinaryOp::Add), vec![a, b], vec![out])
        .unwrap();
    let diags = verify_graph("mismatched", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "element counts disagree");
}

/// A source kernel whose body calls fixed-function kernel 7 — no
/// extraction produced it, so binary generation must refuse and the KIR
/// pass must surface that refusal.
#[test]
fn kir_pass_catches_out_of_bounds_call() {
    let kernel = KernelSource {
        name: "corrupt".into(),
        body: vec![
            Region::Control { ops: 10.0 },
            Region::CallFixed { kernel_index: 7 },
        ],
    };
    let diags = verify_kernel_source("corrupt-kernel", &kernel);
    assert_errors_in_pass(&diags, pim_verify::kir::PASS, "binary generation failed");
    assert!(
        !diags.is_clean(),
        "out-of-bounds call site must be an error"
    );
}

/// A recorded timeline perturbed so two independent CPU ops overlap; the
/// schedule pass must flag the double-booking.
#[test]
fn schedule_pass_catches_double_booked_cpu() {
    // Two independent activations over the same input: any legal CPU-only
    // schedule serializes them.
    let mut g = Graph::new();
    let input = g.add_tensor(Shape::new(vec![1024]), TensorRole::Input, "input");
    let out_a = g.add_tensor(Shape::new(vec![1024]), TensorRole::Activation, "out_a");
    let out_b = g.add_tensor(Shape::new(vec![1024]), TensorRole::Activation, "out_b");
    g.add_op(
        OpKind::Activation(Activation::Relu),
        vec![input],
        vec![out_a],
    )
    .unwrap();
    g.add_op(
        OpKind::Activation(Activation::Tanh),
        vec![input],
        vec![out_b],
    )
    .unwrap();

    let engine = Engine::new(EngineConfig::preset(SystemPreset::CpuOnly));
    let workloads = [WorkloadSpec {
        graph: &g,
        steps: 1,
        cpu_progr_only: false,
    }];
    let (_, mut timeline) = engine.run_detailed(&workloads).unwrap();
    let clean = engine.verify_timeline(&workloads, &timeline).unwrap();
    assert!(clean.is_empty(), "{}", clean.render_text());

    // Drag the second CPU interval back on top of the first.
    let cpu: Vec<usize> = timeline
        .iter()
        .enumerate()
        .filter(|(_, e)| e.resource == ResourceClass::Cpu)
        .map(|(i, _)| i)
        .collect();
    assert!(cpu.len() >= 2, "expected two CPU placements");
    let span = timeline[cpu[0]].end.seconds() - timeline[cpu[0]].start.seconds();
    timeline[cpu[1]].start = timeline[cpu[0]].start;
    timeline[cpu[1]].end = Seconds::new(timeline[cpu[0]].start.seconds() + span);

    let diags = engine.verify_timeline(&workloads, &timeline).unwrap();
    let mut renamed = pim_common::Diagnostics::new();
    renamed.extend(diags);
    assert_errors_in_pass(&renamed, pim_runtime::verify::PASS, "double-books the CPU");
}

/// Liveness corruption: an activation consumed that nothing produces.
#[test]
fn graph_pass_catches_use_before_definition() {
    let mut g = Graph::new();
    let phantom = g.add_tensor(Shape::new(vec![32]), TensorRole::Activation, "phantom");
    let out = g.add_tensor(Shape::new(vec![32]), TensorRole::Activation, "out");
    g.add_op(
        OpKind::Activation(Activation::Relu),
        vec![phantom],
        vec![out],
    )
    .unwrap();
    let diags = verify_graph("phantom", &g);
    assert_errors_in_pass(&diags, pim_verify::graph::PASS, "use before definition");
}

// ---------------------------------------------------------------------
// Negative: hand-corrupted ISA programs are caught by pass 6 with a
// diagnostic naming the offending instruction.
// ---------------------------------------------------------------------

/// A minimal valid program: load, counted Fma loop, one fixed-kernel
/// call drained by a sync, store, halt. Each corruption below breaks
/// exactly one invariant of it.
fn valid_isa_program() -> pim_isa::Program {
    use pim_isa::{Ctr, FixedEntry, Inst, Program, Reg};
    Program {
        name: "corruptible".to_string(),
        regions: vec![4096, 1024],
        fixed_kernels: vec![FixedEntry {
            muls: 100,
            adds: 100,
            calls: 1,
        }],
        code: vec![
            Inst::Ld {
                dst: Reg(0),
                region: 0,
                bytes: 4096,
            },
            Inst::SetCnt {
                ctr: Ctr(0),
                trips: 4,
            },
            Inst::Fma {
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
                elems: 250,
            },
            Inst::DecJnz {
                ctr: Ctr(0),
                target: 2,
            },
            Inst::CallFixed { kernel: 0 },
            Inst::Sync,
            Inst::St {
                src: Reg(2),
                region: 1,
                bytes: 1024,
            },
            Inst::Halt,
        ],
    }
}

#[test]
fn isa_pass_accepts_the_uncorrupted_program() {
    let p = valid_isa_program();
    assert!(pim_verify::verify_program("base", &p).is_clean());
    // 4 trips x 250 fma = 1000 executed muls/adds, plus the offloaded
    // fixed kernel's 100/100.
    assert!(pim_verify::verify_program_tallies("base", &p, 1100, 1100).is_clean());
}

#[test]
fn isa_pass_catches_out_of_range_region() {
    use pim_isa::{Inst, Reg};
    let mut p = valid_isa_program();
    p.code[0] = Inst::Ld {
        dst: Reg(0),
        region: 9,
        bytes: 4096,
    };
    let diags = pim_verify::verify_program("bad-region", &p);
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "inst 0 (ld)");
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "region r9 out of range");
}

#[test]
fn isa_pass_catches_call_to_missing_kernel() {
    use pim_isa::Inst;
    let mut p = valid_isa_program();
    p.code[4] = Inst::CallFixed { kernel: 3 };
    let diags = pim_verify::verify_program("bad-call", &p);
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "inst 4 (callfixed)");
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "calls fixed kernel k3");
}

#[test]
fn isa_pass_catches_missing_halt() {
    let mut p = valid_isa_program();
    p.code.pop();
    let diags = pim_verify::verify_program("no-halt", &p);
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "missing terminal Halt");
}

#[test]
fn isa_pass_catches_mul_add_tally_mismatch() {
    // The program is structurally valid but performs 1100/1100 mul/adds;
    // claiming 1200 multiplications must be rejected exactly.
    let p = valid_isa_program();
    let diags = pim_verify::verify_program_tallies("short-work", &p, 1200, 1100);
    assert_errors_in_pass(&diags, pim_verify::isa::PASS, "mul tally");
    assert_errors_in_pass(
        &diags,
        pim_verify::isa::PASS,
        "interpreted 1100, expected exactly 1200",
    );
}
