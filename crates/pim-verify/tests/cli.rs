//! CLI contract tests for the `pim-verify` binary: malformed arguments
//! fail with a structured message, and the fault replay flag works
//! end-to-end.

use std::process::{Command, Output};

fn pim_verify(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pim-verify"))
        .args(args)
        .output()
        .expect("pim-verify spawns")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn malformed_fault_flags_fail_with_structured_messages() {
    let cases: [(&[&str], &str); 4] = [
        (&["--faults", "1"], "expects SEED,RATE"),
        (&["--faults", "x,0.1"], "invalid fault seed"),
        (&["--faults", "1,abc"], "invalid fault rate"),
        (&["--faults", "1,5.0"], "must be in [0, 1]"),
    ];
    for (args, needle) in cases {
        let out = pim_verify(args);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn unknown_model_and_argument_fail() {
    let out = pim_verify(&["--model", "nope"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown model `nope`"));

    let out = pim_verify(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown argument `--frobnicate`"));
}

#[test]
fn faulted_replay_of_one_model_is_clean() {
    let out = pim_verify(&["--model", "alexnet", "--steps", "1", "--faults", "3,0.1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 error(s)"));
}
