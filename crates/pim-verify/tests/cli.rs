//! CLI contract tests for the `pim-verify` binary: malformed arguments
//! fail with a structured message on the shared usage-error exit code
//! (2, reserving 1 for error-severity findings), and the fault-replay
//! and order-fuzz flags work end-to-end.

use std::process::{Command, Output};

fn pim_verify(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pim-verify"))
        .args(args)
        .output()
        .expect("pim-verify spawns")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn malformed_fault_flags_fail_with_structured_messages() {
    let cases: [(&[&str], &str); 4] = [
        (&["--faults", "1"], "expects SEED,RATE"),
        (&["--faults", "x,0.1"], "expects SEED,RATE"),
        (&["--faults", "1,abc"], "expects SEED,RATE"),
        (&["--faults", "1,5.0"], "must be in [0, 1]"),
    ];
    for (args, needle) in cases {
        let out = pim_verify(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn malformed_order_flags_fail_with_structured_messages() {
    let cases: [(&[&str], &str); 3] = [
        (&["--orders", "4"], "expects N,SEED"),
        (&["--orders", "x,1"], "expects N,SEED"),
        (&["--orders", "0,1"], "at least one permutation"),
    ];
    for (args, needle) in cases {
        let out = pim_verify(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = stderr(&out);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn unknown_model_and_argument_fail() {
    let out = pim_verify(&["--model", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown model `nope`"));

    let out = pim_verify(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument `--frobnicate`"));
}

#[test]
fn faulted_replay_of_one_model_is_clean() {
    let out = pim_verify(&["--model", "alexnet", "--steps", "1", "--faults", "3,0.1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 error(s)"));
}

#[test]
fn order_fuzz_of_one_model_is_clean() {
    let out = pim_verify(&["--model", "alexnet", "--steps", "1", "--orders", "2,1"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 error(s)"));
}

#[test]
fn isa_flag_rejects_an_operand_like_any_unknown_argument() {
    // `--isa` takes no operand; a stray value is an unknown argument on
    // the shared usage-error exit code.
    let out = pim_verify(&["--isa", "whole"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown argument `whole`"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn isa_pass_on_one_model_is_clean_and_stable() {
    let args = &["--model", "alexnet", "--steps", "1", "--isa"];
    let a = pim_verify(args);
    assert_eq!(a.status.code(), Some(0), "{}", stderr(&a));
    assert!(stderr(&a).contains("0 error(s)"));
    let b = pim_verify(args);
    assert_eq!(a.stdout, b.stdout, "isa pass output must be stable");
}
