//! The persistent benchmark harness behind `repro bench`.
//!
//! Times every requested (model x [`SystemPreset`]) sweep cell in wall
//! clock and serializes the results as a `BENCH_*.json` trajectory file —
//! the regression record ROADMAP tracks across PRs. The schema is
//! deliberately small, hand-written, and validated by [`validate_bench_json`]
//! so CI can smoke-test the emitted file without external JSON crates.
//!
//! `BENCH_*.json` schema (`hetero-pim-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "hetero-pim-bench-v1",
//!   "commit": "<git short hash or \"unknown\">",
//!   "machine": {"os": "linux", "arch": "x86_64", "cores": 1},
//!   "steps": 3,
//!   "iterations": 3,
//!   "cells": [
//!     {"model": "AlexNet", "preset": "CPU", "ops": 80,
//!      "median_ms": 1.234, "min_ms": 1.101, "ops_per_sec": 194489.4}
//!   ],
//!   "repro_all": {
//!     "pre_change_ms":  {"median": 2429.0, "min": 2204.0},
//!     "post_change_ms": {"median": 900.0,  "min": 850.0},
//!     "speedup": 2.70
//!   }
//! }
//! ```
//!
//! `cells[*].ops_per_sec` is simulated op instances retired per wall-clock
//! second (`ops * steps / median`). The optional `repro_all` block records
//! a before/after measurement of the full `repro all` sweep; `speedup` is
//! `pre.median / post.median`.

use crate::configs::{simulate, SystemConfig};
use pim_common::{PimError, Result};
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{EngineConfig, SystemPreset};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema identifier written into (and required from) every bench file.
pub const BENCH_SCHEMA: &str = "hetero-pim-bench-v1";

/// Wall-clock timing of one (model x preset) sweep cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Model display name.
    pub model: &'static str,
    /// Preset display name.
    pub preset: &'static str,
    /// Op count of one training step.
    pub ops: usize,
    /// Median wall-clock per simulation, milliseconds.
    pub median_ms: f64,
    /// Fastest observed simulation, milliseconds.
    pub min_ms: f64,
    /// Simulated op instances per wall-clock second (`ops * steps /
    /// median`).
    pub ops_per_sec: f64,
}

/// Before/after timing of the full `repro all` sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReproAllTiming {
    /// Pre-change median / min, milliseconds (recorded externally, before
    /// the optimization landed).
    pub pre_median_ms: f64,
    /// Pre-change fastest run, milliseconds.
    pub pre_min_ms: f64,
    /// Post-change median, milliseconds.
    pub post_median_ms: f64,
    /// Post-change fastest run, milliseconds.
    pub post_min_ms: f64,
}

impl ReproAllTiming {
    /// Median-over-median speedup of the change.
    pub fn speedup(&self) -> f64 {
        self.pre_median_ms / self.post_median_ms
    }
}

/// One complete bench run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// Build the cells were measured at (git short hash, or "unknown").
    pub commit: String,
    /// Training steps per simulated cell.
    pub steps: usize,
    /// Timed iterations per cell (after one untimed warmup).
    pub iterations: usize,
    /// Every measured cell, in (model, preset) sweep order.
    pub cells: Vec<CellTiming>,
    /// The before/after `repro all` record, when measured.
    pub repro_all: Option<ReproAllTiming>,
}

/// The git short hash of `HEAD`, or "unknown" outside a git checkout.
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn median_of(sorted_ms: &[f64]) -> f64 {
    let n = sorted_ms.len();
    if n % 2 == 1 {
        sorted_ms[n / 2]
    } else {
        f64::midpoint(sorted_ms[n / 2 - 1], sorted_ms[n / 2])
    }
}

/// Times every (model x preset) cell: one untimed warmup (which also
/// warms the profiler's step memo, matching sweep steady state), then
/// `iterations` timed simulations, reduced to median/min.
///
/// # Errors
///
/// Propagates model-construction and simulation failures.
pub fn bench_cells(
    kinds: &[ModelKind],
    presets: &[SystemPreset],
    steps: usize,
    iterations: usize,
) -> Result<Vec<CellTiming>> {
    if iterations == 0 {
        return Err(PimError::invalid("bench_cells", "iterations must be > 0"));
    }
    let mut cells = Vec::with_capacity(kinds.len() * presets.len());
    for &kind in kinds {
        let model = Model::build(kind)?;
        let ops = model.graph().op_count();
        for &preset in presets {
            let config = SystemConfig::HeteroPim(EngineConfig::preset(preset));
            simulate(&model, &config, steps)?; // warmup
            let mut samples_ms = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                let start = Instant::now();
                simulate(&model, &config, steps)?;
                samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            let median_ms = median_of(&samples_ms);
            cells.push(CellTiming {
                model: kind.name(),
                preset: preset.name(),
                ops,
                median_ms,
                min_ms: samples_ms[0],
                ops_per_sec: (ops * steps) as f64 / (median_ms / 1e3),
            });
        }
    }
    Ok(cells)
}

/// Times `runs` cold invocations of `repro all` by spawning the current
/// executable as a subprocess (stdout discarded), returning sorted
/// millisecond samples. Cold processes measure the real user-facing sweep
/// — in-process repeats would hit warm caches and flatter the number.
///
/// # Errors
///
/// Fails when the executable cannot be located or a run exits nonzero.
pub fn time_repro_all(runs: usize) -> Result<Vec<f64>> {
    let exe = std::env::current_exe()
        .map_err(|e| PimError::invalid("time_repro_all", format!("no current exe: {e}")))?;
    let mut samples_ms = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let status = std::process::Command::new(&exe)
            .arg("all")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .map_err(|e| PimError::invalid("time_repro_all", format!("spawn failed: {e}")))?;
        if !status.success() {
            return Err(PimError::invalid(
                "time_repro_all",
                "repro all exited nonzero",
            ));
        }
        samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Ok(samples_ms)
}

/// Builds a [`ReproAllTiming`] from a pre-change record and fresh sorted
/// post-change samples (from [`time_repro_all`]).
pub fn repro_all_timing(pre_median_ms: f64, pre_min_ms: f64, post_ms: &[f64]) -> ReproAllTiming {
    ReproAllTiming {
        pre_median_ms,
        pre_min_ms,
        post_median_ms: median_of(post_ms),
        post_min_ms: post_ms.first().copied().unwrap_or(f64::NAN),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes a bench run to the `hetero-pim-bench-v1` document, with a
/// fixed key order so diffs between trajectory files stay readable.
pub fn to_json(file: &BenchFile) -> String {
    let mut out = String::new();
    writeln!(out, "{{").ok();
    writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",").ok();
    writeln!(out, "  \"commit\": \"{}\",", json_escape(&file.commit)).ok();
    writeln!(
        out,
        "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
    )
    .ok();
    writeln!(out, "  \"steps\": {},", file.steps).ok();
    writeln!(out, "  \"iterations\": {},", file.iterations).ok();
    writeln!(out, "  \"cells\": [").ok();
    for (i, c) in file.cells.iter().enumerate() {
        let comma = if i + 1 < file.cells.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"model\": \"{}\", \"preset\": \"{}\", \"ops\": {}, \
             \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"ops_per_sec\": {:.1}}}{comma}",
            json_escape(c.model),
            json_escape(c.preset),
            c.ops,
            c.median_ms,
            c.min_ms,
            c.ops_per_sec,
        )
        .ok();
    }
    write!(out, "  ]").ok();
    if let Some(r) = &file.repro_all {
        writeln!(out, ",").ok();
        writeln!(out, "  \"repro_all\": {{").ok();
        writeln!(
            out,
            "    \"pre_change_ms\": {{\"median\": {:.1}, \"min\": {:.1}}},",
            r.pre_median_ms, r.pre_min_ms
        )
        .ok();
        writeln!(
            out,
            "    \"post_change_ms\": {{\"median\": {:.1}, \"min\": {:.1}}},",
            r.post_median_ms, r.post_min_ms
        )
        .ok();
        writeln!(out, "    \"speedup\": {:.2}", r.speedup()).ok();
        write!(out, "  }}").ok();
    }
    writeln!(out).ok();
    writeln!(out, "}}").ok();
    out
}

/// Validates a `BENCH_*.json` document against the `hetero-pim-bench-v1`
/// schema: identifier, machine block, and per-cell fields with positive
/// timings.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_bench_json(text: &str) -> std::result::Result<(), String> {
    let doc = pim_common::trace::parse_json(text)?;
    if doc.field("schema").and_then(|s| s.as_str()) != Some(BENCH_SCHEMA) {
        return Err(format!("schema identifier is not \"{BENCH_SCHEMA}\""));
    }
    if doc.field("commit").and_then(|c| c.as_str()).is_none() {
        return Err("missing string `commit`".to_string());
    }
    let machine = doc.field("machine").ok_or("missing `machine` object")?;
    for key in ["os", "arch"] {
        if machine.field(key).and_then(|v| v.as_str()).is_none() {
            return Err(format!("machine.{key} missing or not a string"));
        }
    }
    if machine
        .field("cores")
        .and_then(pim_common::trace::Json::as_num)
        .is_none()
    {
        return Err("machine.cores missing or not a number".to_string());
    }
    for key in ["steps", "iterations"] {
        if doc
            .field(key)
            .and_then(pim_common::trace::Json::as_num)
            .is_none()
        {
            return Err(format!("`{key}` missing or not a number"));
        }
    }
    let cells = doc
        .field("cells")
        .and_then(|c| c.as_arr())
        .ok_or("missing `cells` array")?;
    if cells.is_empty() {
        return Err("`cells` is empty".to_string());
    }
    for (i, cell) in cells.iter().enumerate() {
        for key in ["model", "preset"] {
            if cell.field(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("cells[{i}].{key} missing or not a string"));
            }
        }
        for key in ["ops", "median_ms", "min_ms", "ops_per_sec"] {
            match cell.field(key).and_then(pim_common::trace::Json::as_num) {
                Some(v) if v > 0.0 => {}
                _ => return Err(format!("cells[{i}].{key} missing or not positive")),
            }
        }
    }
    if let Some(r) = doc.field("repro_all") {
        for block in ["pre_change_ms", "post_change_ms"] {
            let b = r
                .field(block)
                .ok_or_else(|| format!("repro_all.{block} missing"))?;
            for key in ["median", "min"] {
                match b.field(key).and_then(pim_common::trace::Json::as_num) {
                    Some(v) if v > 0.0 => {}
                    _ => return Err(format!("repro_all.{block}.{key} missing or not positive")),
                }
            }
        }
        match r.field("speedup").and_then(pim_common::trace::Json::as_num) {
            Some(v) if v > 0.0 => {}
            _ => return Err("repro_all.speedup missing or not positive".to_string()),
        }
    }
    Ok(())
}

/// Renders the `repro bench --compare <a> <b>` table: per-cell median
/// deltas between two `hetero-pim-bench-v1` documents, matched by
/// `(model, preset)`, plus the geometric-mean speedup over the matched
/// cells. Cells present in only one file are listed but excluded from the
/// geomean. `speedup` per cell is `a.median / b.median`, so values above
/// 1.0 mean `b` is faster.
///
/// # Errors
///
/// Returns a description of the first schema violation in either file.
pub fn compare_bench_json(a_text: &str, b_text: &str) -> std::result::Result<String, String> {
    validate_bench_json(a_text).map_err(|e| format!("first file: {e}"))?;
    validate_bench_json(b_text).map_err(|e| format!("second file: {e}"))?;

    fn cells_of(text: &str) -> Vec<(String, String, f64)> {
        let doc = pim_common::trace::parse_json(text).expect("validated above");
        doc.field("cells")
            .and_then(|c| c.as_arr())
            .expect("validated above")
            .iter()
            .map(|cell| {
                (
                    cell.field("model")
                        .and_then(|v| v.as_str())
                        .unwrap()
                        .to_string(),
                    cell.field("preset")
                        .and_then(|v| v.as_str())
                        .unwrap()
                        .to_string(),
                    cell.field("median_ms")
                        .and_then(pim_common::trace::Json::as_num)
                        .unwrap(),
                )
            })
            .collect()
    }
    fn commit_of(text: &str) -> String {
        pim_common::trace::parse_json(text)
            .ok()
            .and_then(|d| d.field("commit").and_then(|c| c.as_str()).map(String::from))
            .unwrap_or_else(|| "unknown".to_string())
    }

    let a_cells = cells_of(a_text);
    let b_cells = cells_of(b_text);
    let mut out = String::new();
    writeln!(
        out,
        "bench compare: a = commit {}, b = commit {}",
        commit_of(a_text),
        commit_of(b_text)
    )
    .ok();
    writeln!(
        out,
        "{:<14} {:<14} {:>12} {:>12} {:>9} {:>9}",
        "model", "preset", "a median/ms", "b median/ms", "delta", "speedup"
    )
    .ok();

    let mut log_sum = 0.0f64;
    let mut matched = 0usize;
    for (model, preset, a_ms) in &a_cells {
        let Some((_, _, b_ms)) = b_cells.iter().find(|(m, p, _)| m == model && p == preset) else {
            writeln!(
                out,
                "{model:<14} {preset:<14} {a_ms:>12.3} {:>12} {:>9} {:>9}",
                "-", "-", "-"
            )
            .ok();
            continue;
        };
        let delta_pct = (b_ms - a_ms) / a_ms * 100.0;
        let speedup = a_ms / b_ms;
        log_sum += speedup.ln();
        matched += 1;
        writeln!(
            out,
            "{model:<14} {preset:<14} {a_ms:>12.3} {b_ms:>12.3} {delta_pct:>+8.1}% {speedup:>8.2}x"
        )
        .ok();
    }
    for (model, preset, b_ms) in &b_cells {
        if !a_cells.iter().any(|(m, p, _)| m == model && p == preset) {
            writeln!(
                out,
                "{model:<14} {preset:<14} {:>12} {b_ms:>12.3} {:>9} {:>9}",
                "-", "-", "-"
            )
            .ok();
        }
    }
    if matched == 0 {
        return Err("no (model, preset) cells in common".to_string());
    }
    let geomean = (log_sum / matched as f64).exp();
    writeln!(
        out,
        "geomean speedup over {matched} matched cells: {geomean:.2}x"
    )
    .ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_file() -> BenchFile {
        BenchFile {
            commit: "abc1234".to_string(),
            steps: 1,
            iterations: 1,
            cells: vec![CellTiming {
                model: "AlexNet",
                preset: "CPU",
                ops: 80,
                median_ms: 1.5,
                min_ms: 1.2,
                ops_per_sec: 53333.3,
            }],
            repro_all: Some(ReproAllTiming {
                pre_median_ms: 2429.0,
                pre_min_ms: 2204.0,
                post_median_ms: 1000.0,
                post_min_ms: 950.0,
            }),
        }
    }

    #[test]
    fn emitted_json_validates() {
        let json = to_json(&tiny_file());
        validate_bench_json(&json).unwrap();
    }

    #[test]
    fn emitted_json_without_repro_all_validates() {
        let mut f = tiny_file();
        f.repro_all = None;
        validate_bench_json(&to_json(&f)).unwrap();
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").is_err());
        let wrong_schema = to_json(&tiny_file()).replace(BENCH_SCHEMA, "other-schema");
        assert!(validate_bench_json(&wrong_schema).is_err());
        let no_cells = to_json(&BenchFile {
            cells: Vec::new(),
            ..tiny_file()
        });
        assert!(validate_bench_json(&no_cells).is_err());
    }

    #[test]
    fn bench_cells_measures_requested_grid() {
        let cells = bench_cells(
            &[ModelKind::AlexNet],
            &[SystemPreset::CpuOnly, SystemPreset::Hetero],
            1,
            1,
        )
        .unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.median_ms > 0.0 && c.ops > 0));
        assert_eq!(cells[0].preset, "CPU");
        assert_eq!(cells[1].preset, "Hetero PIM");
    }

    #[test]
    fn compare_reports_per_cell_deltas_and_geomean() {
        let a = to_json(&tiny_file());
        let mut faster = tiny_file();
        faster.cells[0].median_ms = 0.75; // 2x faster than the 1.5ms baseline
        let b = to_json(&faster);
        let table = compare_bench_json(&a, &b).unwrap();
        assert!(table.contains("AlexNet"), "{table}");
        assert!(table.contains("2.00x"), "{table}");
        assert!(
            table.contains("geomean speedup over 1 matched cells: 2.00x"),
            "{table}"
        );
    }

    #[test]
    fn compare_rejects_invalid_and_disjoint_inputs() {
        let a = to_json(&tiny_file());
        assert!(compare_bench_json(&a, "not json").is_err());
        assert!(compare_bench_json("not json", &a).is_err());
        let mut other = tiny_file();
        other.cells[0].preset = "Hetero PIM";
        let err = compare_bench_json(&a, &to_json(&other)).unwrap_err();
        assert!(err.contains("no (model, preset) cells in common"), "{err}");
    }

    #[test]
    fn compare_lists_unmatched_cells_but_excludes_them_from_the_geomean() {
        // a: {AlexNet@CPU, VGG@CPU}; b: {AlexNet@CPU (2x faster), LSTM@CPU}.
        // Only AlexNet@CPU matches; the extra cell on each side must be
        // listed with `-` placeholders and left out of the geomean.
        let mut a_file = tiny_file();
        a_file.cells.push(CellTiming {
            model: "VGG",
            preset: "CPU",
            ops: 100,
            median_ms: 3.0,
            min_ms: 2.8,
            ops_per_sec: 33333.3,
        });
        let mut b_file = tiny_file();
        b_file.cells[0].median_ms = 0.75;
        b_file.cells.push(CellTiming {
            model: "LSTM",
            preset: "CPU",
            ops: 60,
            median_ms: 4.0,
            min_ms: 3.9,
            ops_per_sec: 15000.0,
        });
        let table = compare_bench_json(&to_json(&a_file), &to_json(&b_file)).unwrap();
        assert!(table.contains("VGG"), "{table}");
        assert!(table.contains("LSTM"), "{table}");
        assert!(
            table.contains("geomean speedup over 1 matched cells: 2.00x"),
            "unmatched cells must not dilute the geomean: {table}"
        );
        let vgg_row = table.lines().find(|l| l.starts_with("VGG")).unwrap();
        assert!(
            vgg_row.contains('-'),
            "a-only cell renders placeholders: {vgg_row}"
        );
        let lstm_row = table.lines().find(|l| l.starts_with("LSTM")).unwrap();
        assert!(
            lstm_row.contains('-'),
            "b-only cell renders placeholders: {lstm_row}"
        );
    }

    #[test]
    fn speedup_is_median_ratio() {
        let r = repro_all_timing(2000.0, 1900.0, &[400.0, 500.0, 600.0]);
        assert_eq!(r.post_median_ms, 500.0);
        assert_eq!(r.post_min_ms, 400.0);
        assert!((r.speedup() - 4.0).abs() < 1e-12);
    }
}
