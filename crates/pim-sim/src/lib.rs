//! System configurations, trace generation, baselines, and the experiment
//! harness regenerating every table and figure of the paper's evaluation.
//!
//! * [`configs`] — the five evaluated system configurations (§VI) and the
//!   [`simulate`] entry point,
//! * [`gpu`] — the GPU baseline step simulation (utilization, PCIe staging,
//!   working-set spill),
//! * [`baselines`] — the Neurocube comparison point (Fig. 10),
//! * [`ablations`] — coverage-parameter sweep, multi-cube scaling, and the
//!   §II-D GPU-attached-PIM estimate,
//! * [`trace`] / [`tracegen`] — the Pin-substitute trace format and
//!   generator (§V-A),
//! * [`chrome`] — Chrome trace-event export of an engine run's span
//!   recording (`repro --trace`),
//! * [`mixed`] — CNN + non-CNN co-running (§VI-F),
//! * [`report`] — CSV emission of the evaluation grid,
//! * [`experiments`] — one function per table/figure; the `repro` binary
//!   prints them,
//! * [`faults`] — the seeded fault-injection degradation sweep
//!   (`repro faults`): makespan/energy vs fault rate per preset,
//! * [`isa`] — the ISA-backend differential (`repro isa`): analytic vs
//!   interpreted programmable-PIM timing per model,
//! * [`orders`] — the order-invariance fuzz sweep (`repro fuzz`) and the
//!   beam-search oracle-gap table (`repro search`),
//! * [`serve`] — the engine-backed job runner, shared result store, and
//!   load harness behind the `pim-serve` daemon (`repro serve`).
//!
//! # Examples
//!
//! ```
//! use pim_sim::configs::{simulate, SystemConfig};
//! use pim_models::{Model, ModelKind};
//!
//! # fn main() -> pim_common::Result<()> {
//! let model = Model::build_with_batch(ModelKind::Dcgan, 8)?;
//! let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2)?;
//! let cpu = simulate(&model, &SystemConfig::Cpu, 2)?;
//! assert!(hetero.makespan < cpu.makespan);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod ablations;
pub mod baselines;
pub mod bench;
pub mod cache;
pub mod chrome;
pub mod configs;
pub mod experiments;
pub mod faults;
pub mod gpu;
pub mod isa;
pub mod mixed;
pub mod orders;
pub mod report;
pub mod serve;
pub mod trace;
pub mod tracegen;

pub use configs::{simulate, SystemConfig};
