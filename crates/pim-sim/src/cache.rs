//! Sweep-cell memoization: models and per-(model x config x steps)
//! reports.
//!
//! `repro all` evaluates the same cells repeatedly — Fig. 8/9 runs the
//! Hetero PIM once for its energy baseline and again inside the
//! evaluation set, Figs. 10–13 re-run it per model, and every section
//! rebuilds its models from scratch. Both the model builder and the
//! simulator are pure functions of their inputs (the engine is
//! deterministic by construction, a property the differential suite and
//! the CI byte-diff pin down), so caching is behavior-invisible: a hit
//! returns exactly the report a fresh run would produce.
//!
//! Keys are structural fingerprints ([`Graph::structural_hash`],
//! [`pim_common::fingerprint::debug_hash`] of the configuration), not
//! addresses, so independently built but identical models share cells.

use crate::configs::{simulate, SystemConfig};
use pim_common::Result;
use pim_graph::Graph;
use pim_models::{Model, ModelKind};
use pim_runtime::stats::ExecutionReport;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

static MODELS: OnceLock<Mutex<HashMap<ModelKind, Arc<Model>>>> = OnceLock::new();

/// [`Model::build`] behind a process-wide cache (paper batch sizes only;
/// custom-batch studies build their own).
///
/// # Errors
///
/// Propagates model-construction failures (never cached).
pub fn model(kind: ModelKind) -> Result<Arc<Model>> {
    let cache = MODELS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("model cache poisoned").get(&kind) {
        return Ok(Arc::clone(hit));
    }
    let built = Arc::new(Model::build(kind)?);
    cache
        .lock()
        .expect("model cache poisoned")
        .insert(kind, Arc::clone(&built));
    Ok(built)
}

type BatchModelMap = HashMap<(ModelKind, usize), Arc<Model>>;

static BATCH_MODELS: OnceLock<Mutex<BatchModelMap>> = OnceLock::new();

/// [`Model::build_with_batch`] behind a process-wide cache — the
/// custom-batch twin of [`model`], used by serve requests carrying a
/// `batch` override.
///
/// # Errors
///
/// Propagates model-construction failures (never cached).
pub fn model_with_batch(kind: ModelKind, batch: usize) -> Result<Arc<Model>> {
    let cache = BATCH_MODELS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache
        .lock()
        .expect("batch model cache poisoned")
        .get(&(kind, batch))
    {
        return Ok(Arc::clone(hit));
    }
    let built = Arc::new(Model::build_with_batch(kind, batch)?);
    cache
        .lock()
        .expect("batch model cache poisoned")
        .insert((kind, batch), Arc::clone(&built));
    Ok(built)
}

/// Cell key: graph fingerprint + op count (collision discriminant),
/// configuration fingerprint, steps.
type CellKey = (u64, usize, u64, usize);

static CELLS: OnceLock<Mutex<HashMap<CellKey, ExecutionReport>>> = OnceLock::new();

fn cell_key(graph: &Graph, config: &SystemConfig, steps: usize) -> CellKey {
    (
        graph.structural_hash(),
        graph.op_count(),
        pim_common::fingerprint::debug_hash(config),
        steps,
    )
}

/// [`simulate`] behind the process-wide sweep-cell cache.
///
/// # Errors
///
/// Propagates simulation failures (never cached).
pub fn cell_report(model: &Model, config: &SystemConfig, steps: usize) -> Result<ExecutionReport> {
    let key = cell_key(model.graph(), config, steps);
    let cache = CELLS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("cell cache poisoned").get(&key) {
        return Ok(hit.clone());
    }
    // Simulate outside the lock: concurrent misses on the same cell both
    // compute the (identical) result and the last insert wins.
    let report = simulate(model, config, steps)?;
    cache
        .lock()
        .expect("cell cache poisoned")
        .insert(key, report.clone());
    Ok(report)
}

static REQUESTS: OnceLock<Mutex<HashMap<u64, Arc<pim_serve::StoredResult>>>> = OnceLock::new();

/// The process-wide shared result store of the serve daemon: request
/// fingerprints ([`pim_runtime::RunRequest::fingerprint`] plus the
/// fault-spec suffix, see [`crate::serve`]) to completed results. Every
/// connection and every tenant shares this one map, which is what makes
/// identical cells simulate exactly once across tenants.
#[derive(Debug, Default, Clone, Copy)]
pub struct SharedStore;

impl pim_serve::ResultStore for SharedStore {
    fn get(&self, key: u64) -> Option<Arc<pim_serve::StoredResult>> {
        REQUESTS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("request store poisoned")
            .get(&key)
            .cloned()
    }

    fn put(&self, key: u64, result: Arc<pim_serve::StoredResult>) {
        REQUESTS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("request store poisoned")
            .insert(key, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_cell_equals_fresh_simulation() {
        let m = Model::build_with_batch(ModelKind::AlexNet, 4).unwrap();
        let cfg = SystemConfig::hetero_pim();
        let first = cell_report(&m, &cfg, 2).unwrap();
        let hit = cell_report(&m, &cfg, 2).unwrap();
        let fresh = simulate(&m, &cfg, 2).unwrap();
        assert_eq!(first, hit);
        assert_eq!(first, fresh);
    }

    #[test]
    fn distinct_steps_are_distinct_cells() {
        let m = Model::build_with_batch(ModelKind::Dcgan, 4).unwrap();
        let cfg = SystemConfig::Cpu;
        let one = cell_report(&m, &cfg, 1).unwrap();
        let two = cell_report(&m, &cfg, 2).unwrap();
        assert!(two.makespan > one.makespan);
    }

    #[test]
    fn model_cache_returns_shared_instances() {
        let a = model(ModelKind::AlexNet).unwrap();
        let b = model(ModelKind::AlexNet).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            a.graph().structural_hash(),
            Model::build(ModelKind::AlexNet)
                .unwrap()
                .graph()
                .structural_hash()
        );
    }
}
