//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [table1|fig2|fig8|fig10|fig11|fig12|fig13|fig16|ablations|config|csv|all]`,
//! `repro schedule <model>` for a placement preview,
//! `repro --trace <path> [model]` to export a Chrome trace of one
//! Hetero PIM run, or `repro tracecheck <path>` to validate one.
//! (fig8 covers fig9; fig11 covers fig17; fig13 covers fig14/fig15).

use pim_models::ModelKind;
use pim_sim::configs::table_iv_rows;
use pim_sim::experiments;

type Section = (&'static str, fn() -> pim_common::Result<String>);

fn model_arg(arg: Option<&str>) -> ModelKind {
    match arg {
        Some("vgg") => ModelKind::Vgg19,
        Some("dcgan") => ModelKind::Dcgan,
        Some("resnet") => ModelKind::ResNet50,
        Some("inception") => ModelKind::InceptionV3,
        Some("lstm") => ModelKind::Lstm,
        Some("w2v") => ModelKind::Word2vec,
        _ => ModelKind::AlexNet,
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "--trace" {
        // Chrome-trace export: `repro --trace <path> [model]` (2 steps of
        // the model at batch 2 on the full Hetero PIM).
        use pim_runtime::engine::SystemPreset;
        let path = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: repro --trace <path> [model]");
            std::process::exit(2);
        });
        let kind = model_arg(std::env::args().nth(3).as_deref());
        match pim_sim::chrome::chrome_trace(kind, 2, 2, SystemPreset::Hetero) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("trace export failed writing {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote Chrome trace for {kind} to {path}");
            }
            Err(e) => {
                eprintln!("trace export failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if which == "tracecheck" {
        // Structural validation of an exported trace:
        // `repro tracecheck <path>`.
        let path = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: repro tracecheck <path>");
            std::process::exit(2);
        });
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("tracecheck failed reading {path}: {e}");
            std::process::exit(1);
        });
        let diags = pim_common::trace::validate_chrome_trace(&json);
        if diags.is_clean() {
            println!("{path}: valid Chrome trace");
        } else {
            eprintln!("{}", diags.render_text());
            std::process::exit(1);
        }
        return;
    }
    let sections: [Section; 9] = [
        ("table1", experiments::table1),
        ("fig2", experiments::fig2),
        ("fig8", experiments::fig8_fig9),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11_fig17),
        ("fig12", experiments::fig12),
        ("fig13", experiments::fig13_fig14_fig15),
        ("fig16", experiments::fig16),
        ("ablations", experiments::ablations),
    ];
    let selected: Vec<_> = sections
        .iter()
        .filter(|(name, _)| which == *name || which == "all")
        .collect();
    // The figures are independent simulations: sweep them across threads
    // (pim-runtime's `parallel` feature; serial without it) and print in
    // the fixed section order so the output stays deterministic.
    for ((name, _), result) in selected
        .iter()
        .zip(pim_runtime::par::par_map(&selected, |(_, f)| f()))
    {
        match result {
            Ok(text) => println!("{text}"),
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
    if which == "schedule" {
        // Placement preview for one model: `repro schedule [vgg|alex|...]`.
        use pim_models::Model;
        use pim_runtime::engine::{Engine, EngineConfig, SystemPreset};
        let kind = model_arg(std::env::args().nth(2).as_deref());
        let model = Model::build(kind).expect("model builds");
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        match engine.plan_preview(model.graph()) {
            Ok(rows) => {
                println!("placement preview for {kind} (uncontended):");
                for r in rows {
                    println!(
                        "  {:>6} {:28} {:9.6}s {} {}",
                        r.op.to_string(),
                        r.name,
                        r.seconds,
                        if r.candidate {
                            "[candidate]"
                        } else {
                            "           "
                        },
                        r.placement,
                    );
                }
            }
            Err(e) => eprintln!("schedule failed: {e}"),
        }
    }
    if which == "csv" {
        match pim_sim::report::evaluation_grid(3) {
            Ok(rows) => print!("{}", pim_sim::report::to_csv(&rows)),
            Err(e) => eprintln!("csv failed: {e}"),
        }
    }
    if which == "config" || which == "all" {
        println!("Table IV: system configurations");
        for (k, v) in table_iv_rows() {
            println!("  {k:18} {v}");
        }
    }
}
