//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [table1|fig2|fig8|fig10|fig11|fig12|fig13|fig16|ablations|config|csv|all]`,
//! `repro schedule <model>` for a placement preview,
//! `repro faults [--seed N] [--rate R] [--models a,b] [--steps N]` for the
//! seeded fault-degradation sweep,
//! `repro fuzz [--seeds N] [--seed N] [--models a,b] [--presets p,q] [--steps N]` for the
//! order-invariance fuzz sweep (pass 5),
//! `repro isa [--models a,b] [--steps N]` for the analytic-vs-interpreted
//! ISA-backend delta table,
//! `repro search [--beam N] [--rounds N] [--branch N] [--seed N]
//! [--models a,b] [--steps N]` for the beam-search oracle-gap table,
//! `repro --trace <path> [model]` to export a Chrome trace of one
//! Hetero PIM run, `repro tracecheck <path>` to validate one,
//! `repro bench [--json <path>]` for the wall-clock benchmark harness
//! (see `run_bench_cli` for its flags), or
//! `repro serve` for the multi-tenant simulation daemon (line-oriented
//! JSON on stdin, `--tcp PORT`, a seeded closed-loop load run via
//! `--load N --seed S`, or `--emit-trace N` to print the load trace).
//! (fig8 covers fig9; fig11 covers fig17; fig13 covers fig14/fig15).
//!
//! Unknown sections, models, and malformed flags are usage errors: the
//! binary prints a structured message plus the usage block to stderr and
//! exits 2 (runtime failures exit 1).
#![forbid(unsafe_code)]

use pim_models::ModelKind;
use pim_sim::configs::table_iv_rows;
use pim_sim::experiments;

type Section = (&'static str, fn() -> pim_common::Result<String>);

const SECTIONS: [Section; 9] = [
    ("table1", experiments::table1),
    ("fig2", experiments::fig2),
    ("fig8", experiments::fig8_fig9),
    ("fig10", experiments::fig10),
    ("fig11", experiments::fig11_fig17),
    ("fig12", experiments::fig12),
    ("fig13", experiments::fig13_fig14_fig15),
    ("fig16", experiments::fig16),
    ("ablations", experiments::ablations),
];

const USAGE: &str = "usage: repro [SECTION | all | config | csv]
       repro schedule [MODEL]
       repro faults [--seed N] [--rate R] [--models a,b,..] [--steps N]
       repro fuzz [--seeds N] [--seed N] [--models a,b,..] [--presets p,q,..] [--steps N]
       repro isa [--models a,b,..] [--steps N]
       repro search [--beam N] [--rounds N] [--branch N] [--seed N]
                    [--models a,b,..] [--steps N]
       repro --trace <path> [MODEL]
       repro tracecheck <path>
       repro bench [--json <path>] [--models a,b,..] [--iters N] [--steps N]
                   [--repro-all <runs> --baseline <median_ms>,<min_ms>]
       repro bench --compare <a.json> <b.json>
       repro serve [--tcp PORT [--conns N]] [--journal <path>] [--max-line-bytes N]
       repro serve --load N [--seed S] [--tenants T] [--sample K]
       repro serve --emit-trace N [--seed S] [--tenants T]
       repro chaos [--seed S] [--ops N]

sections: table1 fig2 fig8 fig10 fig11 fig12 fig13 fig16 ablations
models:   alex vgg dcgan resnet inception lstm w2v";

/// Prints a structured usage error to stderr and exits 2.
fn usage_error(msg: &str) -> ! {
    pim_common::cli::usage_error("repro", msg, USAGE)
}

/// Resolves a model flag; absent means AlexNet, unknown names are usage
/// errors (they used to silently fall back to AlexNet).
fn model_arg(arg: Option<&str>) -> ModelKind {
    let Some(name) = arg else {
        return ModelKind::AlexNet;
    };
    match name {
        "alex" => ModelKind::AlexNet,
        "vgg" => ModelKind::Vgg19,
        "dcgan" => ModelKind::Dcgan,
        "resnet" => ModelKind::ResNet50,
        "inception" => ModelKind::InceptionV3,
        "lstm" => ModelKind::Lstm,
        "w2v" => ModelKind::Word2vec,
        other => usage_error(&format!(
            "unknown model `{other}` (expected alex, vgg, dcgan, resnet, inception, lstm, or w2v)"
        )),
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "--help" | "-h" => println!("{USAGE}"),
        "--trace" => run_trace_export(),
        "tracecheck" => run_tracecheck(),
        "bench" => run_bench_cli(),
        "schedule" => run_schedule_preview(),
        "faults" => run_faults_cli(),
        "fuzz" => run_fuzz_cli(),
        "isa" => run_isa_cli(),
        "search" => run_search_cli(),
        "serve" => run_serve_cli(),
        "chaos" => run_chaos_cli(),
        "csv" => match pim_sim::report::evaluation_grid(3) {
            Ok(rows) => print!("{}", pim_sim::report::to_csv(&rows)),
            Err(e) => {
                eprintln!("csv failed: {e}");
                std::process::exit(1);
            }
        },
        "config" => print_config(),
        "all" => {
            run_sections("all");
            print_config();
        }
        name if SECTIONS.iter().any(|(n, _)| *n == name) => run_sections(name),
        other => usage_error(&format!("unknown section `{other}`")),
    }
}

fn print_config() {
    println!("Table IV: system configurations");
    for (k, v) in table_iv_rows() {
        println!("  {k:18} {v}");
    }
}

fn run_sections(which: &str) {
    let selected: Vec<_> = SECTIONS
        .iter()
        .filter(|(name, _)| which == *name || which == "all")
        .collect();
    // The figures are independent simulations: sweep them across threads
    // (pim-runtime's `parallel` feature; serial without it) and print in
    // the fixed section order so the output stays deterministic.
    for ((name, _), result) in selected
        .iter()
        .zip(pim_runtime::par::par_map(&selected, |(_, f)| f()))
    {
        match result {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Chrome-trace export: `repro --trace <path> [model]` (2 steps of the
/// model at batch 2 on the full Hetero PIM).
fn run_trace_export() {
    use pim_runtime::engine::SystemPreset;
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| usage_error("--trace requires an output path"));
    let kind = model_arg(std::env::args().nth(3).as_deref());
    match pim_sim::chrome::chrome_trace(kind, 2, 2, SystemPreset::Hetero) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("trace export failed writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote Chrome trace for {kind} to {path}");
        }
        Err(e) => {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Structural validation of an exported trace: `repro tracecheck <path>`.
fn run_tracecheck() {
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| usage_error("tracecheck requires a trace path"));
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("tracecheck failed reading {path}: {e}");
        std::process::exit(1);
    });
    let diags = pim_common::trace::validate_chrome_trace(&json);
    if diags.is_clean() {
        println!("{path}: valid Chrome trace");
    } else {
        eprintln!("{}", diags.render_text());
        std::process::exit(1);
    }
}

/// Placement preview for one model: `repro schedule [alex|vgg|...]`.
fn run_schedule_preview() {
    use pim_models::Model;
    use pim_runtime::engine::{Engine, EngineConfig, SystemPreset};
    let kind = model_arg(std::env::args().nth(2).as_deref());
    let model = match Model::build(kind) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("schedule failed building {kind}: {e}");
            std::process::exit(1);
        }
    };
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    match engine.plan_preview(model.graph()) {
        Ok(rows) => {
            println!("placement preview for {kind} (uncontended):");
            for r in rows {
                println!(
                    "  {:>6} {:28} {:9.6}s {} {}",
                    r.op.to_string(),
                    r.name,
                    r.seconds,
                    if r.candidate {
                        "[candidate]"
                    } else {
                        "           "
                    },
                    r.placement,
                );
            }
        }
        Err(e) => {
            eprintln!("schedule failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The fault-degradation sweep:
///
/// ```text
/// repro faults [--seed N] [--rate R] [--models alex,lstm,...] [--steps N]
/// ```
///
/// Simulates the requested models under every engine preset with a
/// seeded fault plan and prints the degradation table (makespan, energy,
/// slowdown, and the fault counters per rate). Without `--rate` the
/// default rate ladder is swept; the output is deterministic in
/// `(seed, rate)`. Not part of `repro all` — fault runs never perturb
/// the paper-figure output.
fn run_faults_cli() {
    use pim_sim::faults;

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut seed = 1u64;
    let mut rates: Vec<f64> = faults::DEFAULT_RATES.to_vec();
    let mut kinds: Vec<ModelKind> = faults::DEFAULT_MODELS.to_vec();
    let mut steps = 2usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--seed", Some(v)) => {
                seed = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid fault seed `{v}`")));
            }
            ("--rate", Some(v)) => {
                let rate: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid fault rate `{v}`")));
                if !(0.0..=1.0).contains(&rate) {
                    usage_error(&format!("fault rate must be in [0, 1], got {rate}"));
                }
                rates = vec![rate];
            }
            ("--models", Some(v)) => {
                kinds = v.split(',').map(|m| model_arg(Some(m.trim()))).collect();
            }
            ("--steps", Some(v)) => {
                steps = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid step count `{v}`")));
                if steps == 0 {
                    usage_error("--steps must be at least 1");
                }
            }
            (flag, _) => usage_error(&format!("unknown or incomplete faults flag `{flag}`")),
        }
        i += 2;
    }
    match faults::degradation_table(&kinds, &rates, seed, steps) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("faults failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The ISA-backend differential table (`repro isa`): every requested
/// model simulated under the Hetero preset with the analytic and the
/// interpreted `pim_isa` programmable-PIM backend, with relative
/// makespan/energy deltas per model. Deterministic; byte-identical
/// across runs and thread counts. Not part of `repro all` — the ISA
/// backend never perturbs the paper-figure output.
fn run_isa_cli() {
    use pim_common::cli::parse_value;
    use pim_sim::isa;

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut kinds: Vec<ModelKind> = isa::DEFAULT_MODELS.to_vec();
    let mut steps = 2usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--models", Some(v)) => {
                kinds = v.split(',').map(|m| model_arg(Some(m.trim()))).collect();
            }
            ("--steps", Some(v)) => {
                steps = parse_value("--steps", v).unwrap_or_else(|e| usage_error(&e));
                if steps == 0 {
                    usage_error("--steps must be at least 1");
                }
            }
            (flag, _) => usage_error(&format!("unknown or incomplete isa flag `{flag}`")),
        }
        i += 2;
    }
    match isa::isa_delta_table(&kinds, steps) {
        Ok(table) => {
            print!("{table}");
            if table.contains("OUT OF BOUND") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("isa failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The order-invariance fuzz sweep (pass 5 as an experiment):
///
/// ```text
/// repro fuzz [--seeds N] [--seed N] [--models alex,lstm,...]
///            [--presets cpu,progr,...] [--steps N]
/// ```
///
/// Runs every requested model under every requested preset (all six
/// when `--presets` is absent) once per seeded
/// tie-break permutation and diffs each run against the stable order
/// (report equality, legality replay, counter cross-check). Exits 1
/// when any order diverges. Not part of `repro all`.
fn run_fuzz_cli() {
    use pim_common::cli::parse_value;
    use pim_sim::orders;

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut seeds = 8usize;
    let mut seed = 1u64;
    let mut kinds: Vec<ModelKind> = orders::DEFAULT_FUZZ_MODELS.to_vec();
    let mut presets = pim_runtime::engine::SystemPreset::ALL.to_vec();
    let mut steps = 2usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--seeds", Some(v)) => {
                seeds = parse_value("--seeds", v).unwrap_or_else(|e| usage_error(&e));
                if seeds == 0 {
                    usage_error("--seeds must be at least 1");
                }
            }
            ("--seed", Some(v)) => {
                seed = parse_value("--seed", v).unwrap_or_else(|e| usage_error(&e));
            }
            ("--models", Some(v)) => {
                kinds = v.split(',').map(|m| model_arg(Some(m.trim()))).collect();
            }
            ("--presets", Some(v)) => {
                presets = v
                    .split(',')
                    .map(|p| {
                        orders::parse_preset(p.trim())
                            .unwrap_or_else(|e| usage_error(&e.to_string()))
                    })
                    .collect();
            }
            ("--steps", Some(v)) => {
                steps = parse_value("--steps", v).unwrap_or_else(|e| usage_error(&e));
                if steps == 0 {
                    usage_error("--steps must be at least 1");
                }
            }
            (flag, _) => usage_error(&format!("unknown or incomplete fuzz flag `{flag}`")),
        }
        i += 2;
    }
    match orders::fuzz_table(&kinds, &presets, seeds, seed, steps) {
        Ok(table) => {
            print!("{table}");
            if table.contains("order invariance: FAIL") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fuzz failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The beam-search oracle-gap table:
///
/// ```text
/// repro search [--beam N] [--rounds N] [--branch N] [--seed N]
///              [--models alex,dcgan,...] [--steps N]
/// ```
///
/// Beam-searches the legal priority-order space per model on the full
/// Hetero preset and prints the best-found makespan against the paper
/// heuristic; every winner is legality-replayed. Exits 1 if a winner
/// fails the replay. Not part of `repro all`.
fn run_search_cli() {
    use pim_common::cli::parse_value;
    use pim_runtime::engine::SystemPreset;
    use pim_runtime::search::SearchConfig;
    use pim_sim::orders;

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut cfg = SearchConfig::default();
    let mut kinds: Vec<ModelKind> = orders::DEFAULT_SEARCH_MODELS.to_vec();
    let mut steps = 2usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--beam", Some(v)) => {
                cfg.beam_width = parse_value("--beam", v).unwrap_or_else(|e| usage_error(&e));
                if cfg.beam_width == 0 {
                    usage_error("--beam must be at least 1");
                }
            }
            ("--rounds", Some(v)) => {
                cfg.rounds = parse_value("--rounds", v).unwrap_or_else(|e| usage_error(&e));
            }
            ("--branch", Some(v)) => {
                cfg.branching = parse_value("--branch", v).unwrap_or_else(|e| usage_error(&e));
                if cfg.branching == 0 {
                    usage_error("--branch must be at least 1");
                }
            }
            ("--seed", Some(v)) => {
                cfg.seed = parse_value("--seed", v).unwrap_or_else(|e| usage_error(&e));
            }
            ("--models", Some(v)) => {
                kinds = v.split(',').map(|m| model_arg(Some(m.trim()))).collect();
            }
            ("--steps", Some(v)) => {
                steps = parse_value("--steps", v).unwrap_or_else(|e| usage_error(&e));
                if steps == 0 {
                    usage_error("--steps must be at least 1");
                }
            }
            (flag, _) => usage_error(&format!("unknown or incomplete search flag `{flag}`")),
        }
        i += 2;
    }
    match orders::oracle_gap_table(&kinds, SystemPreset::Hetero, &cfg, steps) {
        Ok(table) => {
            print!("{table}");
            if table.contains("ILLEGAL") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("search failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The multi-tenant simulation daemon:
///
/// ```text
/// repro serve [--tcp PORT [--conns N]]
/// repro serve --load N [--seed S] [--tenants T] [--sample K]
/// repro serve --emit-trace N [--seed S] [--tenants T]
/// ```
///
/// With no flags, serves line-oriented JSON requests on stdin and
/// writes one response line per request to stdout (a stats summary goes
/// to stderr at EOF) — the ci.sh byte-diff mode. `--tcp` serves the
/// same protocol per connection on `127.0.0.1:PORT` (`--conns N` exits
/// after N connections; otherwise forever). `--load` generates a
/// seeded trace of N jobs across T tenants, drives it through the
/// daemon, prints throughput, queue-latency percentiles, and the cache
/// hit rate, then re-runs every K-th job directly through the engine
/// and byte-compares the reports — any failed job, rejection, or
/// divergence exits 1. `--emit-trace` prints the same generated trace
/// for replaying by hand. Worker count follows `PIM_RUN_THREADS`.
fn run_serve_cli() {
    use pim_common::cli::parse_value;
    use pim_serve::{serve_lines, serve_tcp, ServeConfig, ServeControl};
    use pim_sim::cache::SharedStore;
    use pim_sim::serve::{verify_samples, SimRunner};

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut load: Option<usize> = None;
    let mut emit: Option<usize> = None;
    let mut tcp: Option<u16> = None;
    let mut conns: Option<usize> = None;
    let mut seed = 1u64;
    let mut tenants = 4usize;
    let mut sample = 25usize;
    let mut journal: Option<std::path::PathBuf> = None;
    let mut max_line_bytes: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--load", Some(v)) => {
                load = Some(parse_value("--load", v).unwrap_or_else(|e| usage_error(&e)));
            }
            ("--emit-trace", Some(v)) => {
                emit = Some(parse_value("--emit-trace", v).unwrap_or_else(|e| usage_error(&e)));
            }
            ("--tcp", Some(v)) => {
                tcp = Some(parse_value("--tcp", v).unwrap_or_else(|e| usage_error(&e)));
            }
            ("--conns", Some(v)) => {
                conns = Some(parse_value("--conns", v).unwrap_or_else(|e| usage_error(&e)));
            }
            ("--seed", Some(v)) => {
                seed = parse_value("--seed", v).unwrap_or_else(|e| usage_error(&e));
            }
            ("--tenants", Some(v)) => {
                tenants = parse_value("--tenants", v).unwrap_or_else(|e| usage_error(&e));
                if tenants == 0 {
                    usage_error("--tenants must be at least 1");
                }
            }
            ("--sample", Some(v)) => {
                sample = parse_value("--sample", v).unwrap_or_else(|e| usage_error(&e));
                if sample == 0 {
                    usage_error("--sample must be at least 1");
                }
            }
            ("--journal", Some(v)) => {
                journal = Some(std::path::PathBuf::from(v));
            }
            ("--max-line-bytes", Some(v)) => {
                let n: usize =
                    parse_value("--max-line-bytes", v).unwrap_or_else(|e| usage_error(&e));
                if n == 0 {
                    usage_error("--max-line-bytes must be at least 1");
                }
                max_line_bytes = Some(n);
            }
            (flag, _) => usage_error(&format!("unknown or incomplete serve flag `{flag}`")),
        }
        i += 2;
    }

    let mut cfg = ServeConfig::default();
    if let Some(n) = max_line_bytes {
        cfg.max_line_bytes = n;
    }
    // The journal is a single-stream facility: it applies to the stdin
    // daemon only (serve_tcp clears it per connection).
    cfg.journal = journal;
    if let Some(jobs) = emit {
        for line in pim_serve::loadgen::generate(jobs, seed, tenants) {
            println!("{line}");
        }
        return;
    }
    if let Some(jobs) = load {
        let trace = pim_serve::loadgen::generate(jobs, seed, tenants);
        let input = trace.join("\n") + "\n";
        let mut out = Vec::new();
        let started = std::time::Instant::now();
        let stats = serve_lines(&cfg, &SimRunner, &SharedStore, input.as_bytes(), &mut out)
            .unwrap_or_else(|e| {
                eprintln!("serve load run failed: {e}");
                std::process::exit(1);
            });
        let elapsed = started.elapsed().as_secs_f64();
        let c = &stats.counters;
        let hit_rate = if c.ok == 0 {
            0.0
        } else {
            100.0 * c.cache_hits as f64 / c.ok as f64
        };
        println!("serve load: {jobs} jobs, seed {seed}, {tenants} tenants");
        println!(
            "  ok {} | errors {} | rejected {} | distinct cells {} | cross-tenant hits {}",
            c.ok, c.errors, c.rejected, c.distinct_cells, c.cross_tenant_hits
        );
        println!(
            "  throughput {:.1} jobs/s ({elapsed:.2}s wall)",
            c.ok as f64 / elapsed
        );
        println!(
            "  queue latency p50 {} us | p99 {} us",
            stats.latency_percentile_us(50.0),
            stats.latency_percentile_us(99.0)
        );
        println!("  cache hit rate {hit_rate:.1}%");
        if c.errors != 0 || c.rejected != 0 {
            eprintln!(
                "serve load: {} failed and {} rejected jobs",
                c.errors, c.rejected
            );
            std::process::exit(1);
        }
        let responses: Vec<String> = String::from_utf8(out)
            .expect("responses are utf8")
            .lines()
            .map(str::to_string)
            .collect();
        match verify_samples(&trace, &responses, sample) {
            Ok(checked) => println!("  verified {checked} sampled jobs against direct engine runs"),
            Err(e) => {
                eprintln!("serve load verification failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(port) = tcp {
        let listener = std::net::TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
            eprintln!("serve: cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        });
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        eprintln!("serve: listening on {addr}");
        if let Err(e) = serve_tcp(
            &cfg,
            &SimRunner,
            &SharedStore,
            &listener,
            conns,
            &ServeControl::new(),
        ) {
            eprintln!("serve: accept failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_lines(&cfg, &SimRunner, &SharedStore, stdin.lock(), stdout.lock()) {
        Ok(stats) => {
            let c = &stats.counters;
            eprintln!(
                "serve: {} jobs, {} ok, {} errors, {} rejected, {} cache hits ({} cross-tenant), {} distinct cells",
                c.jobs, c.ok, c.errors, c.rejected, c.cache_hits, c.cross_tenant_hits, c.distinct_cells
            );
        }
        Err(e) => {
            eprintln!("serve: I/O error: {e}");
            std::process::exit(1);
        }
    }
}

/// Chaos/soak harness: `repro chaos [--seed S] [--ops N]` expands the
/// seed into an adversarial request schedule (failing runs, duplicates,
/// malformed/oversized/non-UTF-8 lines, kill-restart recovery cycles,
/// mid-line disconnects) and checks the daemon's resilience invariants;
/// any violation exits 1. The schedule injects worker panics by design,
/// so the panic hook stays quiet for those.
fn run_chaos_cli() {
    use pim_common::cli::parse_value;

    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut seed = 1u64;
    let mut ops = 500usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        match (args[i].as_str(), value) {
            ("--seed", Some(v)) => {
                seed = parse_value("--seed", v).unwrap_or_else(|e| usage_error(&e));
            }
            ("--ops", Some(v)) => {
                ops = parse_value("--ops", v).unwrap_or_else(|e| usage_error(&e));
                if ops == 0 {
                    usage_error("--ops must be at least 1");
                }
            }
            (flag, _) => usage_error(&format!("unknown or incomplete chaos flag `{flag}`")),
        }
        i += 2;
    }

    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("chaos: injected runner panic"));
        if !injected {
            default_hook(info);
        }
    }));

    match pim_serve::chaos::run_chaos(seed, ops) {
        Ok(summary) => println!("{summary}"),
        Err(violation) => {
            eprintln!("chaos: invariant violated: {violation}");
            std::process::exit(1);
        }
    }
}

/// The wall-clock benchmark harness:
///
/// ```text
/// repro bench [--json <path>] [--models alex,vgg,...] [--iters N]
///             [--steps N] [--repro-all <runs> --baseline <median_ms>,<min_ms>]
/// repro bench --compare <a.json> <b.json>
/// ```
///
/// Times every requested model against all six `SystemPreset`s and
/// emits a `hetero-pim-bench-v1` document — to `<path>` with `--json`
/// (a one-line summary goes to stderr), to stdout otherwise. `--repro-all`
/// additionally times N cold `repro all` subprocesses and records the
/// speedup against the externally measured pre-change `--baseline`.
/// `--compare` skips measuring entirely and diffs two previously written
/// bench documents: per-cell median deltas plus the geometric-mean
/// speedup over the matched cells.
fn run_bench_cli() {
    use pim_sim::bench;

    let args: Vec<String> = std::env::args().skip(2).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        let (Some(a), Some(b), 3) = (args.get(1), args.get(2), args.len()) else {
            usage_error("--compare expects exactly two bench JSON paths")
        };
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("bench compare failed reading {path}: {e}");
                std::process::exit(1);
            })
        };
        match bench::compare_bench_json(&read(a), &read(b)) {
            Ok(table) => print!("{table}"),
            Err(e) => {
                eprintln!("bench compare failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut json_path: Option<String> = None;
    let mut kinds: Vec<ModelKind> = ModelKind::ALL.to_vec();
    let mut iters = 3usize;
    let mut steps = 3usize;
    let mut repro_runs = 0usize;
    let mut baseline: Option<(f64, f64)> = None;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match (args[i].as_str(), value) {
            ("--json", Some(v)) => json_path = Some(v.clone()),
            ("--models", Some(v)) => {
                kinds = v.split(',').map(|m| model_arg(Some(m.trim()))).collect();
            }
            ("--iters", Some(v)) => {
                iters = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid iteration count `{v}`")));
            }
            ("--steps", Some(v)) => {
                steps = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid step count `{v}`")));
            }
            ("--repro-all", Some(v)) => {
                repro_runs = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid repro-all run count `{v}`")));
            }
            ("--baseline", Some(v)) => {
                let parsed = v
                    .split_once(',')
                    .and_then(|(median, min)| Some((median.parse().ok()?, min.parse().ok()?)));
                baseline = Some(parsed.unwrap_or_else(|| {
                    usage_error(&format!(
                        "--baseline expects <median_ms>,<min_ms>, got `{v}`"
                    ))
                }));
            }
            (flag, _) => usage_error(&format!("unknown or incomplete bench flag `{flag}`")),
        }
        i += 2;
    }

    use pim_runtime::engine::SystemPreset;
    let cells = bench::bench_cells(&kinds, &SystemPreset::ALL, steps, iters).unwrap_or_else(|e| {
        eprintln!("bench failed: {e}");
        std::process::exit(1);
    });
    let repro_all = if repro_runs > 0 {
        let (pre_median, pre_min) = baseline.unwrap_or_else(|| {
            usage_error("--repro-all needs --baseline <median_ms>,<min_ms> to compare against")
        });
        let post = bench::time_repro_all(repro_runs).unwrap_or_else(|e| {
            eprintln!("bench failed timing repro all: {e}");
            std::process::exit(1);
        });
        Some(bench::repro_all_timing(pre_median, pre_min, &post))
    } else {
        None
    };
    let file = bench::BenchFile {
        commit: bench::current_commit(),
        steps,
        iterations: iters,
        cells,
        repro_all,
    };
    let json = bench::to_json(&file);
    if let Err(e) = bench::validate_bench_json(&json) {
        eprintln!("bench produced an invalid document: {e}");
        std::process::exit(1);
    }
    match json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("bench failed writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote {} cells ({} models x {} presets, commit {}) to {path}",
                file.cells.len(),
                kinds.len(),
                SystemPreset::ALL.len(),
                file.commit,
            );
            if let Some(r) = &file.repro_all {
                eprintln!(
                    "repro all: {:.0} ms -> {:.0} ms median ({:.2}x)",
                    r.pre_median_ms,
                    r.post_median_ms,
                    r.speedup(),
                );
            }
        }
        None => print!("{json}"),
    }
}
