//! The GPU baseline simulation (§V-D, §VI-A).
//!
//! The GPU executes the training step as a stream of fused kernels at the
//! model-specific average utilization the paper measured, plus the
//! step-level effects it discusses: unhidden minibatch staging over PCIe
//! and working-set spill when the training footprint exceeds device memory
//! (the ResNet-50 case). The kernel stream itself runs through the shared
//! event core (`run_device_serial`) via the [`AnalyticGpu`] device, so the
//! GPU's report comes from the same measurement path as every other
//! configuration.

use pim_common::units::Bytes;
use pim_common::Result;
use pim_graph::cost::graph_costs;
use pim_graph::{Graph, TensorRole};
use pim_hw::device::AnalyticGpu;
use pim_hw::gpu::GpuDevice;
use pim_models::Model;
use pim_runtime::engine::{run_device_serial, DeviceRun, NullSink};
use pim_runtime::stats::ExecutionReport;

/// Fraction of per-tensor activation footprint that TensorFlow's buffer
/// reuse eliminates from the live working set.
const ACTIVATION_REUSE: f64 = 0.5;

/// Training working set of one step: live activations (after buffer reuse)
/// plus parameters with gradient and two Adam moments.
pub fn working_set(graph: &Graph) -> Bytes {
    let activations: usize = graph
        .tensors()
        .iter()
        .filter(|t| t.role == TensorRole::Activation)
        .map(|t| t.shape.size_bytes())
        .sum();
    let params = graph.parameter_bytes();
    Bytes::new(activations as f64 * ACTIVATION_REUSE + params as f64 * 4.0)
}

/// Minibatch bytes staged over PCIe each step (the input-role tensors).
pub fn minibatch_bytes(graph: &Graph) -> Bytes {
    let input: usize = graph
        .tensors()
        .iter()
        .filter(|t| t.role == TensorRole::Input)
        .map(|t| t.shape.size_bytes())
        .sum();
    Bytes::new(input as f64)
}

/// Simulates `steps` training steps of `model` on the GPU baseline.
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn simulate_gpu(model: &Model, gpu: &GpuDevice, steps: usize) -> Result<ExecutionReport> {
    let graph = model.graph();
    let utilization = model.kind().gpu_utilization().unwrap_or(0.5);
    let costs = graph_costs(graph)?;
    let device = AnalyticGpu::new(gpu.clone(), utilization);

    // Step-level PCIe effects outside the kernel stream: minibatch staging,
    // working-set spill (billed as data movement), and the transfer energy
    // for everything crossing the link (spilled bytes cross twice).
    let staging = gpu.staging_time(minibatch_bytes(graph));
    let spill = gpu.spill_time(working_set(graph));
    let pcie_volume = minibatch_bytes(graph)
        + Bytes::new((working_set(graph).bytes() - gpu.capacity().bytes()).max(0.0) * 2.0);

    Ok(run_device_serial(
        &DeviceRun {
            system: "GPU",
            device: &device,
            costs: &costs,
            steps,
            step_epilogue_dm: staging + spill,
            step_epilogue_energy: gpu.transfer_energy(pcie_volume),
        },
        &mut NullSink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::ModelKind;

    #[test]
    fn resnet_at_paper_batch_spills_but_vgg_does_not() {
        let resnet = Model::build(ModelKind::ResNet50).unwrap();
        let vgg = Model::build(ModelKind::Vgg19).unwrap();
        let gpu = GpuDevice::gtx_1080_ti();
        assert!(working_set(resnet.graph()) > gpu.capacity());
        assert!(working_set(vgg.graph()) < gpu.capacity());
    }

    #[test]
    fn report_is_well_formed() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 8).unwrap();
        let r = simulate_gpu(&model, &GpuDevice::gtx_1080_ti(), 2).unwrap();
        assert!(r.is_well_formed());
        assert!(r.makespan.seconds() > 0.0);
    }

    #[test]
    fn more_steps_scale_linearly() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 8).unwrap();
        let gpu = GpuDevice::gtx_1080_ti();
        let one = simulate_gpu(&model, &gpu, 1).unwrap();
        let three = simulate_gpu(&model, &gpu, 3).unwrap();
        assert!((three.makespan.seconds() - 3.0 * one.makespan.seconds()).abs() < 1e-9);
    }
}
