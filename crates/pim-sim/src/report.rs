//! Machine-readable result emission: CSV rows for downstream plotting.
//!
//! `repro` prints human-oriented tables; this module provides the same data
//! as CSV (`repro fig8 --csv` style usage from the binary, or direct calls
//! from user code).

use crate::configs::{simulate, SystemConfig};
use pim_common::Result;
use pim_models::{Model, ModelKind};
use std::fmt::Write as _;

/// One measurement row of the 5x5 evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Workload name.
    pub model: &'static str,
    /// Configuration name.
    pub system: String,
    /// Seconds per training step.
    pub step_seconds: f64,
    /// Joules per training step.
    pub step_joules: f64,
    /// Breakdown fractions (op, data movement, sync).
    pub breakdown: (f64, f64, f64),
    /// Fixed-function pool utilization.
    pub ff_utilization: f64,
}

/// Runs the full 5-model x 5-configuration grid.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn evaluation_grid(steps: usize) -> Result<Vec<GridRow>> {
    let mut rows = Vec::new();
    for kind in ModelKind::CNNS {
        let model = Model::build(kind)?;
        for config in SystemConfig::evaluation_set() {
            let r = simulate(&model, &config, steps)?;
            rows.push(GridRow {
                model: kind.name(),
                system: config.name().to_string(),
                step_seconds: r.per_step_time().seconds(),
                step_joules: r.dynamic_energy.joules() / steps.max(1) as f64,
                breakdown: r.breakdown_fractions(),
                ff_utilization: r.ff_utilization,
            });
        }
    }
    Ok(rows)
}

/// Renders grid rows as CSV with a header.
///
/// # Examples
///
/// ```
/// use pim_sim::report::{to_csv, GridRow};
///
/// let rows = vec![GridRow {
///     model: "AlexNet",
///     system: "Hetero PIM".into(),
///     step_seconds: 0.057,
///     step_joules: 6.3,
///     breakdown: (0.86, 0.12, 0.02),
///     ff_utilization: 0.66,
/// }];
/// let csv = to_csv(&rows);
/// assert!(csv.starts_with("model,system,"));
/// assert!(csv.contains("AlexNet,Hetero PIM,"));
/// ```
pub fn to_csv(rows: &[GridRow]) -> String {
    let mut out = String::from(
        "model,system,step_seconds,step_joules,op_frac,dm_frac,sync_frac,ff_utilization\n",
    );
    for r in rows {
        writeln!(
            out,
            "{},{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.model,
            r.system,
            r.step_seconds,
            r.step_joules,
            r.breakdown.0,
            r.breakdown.1,
            r.breakdown.2,
            r.ff_utilization
        )
        .ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_25_cells() {
        let rows = evaluation_grid(1).unwrap();
        assert_eq!(rows.len(), 25);
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 26);
        // Every line has the full column count.
        assert!(csv.lines().all(|l| l.split(',').count() == 8));
    }

    #[test]
    fn csv_is_parseable_back() {
        let rows = evaluation_grid(1).unwrap();
        let csv = to_csv(&rows);
        for (line, row) in csv.lines().skip(1).zip(&rows) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields[0], row.model);
            let secs: f64 = fields[2].parse().unwrap();
            assert!((secs - row.step_seconds).abs() < 1e-5);
        }
    }
}
