//! Ablations and extensions beyond the paper's figures.
//!
//! * [`coverage_sweep`] — sensitivity of the candidate-selection parameter
//!   `x` (the paper fixes x = 90 without a sweep; DESIGN.md lists this as a
//!   design-choice ablation),
//! * [`cube_scaling`] — scaling the fixed-function complement as if more
//!   memory cubes contributed logic-die area (the multi-cube direction the
//!   HMC platform implies),
//! * [`gpu_attached`] — the §II-D discussion: "our heterogeneous PIMs ...
//!   are generally applicable to both CPU or GPU systems"; a first-order
//!   model of attaching the PIM complement to the GPU's stacked memory.

use crate::configs::{simulate, SystemConfig};
use crate::gpu::{minibatch_bytes, working_set};
use pim_common::units::Seconds;
use pim_common::Result;
use pim_graph::cost::graph_costs;
use pim_hw::fixed::FixedPoolConfig;
use pim_hw::gpu::GpuDevice;
use pim_mem::stack::StackConfig;
use pim_models::Model;
use pim_runtime::engine::{EngineConfig, SystemPreset};
use serde::Serialize;

/// One point of the coverage sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoveragePoint {
    /// The selection parameter x (fraction of step time candidates cover).
    pub coverage: f64,
    /// Resulting per-step time in seconds.
    pub step_seconds: f64,
}

/// Sweeps the candidate-selection coverage `x` for one model.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn coverage_sweep(model: &Model, points: &[f64], steps: usize) -> Result<Vec<CoveragePoint>> {
    points
        .iter()
        .map(|&coverage| {
            let mut cfg = EngineConfig::preset(SystemPreset::Hetero);
            cfg.coverage = coverage;
            let r = simulate(model, &SystemConfig::HeteroPim(cfg), steps)?;
            Ok(CoveragePoint {
                coverage,
                step_seconds: r.per_step_time().seconds(),
            })
        })
        .collect()
}

/// One point of the cube-scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CubePoint {
    /// Number of memory cubes contributing fixed-function units.
    pub cubes: usize,
    /// Total fixed-function units.
    pub ff_units: usize,
    /// Per-step time in seconds.
    pub step_seconds: f64,
}

/// Scales the fixed-function complement with the cube count (1-4 cubes).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn cube_scaling(model: &Model, steps: usize) -> Result<Vec<CubePoint>> {
    (1..=4)
        .map(|cubes| {
            let units = pim_hw::fixed::DEFAULT_UNITS * cubes;
            let cfg =
                EngineConfig::preset(SystemPreset::Hetero).with_pim_complement(4 * cubes, units);
            let r = simulate(model, &SystemConfig::HeteroPim(cfg), steps)?;
            Ok(CubePoint {
                cubes,
                ff_units: units,
                step_seconds: r.per_step_time().seconds(),
            })
        })
        .collect()
}

/// One point of the batch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchPoint {
    /// Minibatch size.
    pub batch: usize,
    /// Hetero-PIM seconds per step.
    pub hetero_step_seconds: f64,
    /// Hetero-PIM seconds per *sample* (step time / batch).
    pub hetero_sample_seconds: f64,
}

/// Sweeps the minibatch size for a model kind (the paper fixes TensorFlow's
/// defaults; this ablation shows the throughput trend behind that choice).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn batch_sweep(
    kind: pim_models::ModelKind,
    batches: &[usize],
    steps: usize,
) -> Result<Vec<BatchPoint>> {
    batches
        .iter()
        .map(|&batch| {
            let model = Model::build_with_batch(kind, batch)?;
            let r = simulate(&model, &SystemConfig::hetero_pim(), steps)?;
            let step = r.per_step_time().seconds();
            Ok(BatchPoint {
                batch,
                hetero_step_seconds: step,
                hetero_sample_seconds: step / batch as f64,
            })
        })
        .collect()
}

/// First-order estimate of a GPU-attached heterogeneous PIM (§II-D): the
/// GPU keeps its compute but its stacked memory grows the fixed-function
/// complement; PIM-side execution removes the working-set spill (data stays
/// in the stack) while the GPU's coarse kernel scheduling limits
/// fine-grained offloading to the fully multiply/add ops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuAttachedEstimate {
    /// Plain GPU per-step seconds.
    pub gpu_seconds: f64,
    /// GPU + in-stack fixed-function PIMs, per-step seconds.
    pub gpu_pim_seconds: f64,
}

/// Estimates the GPU-attached configuration for one model.
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn gpu_attached(model: &Model, gpu: &GpuDevice) -> Result<GpuAttachedEstimate> {
    let utilization = model.kind().gpu_utilization().unwrap_or(0.5);
    let costs = graph_costs(model.graph())?;
    let stack = StackConfig::hmc2();
    let pool = FixedPoolConfig::paper_default(&stack);

    let mut gpu_time = Seconds::ZERO;
    let mut hybrid_time = Seconds::ZERO;
    for cost in &costs {
        let on_gpu = gpu.estimate_op(cost, utilization);
        gpu_time += on_gpu.time;
        if cost.class == pim_tensor::cost::OffloadClass::FullyMulAdd {
            // The GPU offloads whole mul/add kernels into its stack; the
            // kernel-fusion constraint (§II-D) bars finer-grained splits.
            let units = cost.ff_parallelism.min(pool.total_units).max(1);
            let in_stack =
                pim_hw::fixed::FixedFunctionPool::new(pool.clone()).estimate_ma(cost, units, true);
            hybrid_time += on_gpu.time.min(in_stack.time);
        } else {
            hybrid_time += on_gpu.time;
        }
    }
    let staging = gpu.staging_time(minibatch_bytes(model.graph()));
    let spill = gpu.spill_time(working_set(model.graph()));
    Ok(GpuAttachedEstimate {
        gpu_seconds: (gpu_time + staging + spill).seconds(),
        // In-stack offloads keep the spilled tensors resident in the cube.
        gpu_pim_seconds: (hybrid_time + staging + spill * 0.3).seconds(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::ModelKind;

    #[test]
    fn larger_batches_amortize_per_step_overheads() {
        let pts = batch_sweep(ModelKind::AlexNet, &[4, 16, 64], 2).unwrap();
        assert_eq!(pts.len(), 3);
        // Per-step time grows with batch...
        assert!(pts[2].hetero_step_seconds > pts[0].hetero_step_seconds);
        // ...but per-sample time shrinks (throughput improves).
        assert!(pts[2].hetero_sample_seconds < pts[0].hetero_sample_seconds);
    }

    #[test]
    fn higher_coverage_is_never_much_worse() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 16).unwrap();
        let pts = coverage_sweep(&model, &[0.5, 0.9, 0.99], 2).unwrap();
        assert_eq!(pts.len(), 3);
        // Offloading more of the heavy tail should help (x = 90 close to
        // the knee): the 0.9 point beats the 0.5 point.
        assert!(pts[1].step_seconds <= pts[0].step_seconds * 1.05);
    }

    #[test]
    fn more_cubes_never_hurt_and_eventually_saturate() {
        let model = Model::build_with_batch(ModelKind::Vgg19, 16).unwrap();
        let pts = cube_scaling(&model, 2).unwrap();
        assert_eq!(pts.len(), 4);
        assert!(pts[3].step_seconds <= pts[0].step_seconds * 1.02);
        // Diminishing returns: the 3->4 cube gain is smaller than 1->2.
        let g12 = pts[0].step_seconds - pts[1].step_seconds;
        let g34 = pts[2].step_seconds - pts[3].step_seconds;
        assert!(g34 <= g12 + 1e-9, "g12={g12} g34={g34}");
    }

    #[test]
    fn gpu_attached_pim_helps_spilling_models_most() {
        let gpu = GpuDevice::gtx_1080_ti();
        let resnet = Model::build(ModelKind::ResNet50).unwrap();
        let est = gpu_attached(&resnet, &gpu).unwrap();
        assert!(est.gpu_pim_seconds < est.gpu_seconds);
        // The spill reduction dominates for ResNet-50.
        assert!(est.gpu_seconds / est.gpu_pim_seconds > 1.3);
    }
}
