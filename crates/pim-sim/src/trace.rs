//! The instruction/memory trace format (the Pin-substitute's output).
//!
//! §V-A: "We employ a trace generator developed on Pin to collect
//! instruction trace, when running our OpenCL kernel binaries on CPU. We
//! develop a ... trace-driven simulation framework based on our design."
//! The trace carries, per operation instance, exactly the counters the
//! simulator consumes; [`tracegen`](crate::tracegen) produces it and the
//! driver replays it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pim_common::access::AccessPattern;
use pim_common::units::Bytes as ByteVolume;
use pim_common::{PimError, Result};
use pim_tensor::cost::{CostProfile, OffloadClass};

/// One traced operation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Index of the op in its graph.
    pub op_index: u32,
    /// TensorFlow op name.
    pub name: String,
    /// Multiply instructions.
    pub muls: f64,
    /// Add instructions.
    pub adds: f64,
    /// Other arithmetic instructions.
    pub other: f64,
    /// Control instructions.
    pub control: f64,
    /// Bytes read from main memory.
    pub bytes_read: f64,
    /// Bytes written to main memory.
    pub bytes_written: f64,
    /// Dominant access pattern (0 sequential, 1 strided, 2 random).
    pub pattern: u8,
    /// Mul/add fraction in per-mille (0..=1000).
    pub ma_permille: u16,
    /// Fixed-function parallelism.
    pub parallelism: u32,
}

impl TraceRecord {
    /// Builds a record from an analytic cost profile.
    pub fn from_cost(op_index: u32, name: &str, cost: &CostProfile) -> Self {
        TraceRecord {
            op_index,
            name: name.to_string(),
            muls: cost.muls,
            adds: cost.adds,
            other: cost.other_flops,
            control: cost.control_ops,
            bytes_read: cost.bytes_read.bytes(),
            bytes_written: cost.bytes_written.bytes(),
            pattern: match cost.pattern {
                AccessPattern::Sequential => 0,
                AccessPattern::Strided => 1,
                AccessPattern::Random => 2,
            },
            ma_permille: (cost.class.ma_fraction() * 1000.0).round() as u16,
            parallelism: cost.ff_parallelism as u32,
        }
    }

    /// Reconstructs the cost profile the simulator consumes.
    pub fn to_cost(&self) -> CostProfile {
        let pattern = match self.pattern {
            0 => AccessPattern::Sequential,
            1 => AccessPattern::Strided,
            _ => AccessPattern::Random,
        };
        let ma_fraction = f64::from(self.ma_permille) / 1000.0;
        let class = if self.muls + self.adds + self.other == 0.0 {
            OffloadClass::DataMovement
        } else if ma_fraction >= 0.9995 {
            OffloadClass::FullyMulAdd
        } else if ma_fraction <= 0.0005 {
            OffloadClass::NonMulAdd
        } else {
            OffloadClass::PartiallyMulAdd { ma_fraction }
        };
        CostProfile {
            muls: self.muls,
            adds: self.adds,
            other_flops: self.other,
            control_ops: self.control,
            bytes_read: ByteVolume::new(self.bytes_read),
            bytes_written: ByteVolume::new(self.bytes_written),
            pattern,
            ff_parallelism: self.parallelism as usize,
            class,
        }
    }
}

/// A complete trace of one training step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Records in execution order.
    pub records: Vec<TraceRecord>,
}

const MAGIC: u32 = 0x5049_4d54; // "PIMT"

impl Trace {
    /// Serializes the trace to a compact binary buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 * self.records.len() + 16);
        buf.put_u32(MAGIC);
        buf.put_u32(self.records.len() as u32);
        for r in &self.records {
            buf.put_u32(r.op_index);
            let name = r.name.as_bytes();
            buf.put_u16(name.len() as u16);
            buf.put_slice(name);
            buf.put_f64(r.muls);
            buf.put_f64(r.adds);
            buf.put_f64(r.other);
            buf.put_f64(r.control);
            buf.put_f64(r.bytes_read);
            buf.put_f64(r.bytes_written);
            buf.put_u8(r.pattern);
            buf.put_u16(r.ma_permille);
            buf.put_u32(r.parallelism);
        }
        buf.freeze()
    }

    /// Deserializes a trace buffer.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for truncated or foreign data.
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        let fail = |what: &str| PimError::invalid("Trace::decode", what.to_string());
        if buf.remaining() < 8 {
            return Err(fail("buffer too small"));
        }
        if buf.get_u32() != MAGIC {
            return Err(fail("bad magic"));
        }
        let count = buf.get_u32() as usize;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 6 {
                return Err(fail("truncated record header"));
            }
            let op_index = buf.get_u32();
            let name_len = buf.get_u16() as usize;
            if buf.remaining() < name_len + 6 * 8 + 1 + 2 + 4 {
                return Err(fail("truncated record body"));
            }
            let name_bytes = buf.copy_to_bytes(name_len);
            let name =
                String::from_utf8(name_bytes.to_vec()).map_err(|_| fail("non-utf8 op name"))?;
            records.push(TraceRecord {
                op_index,
                name,
                muls: buf.get_f64(),
                adds: buf.get_f64(),
                other: buf.get_f64(),
                control: buf.get_f64(),
                bytes_read: buf.get_f64(),
                bytes_written: buf.get_f64(),
                pattern: buf.get_u8(),
                ma_permille: buf.get_u16(),
                parallelism: buf.get_u32(),
            });
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::Bytes as BV;

    fn sample_cost() -> CostProfile {
        CostProfile::compute(
            100.0,
            90.0,
            10.0,
            BV::new(640.0),
            BV::new(320.0),
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.95 },
            17,
        )
    }

    #[test]
    fn record_roundtrips_through_cost() {
        let cost = sample_cost();
        let rec = TraceRecord::from_cost(3, "Conv2D", &cost);
        let back = rec.to_cost();
        assert_eq!(back.muls, cost.muls);
        assert_eq!(back.bytes_read, cost.bytes_read);
        assert_eq!(back.ff_parallelism, cost.ff_parallelism);
        assert!((back.class.ma_fraction() - cost.class.ma_fraction()).abs() < 1e-3);
    }

    #[test]
    fn trace_roundtrips_through_binary() {
        let trace = Trace {
            records: (0..5)
                .map(|i| TraceRecord::from_cost(i, "MatMul", &sample_cost()))
                .collect(),
        };
        let encoded = trace.encode();
        let decoded = Trace::decode(encoded).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(Bytes::from_static(b"nonsense")).is_err());
        assert!(Trace::decode(Bytes::from_static(b"")).is_err());
        // Right magic, truncated body.
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u32(5);
        assert!(Trace::decode(buf.freeze()).is_err());
    }
}
