//! The trace generator (Pin substitute).
//!
//! Walks a training-step graph in execution order, compiles each op's
//! kernel IR through the binary-generation pass (exactly the binaries that
//! would run on the CPU), and emits the instruction/memory counts as a
//! [`Trace`]. The trace-driven path is validated by replaying it through
//! the engine and matching the direct-simulation result.

use crate::trace::{Trace, TraceRecord};
use pim_common::Result;
use pim_graph::cost::op_cost;
use pim_graph::Graph;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::KernelSource;

/// Generates the instruction/memory trace of one training step.
///
/// # Examples
///
/// ```
/// use pim_sim::tracegen::generate_trace;
/// use pim_models::{Model, ModelKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let model = Model::build_with_batch(ModelKind::AlexNet, 2)?;
/// let trace = generate_trace(model.graph())?;
/// assert_eq!(trace.records.len(), model.graph().op_count());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn generate_trace(graph: &Graph) -> Result<Trace> {
    let order = graph.topo_order()?;
    let mut records = Vec::with_capacity(order.len());
    for id in order {
        let node = graph.op(id)?;
        let cost = op_cost(graph, node)?;
        // Compile the kernel the CPU would execute; the binary pass is the
        // same one the runtime uses for PIM offloading (Fig. 4).
        let kernel = KernelSource::from_cost(node.kind.tf_name(), &cost);
        let binaries = BinarySet::generate(kernel)?;
        debug_assert_eq!(
            binaries.supports_recursive_kernel(),
            cost.class.has_fixed_function_part(),
            "binary generation must agree with the cost classification"
        );
        records.push(TraceRecord::from_cost(
            id.index() as u32,
            node.kind.tf_name(),
            &cost,
        ));
    }
    Ok(Trace { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::{Model, ModelKind};

    #[test]
    fn trace_covers_every_op_in_topological_order() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 4).unwrap();
        let trace = generate_trace(model.graph()).unwrap();
        assert_eq!(trace.records.len(), model.graph().op_count());
        // Binary roundtrip preserves the whole trace.
        let decoded = crate::trace::Trace::decode(trace.encode()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn traced_costs_match_direct_costs() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 4).unwrap();
        let trace = generate_trace(model.graph()).unwrap();
        for rec in &trace.records {
            let node = model
                .graph()
                .op(pim_common::ids::OpId::new(rec.op_index as usize))
                .unwrap();
            let direct = op_cost(model.graph(), node).unwrap();
            let replayed = rec.to_cost();
            assert_eq!(replayed.muls, direct.muls, "{}", rec.name);
            assert_eq!(replayed.memory_accesses(), direct.memory_accesses());
        }
    }
}
