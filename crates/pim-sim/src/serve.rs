//! The engine-backed half of the serve daemon: maps protocol requests
//! onto `RunRequest`s, keys the shared store, and verifies daemon
//! output against direct engine runs.
//!
//! [`SimRunner`] implements `pim_serve::JobRunner` over the real
//! engine: `cache_key` is the request's `RunRequest::fingerprint`
//! (with a fault-*spec* suffix, see below) and `execute` is
//! `Engine::execute`. Paired with [`crate::cache::SharedStore`], every
//! distinct `(model, config, steps, faults, tie-break)` cell simulates
//! exactly once per process no matter how many tenants or connections
//! ask for it.
//!
//! Fault horizons: a wire request carries `(seed, rate)`, not a full
//! `FaultPlan` — the plan's horizon is the cell's *zero-fault* makespan
//! (the `repro faults` recipe), derived at execution time. The cache
//! key therefore hashes the fault-free fingerprint plus the raw spec,
//! and the derived baselines are memoized in a *private* table rather
//! than the shared store: publishing them mid-run would let worker
//! timing decide whether a later fault-free request hits or misses,
//! breaking the daemon's byte-replay determinism.
//!
//! Deadlines: a request's `deadline_ms` is mapped onto a deterministic
//! engine fuel budget ([`FUEL_PER_DEADLINE_MS`] retired events per
//! millisecond), never a wall clock, so whether a deadlined run is cut
//! off — surfaced as a `deadline_exceeded` job error — is a pure
//! function of the request. A deadlined run is a distinct cache cell
//! from the undeadlined one (the budget changes what the cell can
//! produce), so `cache_key` suffixes the deadline like it does the
//! fault spec.

use crate::cache;
use crate::orders::parse_preset;
use pim_common::units::Seconds;
use pim_common::PimError;
use pim_hw::faults::FaultPlan;
use pim_models::{Model, ModelKind};
use pim_runtime::{Engine, EngineConfig, RunLimits, RunOptions, RunRequest, WorkloadSpec};
use pim_serve::protocol::{render_report, Op, Request};
use pim_serve::{JobError, JobRunner, StoredResult};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// Maps a wire model name onto a [`ModelKind`] (the `repro` CLI
/// vocabulary).
///
/// # Errors
///
/// `bad_request` naming the accepted values.
pub fn model_kind(name: &str) -> Result<ModelKind, JobError> {
    match name {
        "alex" => Ok(ModelKind::AlexNet),
        "vgg" => Ok(ModelKind::Vgg19),
        "dcgan" => Ok(ModelKind::Dcgan),
        "resnet" => Ok(ModelKind::ResNet50),
        "inception" => Ok(ModelKind::InceptionV3),
        "lstm" => Ok(ModelKind::Lstm),
        "w2v" => Ok(ModelKind::Word2vec),
        other => Err(JobError::bad_request(format!(
            "unknown model `{other}` (expected alex, vgg, dcgan, resnet, inception, lstm, or w2v)"
        ))),
    }
}

/// Fuel granted per millisecond of a request's `deadline_ms`: the wire
/// deadline buys this many retired engine events. The unit is simulated
/// work, not wall clock — the trip point byte-replays across processes
/// and worker counts.
pub const FUEL_PER_DEADLINE_MS: u64 = 1_000;

/// The engine-backed job runner.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimRunner;

/// A validated request: the engine plus the (cached, shared) models.
struct Job {
    engine: Engine,
    models: Vec<Arc<Model>>,
}

impl Job {
    /// The fault-free `RunRequest` over borrowed model graphs.
    fn base_request<'g>(models: &'g [Arc<Model>], req: &Request) -> RunRequest<'g> {
        let workloads: Vec<WorkloadSpec<'g>> = models
            .iter()
            .map(|m| WorkloadSpec {
                graph: m.graph(),
                steps: req.steps,
                cpu_progr_only: req.cpu_progr_only,
            })
            .collect();
        let mut request = RunRequest::new(&workloads).with_options(RunOptions {
            tie: req.tie,
            ..RunOptions::default()
        });
        if req.partitioned {
            request = request.partitioned();
        }
        request
    }
}

fn prepare(req: &Request) -> Result<Job, JobError> {
    let preset = parse_preset(&req.preset).map_err(|e| JobError::bad_request(e.to_string()))?;
    let mut models = Vec::with_capacity(req.models.len());
    for name in &req.models {
        let kind = model_kind(name)?;
        let model = match req.batch {
            Some(batch) => cache::model_with_batch(kind, batch),
            None => cache::model(kind),
        }
        .map_err(|e| JobError::bad_request(e.to_string()))?;
        models.push(model);
    }
    Ok(Job {
        engine: Engine::new(EngineConfig::preset(preset)),
        models,
    })
}

/// The zero-fault makespan used as a fault plan's horizon, memoized
/// privately per fault-free fingerprint (NOT the shared store — see the
/// module docs for why).
fn baseline_horizon(engine: &Engine, base: &RunRequest<'_>) -> Result<Seconds, JobError> {
    static BASELINES: OnceLock<Mutex<HashMap<u64, f64>>> = OnceLock::new();
    let key = base.fingerprint(engine.config());
    let memo = BASELINES.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&hit) = memo.lock().expect("baseline memo poisoned").get(&key) {
        return Ok(Seconds::new(hit));
    }
    // Simulate outside the lock; identical results race benignly.
    let out = engine
        .execute(base)
        .map_err(|e| JobError::execution(e.to_string()))?;
    let horizon = out
        .reports
        .iter()
        .map(|r| r.makespan)
        .fold(Seconds::ZERO, Seconds::max);
    memo.lock()
        .expect("baseline memo poisoned")
        .insert(key, horizon.seconds());
    Ok(horizon)
}

impl JobRunner for SimRunner {
    fn cache_key(&self, req: &Request) -> Result<u64, JobError> {
        let job = prepare(req)?;
        let base = Job::base_request(&job.models, req);
        let mut canon = base.canonical(job.engine.config());
        if let Some(b) = req.batch {
            let _ = write!(canon, ";batch={b}");
        }
        if let Some(f) = req.faults {
            // The spec, not the derived plan: deriving the horizon here
            // would run a simulation on the admission thread.
            let _ = write!(
                canon,
                ";faultspec={{seed={},rate={:x}}}",
                f.seed,
                f.rate.to_bits()
            );
        }
        if let Some(ms) = req.deadline_ms {
            // A deadlined run may be cut off, so it must never share a
            // cell with the undeadlined (or differently-deadlined) run.
            let _ = write!(canon, ";deadline_ms={ms}");
        }
        Ok(pim_common::fingerprint::debug_hash(&canon))
    }

    fn execute(&self, req: &Request) -> Result<StoredResult, JobError> {
        let job = prepare(req)?;
        let mut request = Job::base_request(&job.models, req);
        if let Some(f) = req.faults {
            let horizon = baseline_horizon(&job.engine, &request)?;
            request = request.with_faults(FaultPlan::seeded(
                f.seed,
                f.rate,
                horizon,
                job.engine.config().ff_units,
            ));
        }
        if let Some(ms) = req.deadline_ms {
            // Applied after the fault horizon is derived: the horizon is
            // a property of the cell and must come from an unbounded run.
            request = request.with_limits(
                RunLimits::none().with_max_events(ms.saturating_mul(FUEL_PER_DEADLINE_MS)),
            );
        }
        let out = job.engine.execute(&request).map_err(|e| match e {
            PimError::BudgetExhausted { .. } | PimError::Cancelled { .. } => {
                JobError::deadline(e.to_string())
            }
            other => JobError::execution(other.to_string()),
        })?;
        Ok(StoredResult {
            reports: out.reports,
            degraded: out.degraded.map(str::to_string),
        })
    }
}

/// Renders a result's report array exactly as a daemon response embeds
/// it — the byte-comparison target of the determinism tests.
pub fn render_reports(result: &StoredResult) -> String {
    let mut out = String::from("[");
    for (i, r) in result.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_report(r));
    }
    out.push(']');
    out
}

/// Extracts the `"reports":[...]` payload of an ok response line.
fn response_reports(line: &str) -> Option<&str> {
    line.split("\"reports\":")
        .nth(1)
        .and_then(|s| s.strip_suffix('}'))
}

/// Re-executes every `sample_every`-th run request of a served trace
/// directly through [`SimRunner`] (i.e. `Engine::execute`) and
/// byte-compares the daemon's report payload against the direct one.
/// Returns the number of samples checked.
///
/// # Errors
///
/// Describes the first sampled job whose daemon response was not ok or
/// whose report bytes differ from the direct engine run.
pub fn verify_samples(
    trace: &[String],
    responses: &[String],
    sample_every: usize,
) -> Result<usize, String> {
    if trace.len() != responses.len() {
        return Err(format!(
            "trace has {} lines but the daemon answered {}",
            trace.len(),
            responses.len()
        ));
    }
    let mut checked = 0usize;
    for (i, (line, response)) in trace.iter().zip(responses).enumerate() {
        if i % sample_every.max(1) != 0 {
            continue;
        }
        let req = pim_serve::parse_request(line)
            .map_err(|e| format!("trace line {i} does not parse: {}", e.message))?;
        if req.op != Op::Run {
            continue;
        }
        if !response.contains("\"status\":\"ok\"") {
            return Err(format!("job `{}` failed: {response}", req.id));
        }
        let direct = SimRunner
            .execute(&req)
            .map_err(|e| format!("direct rerun of `{}` failed: {}", req.id, e.message))?;
        let want = render_reports(&direct);
        let got = response_reports(response)
            .ok_or_else(|| format!("job `{}` response carries no reports: {response}", req.id))?;
        if got != want {
            return Err(format!(
                "job `{}` diverged from the direct engine run:\n daemon: {got}\n direct: {want}",
                req.id
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req(line: &str) -> Request {
        pim_serve::parse_request(line).unwrap()
    }

    #[test]
    fn cache_key_separates_cells_and_ignores_tenancy() {
        let base = run_req(r#"{"id":"1","tenant":"t0","model":"alex"}"#);
        let same_other_tenant = run_req(r#"{"id":"2","tenant":"t9","model":"alex"}"#);
        assert_eq!(
            SimRunner.cache_key(&base).unwrap(),
            SimRunner.cache_key(&same_other_tenant).unwrap()
        );
        for other in [
            r#"{"id":"3","model":"lstm"}"#,
            r#"{"id":"4","model":"alex","steps":2}"#,
            r#"{"id":"5","model":"alex","preset":"cpu"}"#,
            r#"{"id":"6","model":"alex","tie":{"permuted":1}}"#,
            r#"{"id":"7","model":"alex","faults":{"seed":1,"rate":0.5}}"#,
            r#"{"id":"8","model":"alex","batch":8}"#,
            r#"{"id":"9","models":["alex","alex"]}"#,
            r#"{"id":"10","model":"alex","deadline_ms":5}"#,
        ] {
            assert_ne!(
                SimRunner.cache_key(&base).unwrap(),
                SimRunner.cache_key(&run_req(other)).unwrap(),
                "{other}"
            );
        }
    }

    #[test]
    fn unknown_models_and_presets_fail_validation_not_execution() {
        for line in [
            r#"{"id":"1","model":"gpt"}"#,
            r#"{"id":"2","model":"alex","preset":"tpu"}"#,
        ] {
            let e = SimRunner.cache_key(&run_req(line)).unwrap_err();
            assert_eq!(e.kind, "bad_request", "{line}");
        }
    }

    #[test]
    fn execute_matches_direct_engine_run() {
        let req = run_req(r#"{"id":"1","model":"dcgan","preset":"hetero","steps":2}"#);
        let served = SimRunner.execute(&req).unwrap();
        let model = cache::model(ModelKind::Dcgan).unwrap();
        let spec = WorkloadSpec {
            graph: model.graph(),
            steps: 2,
            cpu_progr_only: false,
        };
        let direct = Engine::new(EngineConfig::preset(pim_runtime::SystemPreset::Hetero))
            .run_with(&[spec], &RunOptions::default())
            .unwrap();
        assert_eq!(served.reports, direct.reports);
        assert_eq!(
            render_reports(&served),
            render_reports(&StoredResult {
                reports: direct.reports,
                degraded: None,
            })
        );
    }

    #[test]
    fn tight_deadlines_cut_runs_off_and_loose_ones_change_nothing() {
        let unlimited = SimRunner
            .execute(&run_req(r#"{"id":"1","model":"alex","steps":2}"#))
            .unwrap();
        // A completed run is budget-independent: a deadline the run fits
        // under yields byte-identical reports to the unbounded run.
        let loose = SimRunner
            .execute(&run_req(
                r#"{"id":"2","model":"alex","steps":2,"deadline_ms":1000000}"#,
            ))
            .unwrap();
        assert_eq!(unlimited.reports, loose.reports);
        // A heavyweight model under a 1 ms budget (1000 events) trips at
        // a deterministic check site — long before the run would finish,
        // so the failing path is also the cheap one.
        let e = SimRunner
            .execute(&run_req(
                r#"{"id":"3","model":"resnet","steps":3,"deadline_ms":1}"#,
            ))
            .unwrap_err();
        assert_eq!(e.kind, "deadline_exceeded");
        assert!(e.message.contains("budget"), "{}", e.message);
    }

    #[test]
    fn faulted_requests_share_one_horizon_and_reproduce() {
        let req =
            run_req(r#"{"id":"1","model":"dcgan","preset":"hetero","faults":{"seed":3,"rate":1}}"#);
        let a = SimRunner.execute(&req).unwrap();
        let b = SimRunner.execute(&req).unwrap();
        assert_eq!(a, b);
    }
}
