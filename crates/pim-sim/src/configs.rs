//! The five system configurations of §VI and the simulation entry point.

use crate::gpu::simulate_gpu;
use pim_common::Result;
use pim_hw::gpu::GpuDevice;
use pim_mem::stack::StackConfig;
use pim_models::Model;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use pim_runtime::stats::ExecutionReport;
use serde::Serialize;

/// One of the evaluated system configurations.
#[derive(Debug, Clone, Serialize)]
pub enum SystemConfig {
    /// All operations on the host CPU.
    Cpu,
    /// All operations on the GTX 1080 Ti.
    Gpu,
    /// Programmable PIMs only, no runtime scheduling.
    ProgrPim,
    /// Fixed-function PIMs + CPU, no runtime scheduling.
    FixedPim,
    /// The full heterogeneous PIM with a custom engine configuration.
    HeteroPim(EngineConfig),
}

impl SystemConfig {
    /// The paper's five configurations in presentation order.
    pub fn evaluation_set() -> Vec<SystemConfig> {
        vec![
            SystemConfig::Cpu,
            SystemConfig::Gpu,
            SystemConfig::ProgrPim,
            SystemConfig::FixedPim,
            SystemConfig::hetero_pim(),
        ]
    }

    /// The full Hetero PIM (RC + OP) at baseline frequency.
    pub fn hetero_pim() -> SystemConfig {
        SystemConfig::HeteroPim(EngineConfig::preset(SystemPreset::Hetero))
    }

    /// Hetero PIM at a scaled stack frequency (§VI-D).
    ///
    /// # Errors
    ///
    /// Propagates invalid multipliers.
    pub fn hetero_pim_at_frequency(multiplier: f64) -> Result<SystemConfig> {
        let stack = StackConfig::hmc2().with_frequency_multiplier(multiplier)?;
        Ok(SystemConfig::HeteroPim(
            EngineConfig::preset(SystemPreset::Hetero).with_stack(stack),
        ))
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &str {
        match self {
            SystemConfig::Cpu => "CPU",
            SystemConfig::Gpu => "GPU",
            SystemConfig::ProgrPim => "Progr PIM",
            SystemConfig::FixedPim => "Fixed PIM",
            SystemConfig::HeteroPim(cfg) => &cfg.name,
        }
    }
}

/// Simulates `steps` training steps of `model` under a configuration.
///
/// # Examples
///
/// ```
/// use pim_sim::configs::{simulate, SystemConfig};
/// use pim_models::{Model, ModelKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let model = Model::build_with_batch(ModelKind::AlexNet, 4)?;
/// let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2)?;
/// let cpu = simulate(&model, &SystemConfig::Cpu, 2)?;
/// assert!(hetero.makespan < cpu.makespan);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates engine or cost-model failures.
pub fn simulate(model: &Model, config: &SystemConfig, steps: usize) -> Result<ExecutionReport> {
    let engine_cfg = match config {
        SystemConfig::Cpu => EngineConfig::preset(SystemPreset::CpuOnly),
        SystemConfig::Gpu => {
            return simulate_gpu(model, &GpuDevice::gtx_1080_ti(), steps);
        }
        SystemConfig::ProgrPim => EngineConfig::preset(SystemPreset::ProgrOnly),
        SystemConfig::FixedPim => EngineConfig::preset(SystemPreset::FixedHost),
        SystemConfig::HeteroPim(cfg) => cfg.clone(),
    };
    Engine::new(engine_cfg).run(&[WorkloadSpec {
        graph: model.graph(),
        steps,
        cpu_progr_only: false,
    }])
}

/// Simulates a raw training-step graph (not a zoo model) on the full
/// heterogeneous PIM — the path user-built graphs take.
///
/// # Errors
///
/// Propagates engine failures.
pub fn simulate_graph_hetero(graph: &pim_graph::Graph, steps: usize) -> Result<ExecutionReport> {
    Engine::new(EngineConfig::preset(SystemPreset::Hetero)).run(&[WorkloadSpec {
        graph,
        steps,
        cpu_progr_only: false,
    }])
}

/// The Table IV host/GPU configuration summary rows.
pub fn table_iv_rows() -> Vec<(&'static str, &'static str)> {
    vec![
        ("CPU", "Intel Xeon E5-2630 V3@2.4GHz"),
        ("Main memory", "16GB DDR4"),
        ("Operating system", "Ubuntu 16.04.2"),
        ("GPU", "NVIDIA GeForce GTX 1080 Ti (Pascal)"),
        ("GPU cores", "28 SMs, 128 CUDA cores per SM, 1.5GHz"),
        ("L1 cache", "24KB per SM"),
        ("L2 cache", "4096KB"),
        (
            "Memory interface",
            "8 memory controllers, 352-bit bus width",
        ),
        ("GPU main memory", "11GB GDDR5X"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::ModelKind;

    #[test]
    fn all_five_configurations_simulate() {
        let model = Model::build_with_batch(ModelKind::Dcgan, 8).unwrap();
        for config in SystemConfig::evaluation_set() {
            let r = simulate(&model, &config, 1).unwrap();
            assert!(r.is_well_formed(), "{} not well formed", config.name());
            assert!(r.makespan.seconds() > 0.0);
        }
    }

    #[test]
    fn hetero_is_fastest_pim_configuration() {
        let model = Model::build_with_batch(ModelKind::AlexNet, 8).unwrap();
        let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2).unwrap();
        for config in [
            SystemConfig::Cpu,
            SystemConfig::ProgrPim,
            SystemConfig::FixedPim,
        ] {
            let r = simulate(&model, &config, 2).unwrap();
            assert!(
                r.makespan > hetero.makespan,
                "{} beat hetero",
                config.name()
            );
        }
    }

    #[test]
    fn table_iv_matches_paper() {
        let rows = table_iv_rows();
        assert_eq!(rows.len(), 9);
        assert!(rows[0].1.contains("E5-2630"));
        assert!(rows[8].1.contains("11GB"));
    }
}
