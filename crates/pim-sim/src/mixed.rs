//! Mixed-workload co-running (§VI-F, Fig. 16).
//!
//! A CNN model and a non-CNN model (LSTM or Word2vec) train in the same
//! system. Under "Sequential Execution" the two runs happen back to back;
//! under "Hetero PIM" the runtime interleaves them — the CNN subject to the
//! normal scheduling, the non-CNN restricted to CPU and the programmable
//! PIM when they are idle.

use pim_common::Result;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use serde::Serialize;

/// Result of one co-run case.
#[derive(Debug, Clone, Serialize)]
pub struct CoRunResult {
    /// The CNN workload.
    pub cnn: ModelKind,
    /// The non-CNN workload.
    pub other: ModelKind,
    /// Back-to-back makespan in seconds.
    pub sequential_seconds: f64,
    /// Co-scheduled makespan in seconds.
    pub corun_seconds: f64,
}

impl CoRunResult {
    /// Speedup of co-running over sequential execution, minus one
    /// (the paper's "performance improvement").
    pub fn improvement(&self) -> f64 {
        self.sequential_seconds / self.corun_seconds - 1.0
    }
}

/// Runs one co-run case: `cnn_steps` CNN steps against however many
/// non-CNN steps fit a comparable duration.
///
/// # Errors
///
/// Propagates engine failures.
pub fn corun(cnn: ModelKind, other: ModelKind, cnn_steps: usize) -> Result<CoRunResult> {
    let cnn_model = Model::build_with_batch(cnn, cnn.paper_batch_size().min(32))?;
    let other_model = Model::build(other)?;
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));

    // Size the non-CNN run to a comparable duration (its steps are much
    // shorter than CNN steps).
    let cnn_alone = engine.run(&[WorkloadSpec {
        graph: cnn_model.graph(),
        steps: cnn_steps,
        cpu_progr_only: false,
    }])?;
    let other_probe = engine.run(&[WorkloadSpec {
        graph: other_model.graph(),
        steps: 1,
        cpu_progr_only: true,
    }])?;
    let other_steps = ((cnn_alone.makespan.seconds() * 0.8)
        / other_probe.makespan.seconds().max(1e-9))
    .ceil()
    .max(1.0) as usize;

    let other_alone = engine.run(&[WorkloadSpec {
        graph: other_model.graph(),
        steps: other_steps,
        cpu_progr_only: true,
    }])?;
    let sequential = cnn_alone.makespan + other_alone.makespan;

    let corun = engine.run(&[
        WorkloadSpec {
            graph: cnn_model.graph(),
            steps: cnn_steps,
            cpu_progr_only: false,
        },
        WorkloadSpec {
            graph: other_model.graph(),
            steps: other_steps,
            cpu_progr_only: true,
        },
    ])?;

    Ok(CoRunResult {
        cnn,
        other,
        sequential_seconds: sequential.seconds(),
        corun_seconds: corun.makespan.seconds(),
    })
}

/// The six co-run cases of Fig. 16.
pub fn fig16_cases() -> [(ModelKind, ModelKind); 6] {
    [
        (ModelKind::Vgg19, ModelKind::Lstm),
        (ModelKind::Vgg19, ModelKind::Word2vec),
        (ModelKind::AlexNet, ModelKind::Lstm),
        (ModelKind::AlexNet, ModelKind::Word2vec),
        (ModelKind::InceptionV3, ModelKind::Lstm),
        (ModelKind::InceptionV3, ModelKind::Word2vec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corun_beats_sequential_substantially() {
        // §VI-F: 69%-83% improvement; any improvement above ~50% shows the
        // overlap the paper attributes to cross-model independence.
        let r = corun(ModelKind::AlexNet, ModelKind::Word2vec, 2).unwrap();
        assert!(
            r.improvement() > 0.5,
            "improvement only {:.2}",
            r.improvement()
        );
        assert!(r.corun_seconds < r.sequential_seconds);
    }

    #[test]
    fn all_six_cases_are_distinct() {
        let cases = fig16_cases();
        for (cnn, other) in cases {
            assert!(cnn.is_cnn());
            assert!(!other.is_cnn());
        }
    }
}
