//! Fault-injection experiments: graceful degradation under seeded faults.
//!
//! Sweeps the engine-backed presets across fault rates with
//! [`pim_hw::faults::FaultPlan::seeded`] plans and tabulates how makespan
//! and energy degrade as transients, link timeouts, stragglers, and
//! permanent faults accumulate — the robustness counterpart of the
//! paper's performance figures. Every cell is deterministic in
//! `(seed, rate)`: the `repro faults` subcommand prints byte-identical
//! tables across runs.

use crate::cache;
use pim_common::Result;
use pim_hw::faults::FaultPlan;
use pim_models::ModelKind;
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use serde::Serialize;
use std::fmt::Write as _;

/// The default fault rates `repro faults` sweeps when `--rate` is absent.
pub const DEFAULT_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];

/// The default models `repro faults` sweeps (one CNN, one RNN).
pub const DEFAULT_MODELS: [ModelKind; 2] = [ModelKind::AlexNet, ModelKind::Lstm];

/// One cell of the degradation sweep: a (model, preset, rate) run.
#[derive(Debug, Clone, Serialize)]
pub struct DegradationCell {
    /// The simulated model.
    pub model: ModelKind,
    /// The engine-backed system preset.
    pub preset: SystemPreset,
    /// The seeded fault rate (0 is the fault-free baseline).
    pub rate: f64,
    /// End-to-end makespan in seconds.
    pub makespan_s: f64,
    /// Makespan over the preset's fault-free makespan.
    pub slowdown: f64,
    /// Dynamic energy in joules.
    pub energy_j: f64,
    /// `faults/injected` counter (transients + timeouts + quarantines).
    pub injected: u64,
    /// `faults/retries` counter (transients + strike kills).
    pub retries: u64,
    /// `faults/redispatches` counter (link timeouts).
    pub redispatches: u64,
    /// `faults/quarantined_units` counter (fixed-function units lost; the
    /// programmable PIM counts as one unit).
    pub quarantined: u64,
    /// The preset the configuration collapsed to before the run, if the
    /// plan quarantined a whole complement up front.
    pub degraded: Option<&'static str>,
}

/// Gathers the degradation sweep: every engine preset for every model at
/// every rate, faulted with `FaultPlan::seeded(seed, rate, horizon, ..)`
/// where `horizon` is that (model, preset)'s fault-free makespan.
///
/// # Errors
///
/// Propagates model-construction and simulation failures.
pub fn degradation_data(
    kinds: &[ModelKind],
    rates: &[f64],
    seed: u64,
    steps: usize,
) -> Result<Vec<DegradationCell>> {
    let mut cells = Vec::new();
    for &kind in kinds {
        let model = cache::model(kind)?;
        let spec = [WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }];
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let baseline = engine.run(&spec)?;
            for &rate in rates {
                let plan = if rate == 0.0 {
                    FaultPlan::none()
                } else {
                    FaultPlan::seeded(seed, rate, baseline.makespan, engine.config().ff_units)
                };
                let out = engine.run_with_faults(&spec, &RunOptions::default(), &plan)?;
                cells.push(DegradationCell {
                    model: kind,
                    preset,
                    rate,
                    makespan_s: out.report().makespan.seconds(),
                    slowdown: out.report().makespan / baseline.makespan,
                    energy_j: out.report().dynamic_energy.joules(),
                    injected: out.counters.get("faults/injected") as u64,
                    retries: out.counters.get("faults/retries") as u64,
                    redispatches: out.counters.get("faults/redispatches") as u64,
                    quarantined: out.counters.get("faults/quarantined_units") as u64,
                    degraded: out.degraded,
                });
            }
        }
    }
    Ok(cells)
}

/// Renders the degradation table (`repro faults`).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn degradation_table(
    kinds: &[ModelKind],
    rates: &[f64],
    seed: u64,
    steps: usize,
) -> Result<String> {
    let cells = degradation_data(kinds, rates, seed, steps)?;
    let mut out = String::new();
    writeln!(
        out,
        "Fault degradation: makespan/energy vs fault rate (seed {seed}, {steps} steps)"
    )
    .ok();
    let mut current = None;
    for c in &cells {
        if current != Some((c.model, c.preset)) {
            current = Some((c.model, c.preset));
            writeln!(out, "\n== {} @ {} ==", c.model, c.preset.name()).ok();
        }
        writeln!(
            out,
            "  rate={:5.2}  makespan={:>10.4e}s (x{:5.2})  energy={:>10.4e}J  \
             inj={:>4} retry={:>4} redisp={:>4} quar={:>4}{}",
            c.rate,
            c.makespan_s,
            c.slowdown,
            c.energy_j,
            c.injected,
            c.retries,
            c.redispatches,
            c.quarantined,
            match c.degraded {
                Some(to) => format!("  degraded->{to}"),
                None => String::new(),
            },
        )
        .ok();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_table_is_deterministic_and_monotone_at_zero() {
        let kinds = [ModelKind::AlexNet];
        let rates = [0.0, 0.1];
        let a = degradation_table(&kinds, &rates, 5, 2).unwrap();
        let b = degradation_table(&kinds, &rates, 5, 2).unwrap();
        assert_eq!(a, b, "same seed must render byte-identically");
        let cells = degradation_data(&kinds, &rates, 5, 2).unwrap();
        for c in cells.iter().filter(|c| c.rate == 0.0) {
            assert_eq!(
                c.slowdown, 1.0,
                "{:?}: zero rate must match baseline",
                c.preset
            );
            assert_eq!(c.injected, 0);
        }
        // CPU never faults: its makespan is rate-invariant.
        let cpu: Vec<_> = cells
            .iter()
            .filter(|c| c.preset == SystemPreset::CpuOnly)
            .collect();
        assert!(cpu.windows(2).all(|w| w[0].makespan_s == w[1].makespan_s));
    }
}
