//! The experiment harness: one function per table/figure of the paper's
//! evaluation.
//!
//! Each experiment is split into a `*_data` function that gathers
//! structured rows and a same-named render function that formats them
//! through the shared `Renderer`, producing the printable text the
//! `repro` binary emits and EXPERIMENTS.md records. Figure scripts and
//! tests can consume the rows directly instead of re-parsing text.

use crate::ablations::{batch_sweep, coverage_sweep, cube_scaling, gpu_attached};
use crate::baselines::simulate_neurocube;
use crate::cache;
use crate::configs::SystemConfig;
use crate::mixed::{corun, fig16_cases, CoRunResult};
use pim_common::units::edp;
use pim_common::Result;
use pim_hw::power::{progr_scaling_points, LogicDieBudget};
use pim_models::ModelKind;
use pim_runtime::engine::{EngineConfig, SystemPreset};
use pim_runtime::par::par_map;
use pim_runtime::profiler::profile_step_cached;
use pim_runtime::select::{classify, OpClass};
use pim_runtime::stats::ExecutionReport;
use serde::Serialize;
use std::fmt;
use std::fmt::Write as _;

/// Steps simulated per figure (enough to amortize pipeline fill).
const STEPS: usize = 3;

/// Incremental renderer for one experiment's printable output: a title
/// line, `== header ==` group separators, and two-space-indented rows —
/// the shared shape of every table/figure section.
struct Renderer {
    out: String,
}

impl Renderer {
    /// Starts a section with its title line.
    fn new(title: impl fmt::Display) -> Self {
        let mut out = String::new();
        writeln!(out, "{title}").ok();
        Renderer { out }
    }

    /// Emits a `== header ==` group separator preceded by a blank line.
    fn group(&mut self, header: impl fmt::Display) {
        writeln!(self.out, "\n== {header} ==").ok();
    }

    /// Emits a `== header ==   annotation` group separator.
    fn group_annotated(&mut self, header: impl fmt::Display, annotation: impl fmt::Display) {
        writeln!(self.out, "\n== {header} ==   {annotation}").ok();
    }

    /// Emits an unindented line (sub-headers, sweep captions).
    fn line(&mut self, line: impl fmt::Display) {
        writeln!(self.out, "{line}").ok();
    }

    /// Emits one two-space-indented data row.
    fn row(&mut self, row: impl fmt::Display) {
        writeln!(self.out, "  {row}").ok();
    }

    /// The rendered section.
    fn finish(self) -> String {
        self.out
    }
}

fn run_model(kind: ModelKind, config: &SystemConfig, steps: usize) -> Result<ExecutionReport> {
    let model = cache::model(kind)?;
    cache::cell_report(&model, config, steps)
}

/// One op-type share row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct OpShareRow {
    /// TensorFlow op name.
    pub name: &'static str,
    /// Share of the step's total (time or memory accesses), in percent.
    pub share_pct: f64,
    /// Invocations in one step.
    pub invocations: usize,
}

/// Table I rows for one model: top-5 ops by time and by memory accesses.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Model {
    /// The profiled model.
    pub kind: ModelKind,
    /// Top 5 compute-time consumers.
    pub ci: Vec<OpShareRow>,
    /// Top 5 memory-access producers.
    pub mi: Vec<OpShareRow>,
}

/// Gathers Table I: top-5 compute-intensive and memory-intensive op types
/// for VGG-19, AlexNet, and DCGAN.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn table1_data() -> Result<Vec<Table1Model>> {
    let mut models = Vec::new();
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::Dcgan] {
        let model = cache::model(kind)?;
        let profile =
            profile_step_cached(model.graph(), &pim_hw::cpu::CpuDevice::xeon_e5_2630_v3())?;
        let total_t = profile.total_time();
        let total_m = profile.total_memory_accesses() as f64;
        let rows = profile.by_name();
        let ci = rows
            .iter()
            .take(5)
            .map(|r| OpShareRow {
                name: r.name,
                share_pct: 100.0 * (r.time / total_t),
                invocations: r.invocations,
            })
            .collect();
        let mut by_mem = rows.clone();
        by_mem.sort_by_key(|r| std::cmp::Reverse(r.memory_accesses));
        let mi = by_mem
            .iter()
            .take(5)
            .map(|r| OpShareRow {
                name: r.name,
                share_pct: 100.0 * r.memory_accesses as f64 / total_m,
                invocations: r.invocations,
            })
            .collect();
        models.push(Table1Model { kind, ci, mi });
    }
    Ok(models)
}

/// Renders Table I.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn table1() -> Result<String> {
    let mut r = Renderer::new("Table I: operation profiling (one training step)");
    for m in table1_data()? {
        r.group(m.kind);
        r.line("Top 5 CI ops                    Time%   #Inv");
        for row in &m.ci {
            r.row(format_args!(
                "{:28} {:6.2}  {:5}",
                row.name, row.share_pct, row.invocations
            ));
        }
        r.line("Top 5 MI ops                    Mem%    #Inv");
        for row in &m.mi {
            r.row(format_args!(
                "{:28} {:6.2}  {:5}",
                row.name, row.share_pct, row.invocations
            ));
        }
    }
    Ok(r.finish())
}

/// Fig. 2 census for one model: ops per intensity quadrant.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClassCensus {
    /// The classified model.
    pub kind: ModelKind,
    /// Compute- and memory-intensive (the offload target).
    pub ci_mi: usize,
    /// Memory-intensive only.
    pub mi_only: usize,
    /// Compute-intensive only.
    pub ci_only: usize,
    /// Neither.
    pub neither: usize,
}

/// Gathers Fig. 2: the four-quadrant classification census per model.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn fig2_data() -> Result<Vec<ClassCensus>> {
    let mut census = Vec::new();
    for kind in ModelKind::CNNS {
        let model = cache::model(kind)?;
        let profile =
            profile_step_cached(model.graph(), &pim_hw::cpu::CpuDevice::xeon_e5_2630_v3())?;
        let classes = classify(&profile);
        let count = |c: OpClass| classes.iter().filter(|(_, x)| *x == c).count();
        census.push(ClassCensus {
            kind,
            ci_mi: count(OpClass::ComputeAndMemoryIntensive),
            mi_only: count(OpClass::MemoryIntensiveOnly),
            ci_only: count(OpClass::ComputeIntensiveOnly),
            neither: count(OpClass::Neither),
        });
    }
    Ok(census)
}

/// Renders Fig. 2.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn fig2() -> Result<String> {
    let mut r = Renderer::new("Fig. 2: op classification (CI&MI / MI-only / CI-only / neither)");
    for c in fig2_data()? {
        r.row(format_args!(
            "{:14} {:4} / {:4} / {:4} / {:4}",
            c.kind.name(),
            c.ci_mi,
            c.mi_only,
            c.ci_only,
            c.neither,
        ));
    }
    Ok(r.finish())
}

/// One configuration's row of the Fig. 8/9 breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Configuration name.
    pub config: String,
    /// Seconds per training step.
    pub step_seconds: f64,
    /// Computation fraction of the makespan.
    pub op: f64,
    /// Data-movement fraction.
    pub dm: f64,
    /// Synchronization fraction.
    pub sync: f64,
    /// Dynamic energy normalized to Hetero PIM.
    pub energy_norm: f64,
    /// Fixed-function pool utilization.
    pub util: f64,
}

/// Fig. 8/9 rows for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelBreakdown {
    /// The simulated model.
    pub kind: ModelKind,
    /// Its paper batch size.
    pub batch: usize,
    /// One row per evaluated configuration.
    pub rows: Vec<BreakdownRow>,
}

/// Gathers Fig. 8 + Fig. 9: execution-time breakdown and normalized
/// dynamic energy for the 5 models x 5 configurations.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8_fig9_data() -> Result<Vec<ModelBreakdown>> {
    // Simulate the whole (model x configuration) grid as one batch —
    // parallel under the `parallel` feature, serial otherwise, identical
    // rows either way. Every cell lands in the sweep cache, so the
    // per-model normalization below is all hits.
    let set = SystemConfig::evaluation_set();
    let grid: Vec<(ModelKind, SystemConfig)> = ModelKind::CNNS
        .iter()
        .flat_map(|&kind| set.iter().map(move |config| (kind, config.clone())))
        .collect();
    let cells = par_map(&grid, |(kind, config)| run_model(*kind, config, STEPS));

    let mut breakdowns = Vec::new();
    let mut cells = cells.into_iter();
    for kind in ModelKind::CNNS {
        let hetero = run_model(kind, &SystemConfig::hetero_pim(), STEPS)?;
        let mut rows = Vec::new();
        for config in &set {
            let r = cells.next().expect("one cell per grid entry")?;
            let (op, dm, sync) = r.breakdown_fractions();
            rows.push(BreakdownRow {
                config: config.name().to_string(),
                step_seconds: r.per_step_time().seconds(),
                op,
                dm,
                sync,
                energy_norm: r.dynamic_energy / hetero.dynamic_energy,
                util: r.ff_utilization,
            });
        }
        breakdowns.push(ModelBreakdown {
            kind,
            batch: kind.paper_batch_size(),
            rows,
        });
    }
    Ok(breakdowns)
}

/// Renders Fig. 8/9.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8_fig9() -> Result<String> {
    let mut r = Renderer::new(
        "Fig. 8/9: per-step time breakdown and energy (energy normalized to Hetero PIM)",
    );
    for m in fig8_fig9_data()? {
        r.group(format_args!("{} (batch {})", m.kind, m.batch));
        for row in &m.rows {
            r.row(format_args!(
                "{:10} step={:>9.4}s  op/dm/sync = {:4.2}/{:4.2}/{:4.2}  E_norm={:6.2}  util={:4.2}",
                row.config, row.step_seconds, row.op, row.dm, row.sync, row.energy_norm, row.util,
            ));
        }
    }
    Ok(r.finish())
}

/// One model's Fig. 10 ratios (Neurocube over Hetero PIM).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NeurocubeRatio {
    /// The simulated model.
    pub kind: ModelKind,
    /// Neurocube makespan over Hetero PIM makespan.
    pub time_ratio: f64,
    /// Neurocube dynamic energy over Hetero PIM dynamic energy.
    pub energy_ratio: f64,
}

/// Gathers Fig. 10: performance and energy versus Neurocube (normalized
/// to Hetero PIM = 1).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10_data() -> Result<Vec<NeurocubeRatio>> {
    let mut ratios = Vec::new();
    for kind in ModelKind::CNNS {
        let model = cache::model(kind)?;
        let hetero = cache::cell_report(&model, &SystemConfig::hetero_pim(), STEPS)?;
        let nc = simulate_neurocube(&model, STEPS)?;
        ratios.push(NeurocubeRatio {
            kind,
            time_ratio: nc.makespan / hetero.makespan,
            energy_ratio: nc.dynamic_energy / hetero.dynamic_energy,
        });
    }
    Ok(ratios)
}

/// Renders Fig. 10.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10() -> Result<String> {
    let mut r = Renderer::new("Fig. 10: Neurocube / Hetero PIM (time and energy ratios)");
    for ratio in fig10_data()? {
        r.row(format_args!(
            "{:14} time x{:6.1}   energy x{:6.1}",
            ratio.kind.name(),
            ratio.time_ratio,
            ratio.energy_ratio,
        ));
    }
    Ok(r.finish())
}

/// One frequency-scaling point of Fig. 11/17.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FreqPoint {
    /// Stack-frequency multiplier (1x/2x/4x).
    pub multiplier: f64,
    /// Seconds per step at this frequency.
    pub step_seconds: f64,
    /// Speedup over the GPU, in percent (negative when slower).
    pub vs_gpu_pct: f64,
    /// Energy-delay product per step.
    pub edp_per_step: f64,
    /// Average full-system power in watts.
    pub power_watts: f64,
}

/// Fig. 11/17 rows for one model, with its GPU reference.
#[derive(Debug, Clone, Serialize)]
pub struct FreqScaling {
    /// The simulated model.
    pub kind: ModelKind,
    /// GPU seconds per step.
    pub gpu_step_seconds: f64,
    /// GPU average power in watts.
    pub gpu_power_watts: f64,
    /// Hetero PIM at each frequency multiplier.
    pub points: Vec<FreqPoint>,
}

/// Gathers Fig. 11 + Fig. 17: frequency scaling (1x/2x/4x) — execution
/// time against the GPU, EDP, and power.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11_fig17_data() -> Result<Vec<FreqScaling>> {
    let mut scalings = Vec::new();
    for kind in ModelKind::CNNS {
        let gpu = run_model(kind, &SystemConfig::Gpu, STEPS)?;
        let mut points = Vec::new();
        for mult in [1.0, 2.0, 4.0] {
            let cfg = SystemConfig::hetero_pim_at_frequency(mult)?;
            let r = run_model(kind, &cfg, STEPS)?;
            points.push(FreqPoint {
                multiplier: mult,
                step_seconds: r.per_step_time().seconds(),
                vs_gpu_pct: 100.0 * (gpu.per_step_time() / r.per_step_time() - 1.0),
                edp_per_step: edp(r.dynamic_energy / STEPS as f64, r.per_step_time()),
                power_watts: r.average_power().watts(),
            });
        }
        scalings.push(FreqScaling {
            kind,
            gpu_step_seconds: gpu.per_step_time().seconds(),
            gpu_power_watts: gpu.average_power().watts(),
            points,
        });
    }
    Ok(scalings)
}

/// Renders Fig. 11/17.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11_fig17() -> Result<String> {
    let mut r =
        Renderer::new("Fig. 11/17: 3D-memory frequency scaling (time vs GPU, EDP/step, avg power)");
    for s in fig11_fig17_data()? {
        r.group_annotated(
            s.kind.name(),
            format_args!(
                "GPU: step={:.4}s power={:.0}W",
                s.gpu_step_seconds, s.gpu_power_watts
            ),
        );
        for p in &s.points {
            r.row(format_args!(
                "{}x: step={:>8.4}s ({:+5.1}% vs GPU)  EDP/step={:9.3e}  power={:5.0}W",
                p.multiplier, p.step_seconds, p.vs_gpu_pct, p.edp_per_step, p.power_watts,
            ));
        }
    }
    Ok(r.finish())
}

/// One constant-area design point of Fig. 12.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScalingPoint {
    /// Programmable-PIM ARM cores.
    pub arm_cores: usize,
    /// Fixed-function units fitting the remaining die area.
    pub ff_units: usize,
    /// Seconds per step with this complement.
    pub step_seconds: f64,
}

/// Fig. 12 design points for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ProgrScaling {
    /// The simulated model.
    pub kind: ModelKind,
    /// One point per programmable-PIM count (1P/4P/16P).
    pub points: Vec<ScalingPoint>,
}

/// Gathers Fig. 12: programmable-PIM scaling (1P/4P/16P) at constant die
/// area.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12_data() -> Result<Vec<ProgrScaling>> {
    let points = progr_scaling_points(&LogicDieBudget::paper_baseline())?;
    let mut scalings = Vec::new();
    for kind in ModelKind::CNNS {
        let model = cache::model(kind)?;
        let mut rows = Vec::new();
        for p in &points {
            let cfg = SystemConfig::HeteroPim(
                EngineConfig::preset(SystemPreset::Hetero)
                    .with_pim_complement(p.arm_cores, p.ff_units),
            );
            let r = cache::cell_report(&model, &cfg, STEPS)?;
            rows.push(ScalingPoint {
                arm_cores: p.arm_cores,
                ff_units: p.ff_units,
                step_seconds: r.per_step_time().seconds(),
            });
        }
        scalings.push(ProgrScaling { kind, points: rows });
    }
    Ok(scalings)
}

/// Renders Fig. 12.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12() -> Result<String> {
    let mut r = Renderer::new("Fig. 12: Progr-PIM scaling at constant logic-die area");
    for s in fig12_data()? {
        let mut line = format!("{:14}", s.kind.name());
        for p in &s.points {
            write!(
                line,
                "  {}P({} FF)={:.4}s",
                p.arm_cores, p.ff_units, p.step_seconds
            )
            .ok();
        }
        r.row(line);
    }
    Ok(r.finish())
}

/// One configuration's row of the Fig. 13/14/15 software ablation.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Configuration name.
    pub config: String,
    /// Seconds per step.
    pub step_seconds: f64,
    /// Makespan relative to the full Hetero PIM (RC + OP).
    pub ratio_vs_full: f64,
    /// Dynamic energy normalized to the full configuration.
    pub energy_norm: f64,
    /// Fixed-function pool utilization.
    pub util: f64,
}

/// Fig. 13/14/15 rows for one model.
#[derive(Debug, Clone, Serialize)]
pub struct SoftwareAblation {
    /// The simulated model.
    pub kind: ModelKind,
    /// Progr/Fixed/Hetero-bare/+RC/+RC+OP, in that order.
    pub rows: Vec<AblationRow>,
}

/// Gathers Fig. 13/14/15: the software-technique ablation — execution
/// time, energy (normalized to Hetero+RC+OP) and fixed-function
/// utilization for Progr/Fixed/Hetero-bare/+RC/+RC+OP.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig13_fig14_fig15_data() -> Result<Vec<SoftwareAblation>> {
    let mut ablations = Vec::new();
    for kind in ModelKind::CNNS {
        let model = cache::model(kind)?;
        // simulate() wraps the graph in the same single-workload spec the
        // engine ran directly here before, so every preset row is a plain
        // sweep cell — and `full` (the Hetero preset) a guaranteed hit.
        let full = cache::cell_report(
            &model,
            &SystemConfig::HeteroPim(EngineConfig::preset(SystemPreset::Hetero)),
            STEPS,
        )?;
        let mut rows = Vec::new();
        for preset in [
            SystemPreset::ProgrOnly,
            SystemPreset::FixedHost,
            SystemPreset::HeteroBare,
            SystemPreset::HeteroRc,
            SystemPreset::Hetero,
        ] {
            let cfg = EngineConfig::preset(preset);
            let name = cfg.name.clone();
            let r = cache::cell_report(&model, &SystemConfig::HeteroPim(cfg), STEPS)?;
            rows.push(AblationRow {
                config: name,
                step_seconds: r.per_step_time().seconds(),
                ratio_vs_full: r.makespan / full.makespan,
                energy_norm: r.dynamic_energy / full.dynamic_energy,
                util: r.ff_utilization,
            });
        }
        ablations.push(SoftwareAblation { kind, rows });
    }
    Ok(ablations)
}

/// Renders Fig. 13/14/15.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig13_fig14_fig15() -> Result<String> {
    let mut r = Renderer::new(
        "Fig. 13/14/15: RC and OP ablation (time, energy normalized to full, utilization)",
    );
    for a in fig13_fig14_fig15_data()? {
        r.group(a.kind.name());
        for row in &a.rows {
            r.row(format_args!(
                "{:22} time={:>9.4}s ({:5.2}x full)  E_norm={:6.2}  util={:4.2}",
                row.config, row.step_seconds, row.ratio_vs_full, row.energy_norm, row.util,
            ));
        }
    }
    Ok(r.finish())
}

/// Gathers Fig. 16: mixed-workload co-running, one result per case.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig16_data() -> Result<Vec<CoRunResult>> {
    fig16_cases()
        .into_iter()
        .map(|(cnn, other)| corun(cnn, other, 2))
        .collect()
}

/// Renders Fig. 16.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig16() -> Result<String> {
    let mut r = Renderer::new("Fig. 16: CNN + non-CNN co-run vs sequential execution");
    for result in fig16_data()? {
        r.row(format_args!(
            "{:14}+{:9}  seq={:>8.4}s  co-run={:>8.4}s  improvement={:5.1}%",
            result.cnn.name(),
            result.other.name(),
            result.sequential_seconds,
            result.corun_seconds,
            100.0 * result.improvement(),
        ));
    }
    Ok(r.finish())
}

/// Ablations beyond the paper's figures: the x-coverage sweep, multi-cube
/// scaling, and the §II-D GPU-attached estimate. The rows come structured
/// from [`crate::ablations`]; this renders them.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ablations() -> Result<String> {
    let mut r = Renderer::new("Ablations (design choices and §II-D discussion)");

    let model = cache::model(ModelKind::Vgg19)?;
    r.line("\nCandidate-selection coverage sweep (VGG-19):");
    for p in coverage_sweep(&model, &[0.5, 0.7, 0.9, 0.99], STEPS)? {
        r.row(format_args!(
            "x={:4.2}: {:.4} s/step",
            p.coverage, p.step_seconds
        ));
    }

    r.line("\nMulti-cube fixed-function scaling (VGG-19):");
    for p in cube_scaling(&model, STEPS)? {
        r.row(format_args!(
            "{} cube(s), {} units: {:.4} s/step",
            p.cubes, p.ff_units, p.step_seconds
        ));
    }

    r.line("\nBatch-size sweep (AlexNet, Hetero PIM):");
    for p in batch_sweep(ModelKind::AlexNet, &[8, 16, 32, 64], STEPS)? {
        r.row(format_args!(
            "batch {:>3}: {:.4} s/step = {:.2} ms/sample",
            p.batch,
            p.hetero_step_seconds,
            1e3 * p.hetero_sample_seconds
        ));
    }

    r.line("\nGPU-attached heterogeneous PIM estimate (per step):");
    let gpu = pim_hw::gpu::GpuDevice::gtx_1080_ti();
    for kind in ModelKind::CNNS {
        let m = cache::model(kind)?;
        let est = gpu_attached(&m, &gpu)?;
        r.row(format_args!(
            "{:14} GPU {:.4}s -> GPU+PIM {:.4}s ({:.2}x)",
            kind.name(),
            est.gpu_seconds,
            est.gpu_pim_seconds,
            est.gpu_seconds / est.gpu_pim_seconds
        ));
    }
    Ok(r.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_models::Model;

    // Headline-shape tests run at reduced batch through the public
    // simulate() API elsewhere; here we verify the harness functions
    // produce the expected row structure on the real configurations.

    #[test]
    fn table1_lists_three_models() {
        let t = table1().unwrap();
        assert!(t.contains("VGG-19"));
        assert!(t.contains("AlexNet"));
        assert!(t.contains("DCGAN"));
        assert!(t.contains("Conv2DBackpropFilter"));
    }

    #[test]
    fn fig2_counts_every_quadrant() {
        let t = fig2().unwrap();
        assert_eq!(t.lines().count(), 1 + ModelKind::CNNS.len());
    }

    #[test]
    fn fig2_rows_cover_all_ops() {
        let census = fig2_data().unwrap();
        for (c, kind) in census.iter().zip(ModelKind::CNNS) {
            let model = Model::build(kind).unwrap();
            assert_eq!(
                c.ci_mi + c.mi_only + c.ci_only + c.neither,
                model.graph().op_count()
            );
        }
    }

    #[test]
    fn fig12_prints_three_design_points() {
        let t = fig12().unwrap();
        assert!(t.contains("1P(468 FF)"));
        assert!(t.contains("4P(444 FF)"));
        assert!(t.contains("16P(348 FF)"));
    }
}
