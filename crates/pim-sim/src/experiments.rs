//! The experiment harness: one function per table/figure of the paper's
//! evaluation. Each returns the printable rows the `repro` binary emits and
//! EXPERIMENTS.md records.

use crate::ablations::{batch_sweep, coverage_sweep, cube_scaling, gpu_attached};
use crate::baselines::simulate_neurocube;
use crate::configs::{simulate, SystemConfig};
use crate::mixed::{corun, fig16_cases, CoRunResult};
use pim_common::units::edp;
use pim_common::Result;
use pim_hw::power::{progr_scaling_points, LogicDieBudget};
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, WorkloadSpec};
use pim_runtime::profiler::profile_step;
use pim_runtime::select::{classify, OpClass};
use pim_runtime::stats::ExecutionReport;
use std::fmt::Write as _;

/// Steps simulated per figure (enough to amortize pipeline fill).
const STEPS: usize = 3;

fn run_model(kind: ModelKind, config: &SystemConfig, steps: usize) -> Result<ExecutionReport> {
    let model = Model::build(kind)?;
    simulate(&model, config, steps)
}

/// Table I: top-5 compute-intensive and memory-intensive op types for
/// VGG-19, AlexNet, and DCGAN.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn table1() -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Table I: operation profiling (one training step)").ok();
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::Dcgan] {
        let model = Model::build(kind)?;
        let profile = profile_step(model.graph(), &pim_hw::cpu::CpuDevice::xeon_e5_2630_v3())?;
        let total_t = profile.total_time();
        let total_m = profile.total_memory_accesses() as f64;
        let rows = profile.by_name();
        writeln!(out, "\n== {kind} ==").ok();
        writeln!(out, "Top 5 CI ops                    Time%   #Inv").ok();
        for r in rows.iter().take(5) {
            writeln!(
                out,
                "  {:28} {:6.2}  {:5}",
                r.name,
                100.0 * (r.time / total_t),
                r.invocations
            )
            .ok();
        }
        let mut by_mem = rows.clone();
        by_mem.sort_by_key(|r| std::cmp::Reverse(r.memory_accesses));
        writeln!(out, "Top 5 MI ops                    Mem%    #Inv").ok();
        for r in by_mem.iter().take(5) {
            writeln!(
                out,
                "  {:28} {:6.2}  {:5}",
                r.name,
                100.0 * r.memory_accesses as f64 / total_m,
                r.invocations
            )
            .ok();
        }
    }
    Ok(out)
}

/// Fig. 2: the four-quadrant classification census per model.
///
/// # Errors
///
/// Propagates profiling failures.
pub fn fig2() -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 2: op classification (CI&MI / MI-only / CI-only / neither)"
    )
    .ok();
    for kind in ModelKind::CNNS {
        let model = Model::build(kind)?;
        let profile = profile_step(model.graph(), &pim_hw::cpu::CpuDevice::xeon_e5_2630_v3())?;
        let classes = classify(&profile);
        let count = |c: OpClass| classes.iter().filter(|(_, x)| *x == c).count();
        writeln!(
            out,
            "  {:14} {:4} / {:4} / {:4} / {:4}",
            kind.name(),
            count(OpClass::ComputeAndMemoryIntensive),
            count(OpClass::MemoryIntensiveOnly),
            count(OpClass::ComputeIntensiveOnly),
            count(OpClass::Neither),
        )
        .ok();
    }
    Ok(out)
}

/// Fig. 8 + Fig. 9: execution-time breakdown and normalized dynamic energy
/// for the 5 models x 5 configurations.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8_fig9() -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 8/9: per-step time breakdown and energy (energy normalized to Hetero PIM)"
    )
    .ok();
    for kind in ModelKind::CNNS {
        writeln!(out, "\n== {} (batch {}) ==", kind, kind.paper_batch_size()).ok();
        let hetero = run_model(kind, &SystemConfig::hetero_pim(), STEPS)?;
        for config in SystemConfig::evaluation_set() {
            let r = run_model(kind, &config, STEPS)?;
            let (op, dm, sync) = r.breakdown_fractions();
            writeln!(
                out,
                "  {:10} step={:>9.4}s  op/dm/sync = {:4.2}/{:4.2}/{:4.2}  E_norm={:6.2}  util={:4.2}",
                config.name(),
                r.per_step_time().seconds(),
                op,
                dm,
                sync,
                r.dynamic_energy / hetero.dynamic_energy,
                r.ff_utilization,
            )
            .ok();
        }
    }
    Ok(out)
}

/// Fig. 10: performance and energy versus Neurocube (normalized to
/// Hetero PIM = 1).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10() -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 10: Neurocube / Hetero PIM (time and energy ratios)"
    )
    .ok();
    for kind in ModelKind::CNNS {
        let model = Model::build(kind)?;
        let hetero = simulate(&model, &SystemConfig::hetero_pim(), STEPS)?;
        let nc = simulate_neurocube(&model, STEPS)?;
        writeln!(
            out,
            "  {:14} time x{:6.1}   energy x{:6.1}",
            kind.name(),
            nc.makespan / hetero.makespan,
            nc.dynamic_energy / hetero.dynamic_energy,
        )
        .ok();
    }
    Ok(out)
}

/// Fig. 11 + Fig. 17: frequency scaling (1x/2x/4x) — execution time
/// against the GPU, EDP, and power.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11_fig17() -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 11/17: 3D-memory frequency scaling (time vs GPU, EDP/step, avg power)"
    )
    .ok();
    for kind in ModelKind::CNNS {
        let gpu = run_model(kind, &SystemConfig::Gpu, STEPS)?;
        writeln!(
            out,
            "\n== {} ==   GPU: step={:.4}s power={:.0}W",
            kind.name(),
            gpu.per_step_time().seconds(),
            gpu.average_power().watts(),
        )
        .ok();
        for mult in [1.0, 2.0, 4.0] {
            let cfg = SystemConfig::hetero_pim_at_frequency(mult)?;
            let r = run_model(kind, &cfg, STEPS)?;
            writeln!(
                out,
                "  {}x: step={:>8.4}s ({:+5.1}% vs GPU)  EDP/step={:9.3e}  power={:5.0}W",
                mult,
                r.per_step_time().seconds(),
                100.0 * (gpu.per_step_time() / r.per_step_time() - 1.0),
                edp(r.dynamic_energy / STEPS as f64, r.per_step_time()),
                r.average_power().watts(),
            )
            .ok();
        }
    }
    Ok(out)
}

/// Fig. 12: programmable-PIM scaling (1P/4P/16P) at constant die area.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12() -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Fig. 12: Progr-PIM scaling at constant logic-die area").ok();
    let points = progr_scaling_points(&LogicDieBudget::paper_baseline())?;
    for kind in ModelKind::CNNS {
        let model = Model::build(kind)?;
        write!(out, "  {:14}", kind.name()).ok();
        for p in &points {
            let cfg = SystemConfig::HeteroPim(
                EngineConfig::hetero().with_pim_complement(p.arm_cores, p.ff_units),
            );
            let r = simulate(&model, &cfg, STEPS)?;
            write!(
                out,
                "  {}P({} FF)={:.4}s",
                p.arm_cores,
                p.ff_units,
                r.per_step_time().seconds()
            )
            .ok();
        }
        writeln!(out).ok();
    }
    Ok(out)
}

/// Fig. 13/14/15: the software-technique ablation — execution time, energy
/// (normalized to Hetero+RC+OP) and fixed-function utilization for
/// Progr/Fixed/Hetero-bare/+RC/+RC+OP.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig13_fig14_fig15() -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 13/14/15: RC and OP ablation (time, energy normalized to full, utilization)"
    )
    .ok();
    for kind in ModelKind::CNNS {
        let model = Model::build(kind)?;
        let workload = |steps| WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        };
        let full = Engine::new(EngineConfig::hetero()).run(&[workload(STEPS)])?;
        writeln!(out, "\n== {} ==", kind.name()).ok();
        for cfg in [
            EngineConfig::progr_only(),
            EngineConfig::fixed_host(),
            EngineConfig::hetero_bare(),
            EngineConfig::hetero_rc(),
            EngineConfig::hetero(),
        ] {
            let name = cfg.name.clone();
            let r = Engine::new(cfg).run(&[workload(STEPS)])?;
            writeln!(
                out,
                "  {:22} time={:>9.4}s ({:5.2}x full)  E_norm={:6.2}  util={:4.2}",
                name,
                r.per_step_time().seconds(),
                r.makespan / full.makespan,
                r.dynamic_energy / full.dynamic_energy,
                r.ff_utilization,
            )
            .ok();
        }
    }
    Ok(out)
}

/// Fig. 16: mixed-workload co-running.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig16() -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Fig. 16: CNN + non-CNN co-run vs sequential execution").ok();
    for (cnn, other) in fig16_cases() {
        let r: CoRunResult = corun(cnn, other, 2)?;
        writeln!(
            out,
            "  {:14}+{:9}  seq={:>8.4}s  co-run={:>8.4}s  improvement={:5.1}%",
            r.cnn.name(),
            r.other.name(),
            r.sequential_seconds,
            r.corun_seconds,
            100.0 * r.improvement(),
        )
        .ok();
    }
    Ok(out)
}

/// Ablations beyond the paper's figures: the x-coverage sweep, multi-cube
/// scaling, and the §II-D GPU-attached estimate.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ablations() -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Ablations (design choices and §II-D discussion)").ok();

    let model = Model::build(ModelKind::Vgg19)?;
    writeln!(out, "\nCandidate-selection coverage sweep (VGG-19):").ok();
    for p in coverage_sweep(&model, &[0.5, 0.7, 0.9, 0.99], STEPS)? {
        writeln!(out, "  x={:4.2}: {:.4} s/step", p.coverage, p.step_seconds).ok();
    }

    writeln!(out, "\nMulti-cube fixed-function scaling (VGG-19):").ok();
    for p in cube_scaling(&model, STEPS)? {
        writeln!(
            out,
            "  {} cube(s), {} units: {:.4} s/step",
            p.cubes, p.ff_units, p.step_seconds
        )
        .ok();
    }

    writeln!(out, "\nBatch-size sweep (AlexNet, Hetero PIM):").ok();
    for p in batch_sweep(ModelKind::AlexNet, &[8, 16, 32, 64], STEPS)? {
        writeln!(
            out,
            "  batch {:>3}: {:.4} s/step = {:.2} ms/sample",
            p.batch,
            p.hetero_step_seconds,
            1e3 * p.hetero_sample_seconds
        )
        .ok();
    }

    writeln!(out, "\nGPU-attached heterogeneous PIM estimate (per step):").ok();
    let gpu = pim_hw::gpu::GpuDevice::gtx_1080_ti();
    for kind in ModelKind::CNNS {
        let m = Model::build(kind)?;
        let est = gpu_attached(&m, &gpu)?;
        writeln!(
            out,
            "  {:14} GPU {:.4}s -> GPU+PIM {:.4}s ({:.2}x)",
            kind.name(),
            est.gpu_seconds,
            est.gpu_pim_seconds,
            est.gpu_seconds / est.gpu_pim_seconds
        )
        .ok();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Headline-shape tests run at reduced batch through the public
    // simulate() API elsewhere; here we verify the harness functions
    // produce the expected row structure on the real configurations.

    #[test]
    fn table1_lists_three_models() {
        let t = table1().unwrap();
        assert!(t.contains("VGG-19"));
        assert!(t.contains("AlexNet"));
        assert!(t.contains("DCGAN"));
        assert!(t.contains("Conv2DBackpropFilter"));
    }

    #[test]
    fn fig2_counts_every_quadrant() {
        let t = fig2().unwrap();
        assert_eq!(t.lines().count(), 1 + ModelKind::CNNS.len());
    }

    #[test]
    fn fig12_prints_three_design_points() {
        let t = fig12().unwrap();
        assert!(t.contains("1P(468 FF)"));
        assert!(t.contains("4P(444 FF)"));
        assert!(t.contains("16P(348 FF)"));
    }
}
